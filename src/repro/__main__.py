"""Command-line interface: ``python -m repro <command>``.

Commands
--------
fig7a / fig7b   regenerate the paper's speedup figures (scaled)
fig8a / fig8b   regenerate the network-throughput figures (scaled)
rq1             Merkle-root correctness sweep
ablation        DMVCC feature ablation
analyze FILE    compile a Minisol file and print its P-SAG
verify          differential fuzzing under the serializability oracle
soak            long-running adversarial soak with crash injection
serve           streaming block pipeline: mempool ingestion, fee ordering,
                backpressure, overlapped execute/seal/persist
profile         event-traced execution: Chrome trace + wait decomposition
db              inspect/maintain a durable node store (stats, fsck, compact)
"""

from __future__ import annotations

import argparse
import json
import sys


def _scaled_workload(args) -> dict:
    return dict(
        users=args.users,
        erc20_tokens=args.tokens,
        dex_pools=args.pools,
        nft_collections=args.nfts,
        icos=2,
    )


def cmd_fig(args) -> int:
    """Regenerate one of the paper's four figure panels."""
    from .bench import run_fig7a, run_fig7b, run_fig8a, run_fig8b

    threads = tuple(int(t) for t in args.threads.split(","))
    workload = _scaled_workload(args)
    if args.figure in ("7a", "7b"):
        runner = run_fig7a if args.figure == "7a" else run_fig7b
        result = runner(
            blocks=args.blocks,
            txs_per_block=args.txs,
            thread_counts=threads,
            **workload,
        )
        print(result.format_table())
        return 0 if result.correctness_ok else 1
    runner = run_fig8a if args.figure == "8a" else run_fig8b
    result = runner(
        validators=2,
        blocks=args.blocks,
        txs_per_block=args.txs,
        thread_counts=threads,
        gas_per_second=args.txs * 45_000 / 360.0,
        config_overrides=workload,
    )
    print(result.format_table())
    return 0


def cmd_rq1(args) -> int:
    """Run the Merkle-root correctness sweep (RQ1)."""
    from .bench import run_rq1_correctness

    result = run_rq1_correctness(
        blocks=args.blocks,
        txs_per_block=args.txs,
        scheduler=args.scheduler,
        threads=8,
        **_scaled_workload(args),
    )
    print(
        f"RQ1 [{args.scheduler}]: {result.matches}/{result.blocks_checked} "
        f"block roots match serial ({result.txs_checked} transactions)"
    )
    return 0 if result.all_match else 1


def cmd_ablation(args) -> int:
    """Run the DMVCC feature ablation under high contention."""
    from .bench import run_feature_ablation
    from .workload import high_contention_config

    result = run_feature_ablation(
        blocks=max(args.blocks // 2, 1),
        txs_per_block=args.txs,
        thread_counts=(8, 32),
        config=high_contention_config(**_scaled_workload(args)),
    )
    print(result.format_table())
    return 0 if result.correctness_ok else 1


def cmd_analyze(args) -> int:
    """Compile a Minisol file and dump its P-SAG."""
    from .analysis import build_psag
    from .lang import compile_source

    with open(args.file) as handle:
        source = handle.read()
    compiled = compile_source(source)
    psag = build_psag(compiled.code)
    print(f"{compiled.name}: {len(compiled.code)} bytes")
    print("functions:")
    for name, abi in sorted(compiled.functions.items()):
        print(f"  {abi.signature}  selector={abi.selector:#010x}")
    print("storage layout:")
    for var in compiled.layout.values():
        print(f"  slot {var.slot}: {var.type} {var.name}")
    print("access sites:")
    for pc, site in sorted(psag.analysis.access_sites.items()):
        marker = "  [commutative]" if pc in psag.analysis.increment_sites else ""
        print(f"  pc {pc:5d}: {site.kind:12s} {site.key}{marker}")
    print("release points:")
    for point in psag.release.release_points:
        bound = point.gas_bound if point.gas_bound is not None else "unbounded"
        print(f"  pc {point.pc:5d}: remaining gas ≤ {bound}")
    if args.dot:
        print()
        print(psag.to_dot())
    return 0


def cmd_verify(args) -> int:
    """Differentially fuzz every parallel executor against serial under the
    serializability oracle; exits non-zero on any divergence."""
    from .verify import DifferentialFuzzer

    if (args.fuzz <= 0 and args.crash_recovery <= 0 and not args.substrate
            and args.shards <= 0):
        print("verify: need --fuzz N > 0, --crash-recovery N > 0, "
              "--substrate, and/or --shards N", file=sys.stderr)
        return 2
    exit_code = 0
    if args.shards > 0:
        from .verify.shard import run_shard_verify

        shard_report = run_shard_verify(
            shards=args.shards,
            scenarios=[s.strip() for s in args.scenarios.split(",")
                       if s.strip() and s.strip() != "all"] or None,
            txs_per_block=args.txs_per_block,
            seed=args.seed & 0xFFFF,
            progress=(lambda line: print(line, file=sys.stderr))
            if args.progress else None,
        )
        print(shard_report.render())
        if not shard_report.ok:
            exit_code = 1
    if args.substrate:
        from .verify import run_substrate_verify

        substrate_report = run_substrate_verify(
            scenarios=[s.strip() for s in args.scenarios.split(",")
                       if s.strip() and s.strip() != "all"] or None,
            schedulers=[s.strip() for s in args.schedulers.split(",")
                        if s.strip()] or ("serial", "occ", "dag", "dmvcc"),
            txs_per_block=args.txs_per_block,
            workers=args.substrate_workers,
            seed=args.seed & 0xFFFF,
            progress=(lambda line: print(line, file=sys.stderr))
            if args.progress else None,
        )
        print(substrate_report.render())
        if not substrate_report.ok:
            exit_code = 1
    if args.crash_recovery > 0:
        from .verify import run_crash_campaign

        crash_report = run_crash_campaign(
            args.crash_recovery,
            base_seed=args.seed,
            progress=(lambda line: print(line, file=sys.stderr))
            if args.progress else None,
        )
        print(crash_report.render())
        if not crash_report.ok:
            exit_code = 1
    if args.fuzz <= 0:
        return exit_code
    factories = None
    if args.schedulers:
        from .verify.fuzz import default_executor_factories

        available = default_executor_factories()
        wanted = [s.strip() for s in args.schedulers.split(",") if s.strip()]
        unknown = [s for s in wanted if s not in available]
        if unknown:
            print(
                f"verify: unknown scheduler(s): {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(available))})",
                file=sys.stderr,
            )
            return 2
        factories = {name: available[name] for name in wanted}
    scenarios = None
    if args.scenarios:
        from .workload.scenarios import SCENARIOS

        wanted = [s.strip() for s in args.scenarios.split(",") if s.strip()]
        if wanted == ["all"]:
            wanted = list(SCENARIOS)
        unknown = [s for s in wanted if s not in SCENARIOS]
        if unknown:
            print(
                f"verify: unknown scenario(s): {', '.join(unknown)} "
                f"(choose from {', '.join(SCENARIOS)})",
                file=sys.stderr,
            )
            return 2
        scenarios = wanted
    fuzzer = DifferentialFuzzer(
        factories=factories,
        txs_per_block=args.txs_per_block,
        minimize=not args.no_minimize,
        backend=args.backend,
        scenarios=scenarios,
    )
    report = fuzzer.run(
        blocks=args.fuzz,
        base_seed=args.seed,
        progress=(lambda line: print(line, file=sys.stderr)) if args.progress else None,
    )
    print(report.render())
    if args.artifacts_dir:
        _write_verify_artifacts(args.artifacts_dir, fuzzer, report)
    return exit_code if report.ok else 1


def _write_verify_artifacts(directory: str, fuzzer, report) -> None:
    """Persist the oracle report and, per divergence, an event trace of the
    failing case (regenerated from its seed) for CI artifact upload."""
    import os

    from .evm.environment import BlockContext
    from .obs import EventBus, build_chrome_trace, build_timeline, write_chrome_trace

    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "oracle_report.txt"), "w") as handle:
        handle.write(report.render() + "\n")
    for divergence in report.divergences:
        workload, txs, _ = fuzzer.case(divergence.seed)
        bus = EventBus()
        executor = fuzzer.factories[divergence.scheduler]()
        executor.obs = bus
        try:
            executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of,
                threads=divergence.threads, block=BlockContext(),
            )
        except Exception as error:  # still export what was traced
            print(f"verify: replay of seed {divergence.seed} "
                  f"[{divergence.scheduler}] raised {error!r}", file=sys.stderr)
        document = build_chrome_trace(
            [(f"{divergence.scheduler} seed {divergence.seed}",
              build_timeline(bus), 0.0)],
            metadata={
                "seed": divergence.seed,
                "scheduler": divergence.scheduler,
                "threads": divergence.threads,
            },
        )
        write_chrome_trace(
            os.path.join(
                directory,
                f"trace_seed{divergence.seed}_{divergence.scheduler}.json",
            ),
            document,
        )
    print(f"verify: artifacts written to {directory}", file=sys.stderr)


def cmd_soak(args) -> int:
    """Run the long-running adversarial soak: scenario traffic through the
    validator over the durable engine with online oracle + root-parity
    invariants, mid-stream crash injection, and periodic compaction."""
    from .soak import run_soak
    from .workload.scenarios import SCENARIOS

    if args.scenario not in SCENARIOS:
        print(
            f"soak: unknown scenario {args.scenario!r} "
            f"(choose from {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    overrides = dict(
        users=args.users,
        erc20_tokens=args.tokens,
        dex_pools=args.pools,
        nft_collections=args.nfts,
        icos=2,
    )
    report = run_soak(
        blocks=args.blocks,
        txs_per_block=args.txs,
        crashes=args.crashes,
        backend=args.backend,
        scenario=args.scenario,
        scheduler=args.scheduler,
        threads=args.workers,
        seed=args.seed,
        compact_every=args.compact_every,
        checkpoint_every=args.checkpoint_every,
        durable_dir=args.dir or None,
        workload_overrides=overrides,
        progress=(lambda line: print(line, file=sys.stderr))
        if args.progress else None,
        report_path=args.report or None,
    )
    print(report.render())
    if args.report:
        print(f"soak: report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Stream scenario traffic through the full block pipeline: mempool
    admission with backpressure, fee-ordered packing, and overlapped
    execute/seal/persist; optionally with the online oracle and
    root-parity twin engaged (--check)."""
    from .pipeline import run_serve
    from .workload.scenarios import SCENARIOS

    if args.scenario not in SCENARIOS:
        print(
            f"serve: unknown scenario {args.scenario!r} "
            f"(choose from {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    overrides = dict(
        users=args.users,
        erc20_tokens=args.tokens,
        dex_pools=args.pools,
        nft_collections=args.nfts,
        icos=2,
    )
    report = run_serve(
        blocks=args.blocks,
        txs_per_block=args.txs,
        scenario=args.scenario,
        scheduler=args.scheduler,
        threads=args.workers,
        seed=args.seed,
        backend=args.backend,
        max_inflight=args.max_inflight,
        pool_size=args.pool_size or None,
        min_fee=args.min_fee,
        per_sender_cap=args.sender_cap,
        check=args.check,
        fsync_delay=args.fsync_delay / 1e3,
        durable_dir=args.dir or None,
        workload_overrides=overrides,
        profile_db=args.profile_db or None,
        progress=(lambda line: print(line, file=sys.stderr))
        if args.progress else None,
        progress_every=args.checkpoint_every,
        report_path=args.report or None,
    )
    print(report.render())
    if args.report:
        print(f"serve: report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_profile(args) -> int:
    """Run the schedulers with event tracing on; write a Perfetto-loadable
    Chrome trace and print the timeline/attribution report."""
    from .obs import profile_to_file

    schedulers = tuple(
        s.strip() for s in args.schedulers.split(",") if s.strip()
    )
    report = profile_to_file(
        args.out,
        blocks=args.blocks,
        txs_per_block=args.txs,
        threads=args.workers,
        schedulers=schedulers,
        contention=args.contention,
        config_overrides=_scaled_workload(args),
        durable_dir=args.durable or None,
        pipeline_blocks=args.pipeline,
        substrate=args.substrate,
        substrate_workers=args.substrate_workers or None,
    )
    print(report.render(top=args.top))
    print(f"\ntrace written to {args.out} "
          f"({len(report.trace['traceEvents'])} events) — load it at "
          f"https://ui.perfetto.dev or chrome://tracing")
    if args.attribution_json:
        payload = {
            scheduler: attribution.to_json()
            for scheduler, attribution in report.attributions.items()
        }
        with open(args.attribution_json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"abort attribution written to {args.attribution_json} "
              f"(feed it to ConflictProfileStore.observe_json to seed a "
              f"lane planner)")
    return 0 if report.correctness_ok else 1


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DMVCC reproduction toolkit"
    )
    parser.add_argument("--users", type=int, default=1_000)
    parser.add_argument("--tokens", type=int, default=15)
    parser.add_argument("--pools", type=int, default=6)
    parser.add_argument("--nfts", type=int, default=5)
    parser.add_argument("--blocks", type=int, default=2)
    parser.add_argument("--txs", type=int, default=400)
    parser.add_argument("--threads", default="1,2,4,8,16,32")
    sub = parser.add_subparsers(dest="command", required=True)

    for figure in ("7a", "7b", "8a", "8b"):
        fig_parser = sub.add_parser(f"fig{figure}", help=f"regenerate Fig. {figure}")
        fig_parser.set_defaults(func=cmd_fig, figure=figure)

    rq1 = sub.add_parser("rq1", help="Merkle-root correctness sweep")
    rq1.add_argument("--scheduler", default="dmvcc", choices=["dmvcc", "occ", "dag"])
    rq1.set_defaults(func=cmd_rq1)

    ablation = sub.add_parser("ablation", help="DMVCC feature ablation")
    ablation.set_defaults(func=cmd_ablation)

    verify = sub.add_parser(
        "verify", help="differential fuzzing under the serializability oracle"
    )
    verify.add_argument("--fuzz", type=int, default=50, metavar="N",
                        help="number of random blocks to fuzz (default 50)")
    verify.add_argument("--seed", type=int, default=0xD34DBEEF,
                        help="base seed; block i uses seed+i")
    verify.add_argument("--txs-per-block", type=int, default=24)
    verify.add_argument("--schedulers", default="", metavar="NAMES",
                        help="comma-separated scheduler subset to fuzz "
                             "(default: all parallel executors)")
    verify.add_argument("--backend", choices=["memory", "durable"],
                        default="memory",
                        help="also seal every fuzz block through the on-disk "
                             "engine and assert roots byte-identical "
                             "(durable)")
    verify.add_argument("--crash-recovery", type=int, default=0, metavar="N",
                        help="run N crash-recovery cases against the durable "
                             "engine (fault-injected kill at a random byte "
                             "offset, then recovery check)")
    verify.add_argument("--scenarios", default="", metavar="NAMES",
                        help="comma-separated adversarial scenario presets "
                             "to overlay on fuzz cases (or 'all'); see "
                             "repro.workload.scenarios")
    verify.add_argument("--substrate", action="store_true",
                        help="sweep every scenario preset × scheduler on "
                             "the real threads and processes backends and "
                             "assert receipts/writes/roots byte-identical "
                             "to the discrete-event simulator")
    verify.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run the sharded-execution parity sweep with N "
                             "shards: every scenario preset × substrate "
                             "backend, sharded DMVCC vs the serial "
                             "reference, plain and merge-declared")
    verify.add_argument("--substrate-workers", type=int, default=3,
                        metavar="N",
                        help="worker count for the --substrate sweep "
                             "(default 3)")
    verify.add_argument("--no-minimize", action="store_true",
                        help="skip greedy shrinking of diverging blocks")
    verify.add_argument("--progress", action="store_true",
                        help="print progress to stderr")
    verify.add_argument("--artifacts-dir", default="", metavar="DIR",
                        help="write oracle report + per-divergence event "
                             "traces here (for CI artifact upload)")
    verify.set_defaults(func=cmd_verify)

    soak = sub.add_parser(
        "soak", help="long-running adversarial soak: online oracle + root "
                     "parity + crash-recovery over the durable engine"
    )
    soak.add_argument("--blocks", type=int, default=1_000,
                      help="blocks to stream (default 1000)")
    soak.add_argument("--txs", type=int, default=64,
                      help="transactions per block (default 64)")
    soak.add_argument("--crashes", type=int, default=3,
                      help="mid-stream crash injections (default 3; "
                           "requires --backend durable)")
    soak.add_argument("--backend", choices=["memory", "durable"],
                      default="durable")
    soak.add_argument("--scenario", default="mix",
                      help="scenario preset, or 'mix' to rotate over all "
                           "of them (default mix)")
    soak.add_argument("--scheduler", default="dmvcc",
                      choices=["serial", "occ", "dag", "dmvcc", "sharded"])
    soak.add_argument("--workers", type=int, default=8,
                      help="simulated threads (default 8)")
    soak.add_argument("--seed", type=int, default=2023)
    soak.add_argument("--compact-every", type=int, default=50,
                      help="compact the durable store every N blocks "
                           "(default 50; 0 disables)")
    soak.add_argument("--checkpoint-every", type=int, default=25,
                      help="sample trend metrics every N blocks (default 25)")
    soak.add_argument("--users", type=int, default=400,
                      help="workload users (default 400)")
    soak.add_argument("--dir", default="",
                      help="pin the durable store to this directory "
                           "(kept afterwards; default: temp dir)")
    soak.add_argument("--report", default="", metavar="PATH",
                      help="write the stamped JSON soak report here")
    soak.add_argument("--progress", action="store_true",
                      help="print checkpoint lines to stderr")
    soak.set_defaults(func=cmd_soak)

    serve = sub.add_parser(
        "serve", help="streaming block pipeline: mempool ingestion, fee "
                      "ordering, backpressure, overlapped "
                      "execute/seal/persist"
    )
    serve.add_argument("--blocks", type=int, default=500,
                       help="blocks to stream (default 500)")
    serve.add_argument("--txs", type=int, default=32,
                       help="target transactions per block (default 32)")
    serve.add_argument("--scenario", default="mix",
                       help="scenario preset, or 'mix' to rotate over all "
                            "of them (default mix)")
    serve.add_argument("--scheduler", default="dmvcc",
                       choices=["serial", "occ", "dag", "dmvcc", "sharded"])
    serve.add_argument("--profile-db", default="", metavar="PATH",
                       help="persist the lane planner's learned conflict "
                            "profiles here (loaded on start when present, "
                            "saved on drain — restart continuity)")
    serve.add_argument("--workers", type=int, default=8,
                       help="simulated threads (default 8)")
    serve.add_argument("--seed", type=int, default=2023)
    serve.add_argument("--backend", choices=["memory", "durable"],
                       default="durable")
    serve.add_argument("--max-inflight", type=int, default=2,
                       help="seal-queue depth; 0 runs strictly sequentially "
                            "(default 2)")
    serve.add_argument("--pool-size", type=int, default=0,
                       help="mempool capacity (default: six blocks' worth)")
    serve.add_argument("--min-fee", type=int, default=0,
                       help="admission fee floor (default 0)")
    serve.add_argument("--sender-cap", type=int, default=0,
                       help="max pooled entries per sender (default: none)")
    serve.add_argument("--check", action="store_true",
                       help="keep the serializability oracle and the "
                            "root-parity twin engaged while streaming")
    serve.add_argument("--fsync-delay", type=float, default=0.0,
                       metavar="MS",
                       help="emulated extra fsync latency in milliseconds "
                            "(benchmarking aid; default 0)")
    serve.add_argument("--users", type=int, default=400,
                       help="workload users (default 400)")
    serve.add_argument("--dir", default="",
                       help="pin the durable store to this directory "
                            "(kept afterwards; default: temp dir)")
    serve.add_argument("--report", default="", metavar="PATH",
                       help="write the stamped JSON serve report here")
    serve.add_argument("--checkpoint-every", type=int, default=50,
                       help="progress line cadence in blocks (default 50)")
    serve.add_argument("--progress", action="store_true",
                       help="print progress lines to stderr")
    serve.set_defaults(func=cmd_serve)

    profile = sub.add_parser(
        "profile", help="event-traced execution: Chrome trace (Perfetto) "
                        "+ wait decomposition + abort attribution"
    )
    profile.add_argument("--blocks", type=int, default=2,
                         help="blocks to profile (default 2)")
    profile.add_argument("--txs", type=int, default=64,
                         help="transactions per block (default 64)")
    profile.add_argument("--workers", type=int, default=8,
                         help="simulated threads for parallel schedulers")
    profile.add_argument("--out", default="trace.json",
                         help="Chrome trace output path (default trace.json)")
    profile.add_argument("--schedulers", default="serial,dag,occ,dmvcc",
                         help="comma-separated scheduler subset")
    profile.add_argument("--contention", choices=["high", "low"],
                         default="high",
                         help="workload profile (default high)")
    profile.add_argument("--top", type=int, default=10,
                         help="hot keys to list in the attribution table")
    profile.add_argument("--attribution-json", default="", metavar="PATH",
                         help="also dump the per-scheduler abort attribution "
                              "as JSON (ConflictProfileStore.observe_json-"
                              "compatible)")
    profile.add_argument("--durable", default="", metavar="DIR",
                         help="also commit every block to an on-disk mirror "
                              "at DIR and report fsync/append/cache costs")
    profile.add_argument("--pipeline", type=int, default=6, metavar="N",
                         help="stream N blocks through the pipelined driver "
                              "and report per-stage occupancy/latency "
                              "(default 6; 0 skips)")
    profile.add_argument("--substrate",
                         choices=["sim", "threads", "processes"],
                         default="sim",
                         help="execution backend: discrete-event simulator "
                              "(default), real threading, or real "
                              "multiprocessing workers; the wall-clock "
                              "section shows real seconds per executor")
    profile.add_argument("--substrate-workers", type=int, default=0,
                         metavar="N",
                         help="worker count for real backends "
                              "(default: --workers)")
    profile.set_defaults(func=cmd_profile)

    from .db.cli import add_db_parser

    add_db_parser(sub)

    analyze = sub.add_parser("analyze", help="print a contract's P-SAG")
    analyze.add_argument("file")
    analyze.add_argument("--dot", action="store_true",
                         help="also print a graphviz rendering")
    analyze.set_defaults(func=cmd_analyze)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
