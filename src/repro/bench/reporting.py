"""Human-readable reports: ASCII schedule charts and speedup curves.

``render_gantt`` draws the per-thread execution timeline of a block — the
picture the paper uses in Fig. 4(b) and Fig. 6 to show how early-write
visibility and commutative writes compact the schedule.

``stamp_results`` / ``save_results_json`` give every emitted result file a
provenance block (schema version + git commit), so archived benchmark JSON
can always be traced back to the code that produced it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.metrics import BlockMetrics

# Bump when the shape of emitted result JSON changes incompatibly.
# v2: repro_meta gained host provenance (python, cpu_count, backend) so
# wall-clock numbers from the execution substrates can be interpreted.
# v3: repro_meta gained sharding provenance (shards, merge_ops) so a
# sharded or merge-declared result can never be mistaken for a plain run.
RESULTS_SCHEMA_VERSION = 3


def _git_commit() -> str:
    """The repository's HEAD commit — suffixed with ``+dirty`` when tracked
    files have uncommitted modifications — or "unknown" outside a git
    checkout (results must still be writable from an exported tarball)."""
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            commit = proc.stdout.strip()
            try:
                status = subprocess.run(
                    ["git", "status", "--porcelain", "--untracked-files=no"],
                    capture_output=True,
                    text=True,
                    timeout=10,
                    cwd=cwd,
                )
                if status.returncode == 0 and status.stdout.strip():
                    commit += "+dirty"
            except (OSError, subprocess.SubprocessError):
                pass  # dirtiness unknown: keep the bare commit
            return commit
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def stamp_results(document: dict, backend: Optional[str] = None,
                  shards: int = 0,
                  merge_ops: Optional[Sequence[str]] = None) -> dict:
    """Attach the provenance block to a result document, in place.

    Used both by :func:`save_results_json` and by the pytest-benchmark
    ``update_json`` hook, so ``bench_results.json`` and ad-hoc exports carry
    the same ``repro_meta``.

    Besides the schema version and git commit, the stamp records the host
    facts that wall-clock numbers cannot be read without: the Python
    version, the machine's CPU count, and the execution ``backend`` the run
    used (explicit argument, else ``REPRO_SUBSTRATE``, else "sim") — a
    "processes beats threads" result means nothing if the archive doesn't
    say the box had one core.  Sharded runs additionally record the shard
    count and the declared merge-operation kinds (sorted, deduplicated):
    ``shards=0`` / ``merge_ops=[]`` is the unsharded, undeclared baseline.
    """
    if backend is None:
        backend = os.environ.get("REPRO_SUBSTRATE", "").strip() or "sim"
    document["repro_meta"] = {
        "schema_version": RESULTS_SCHEMA_VERSION,
        "git_commit": _git_commit(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "backend": backend,
        "shards": max(0, int(shards)),
        "merge_ops": sorted(set(merge_ops)) if merge_ops else [],
    }
    return document


def save_results_json(path: str, payload: dict,
                      backend: Optional[str] = None,
                      shards: int = 0,
                      merge_ops: Optional[Sequence[str]] = None) -> dict:
    """Write ``payload`` to ``path`` as stamped, indented JSON; returns the
    stamped document."""
    document = stamp_results(dict(payload), backend=backend, shards=shards,
                             merge_ops=merge_ops)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=str)
    return document


def render_gantt(
    metrics: BlockMetrics,
    width: int = 72,
    max_threads: int = 16,
) -> str:
    """ASCII Gantt chart from per-transaction metrics.

    Each thread row shows its transactions as ``[T<i>──]`` spans scaled to
    the block's makespan.  Re-executed transactions show their final
    attempt (the one whose effects committed).
    """
    if not metrics.per_tx or metrics.makespan <= 0:
        return "(empty schedule)"

    # Reconstruct thread lanes greedily from (start, end) intervals: two
    # transactions share a lane iff they do not overlap.
    spans = sorted(
        (tx.start_time, tx.end_time, tx.index)
        for tx in metrics.per_tx
        if tx.end_time > tx.start_time
    )
    lanes: List[List[Tuple[float, float, int]]] = []
    for start, end, index in spans:
        for lane in lanes:
            if lane[-1][1] <= start + 1e-9:
                lane.append((start, end, index))
                break
        else:
            lanes.append([(start, end, index)])

    scale = width / metrics.makespan
    lines = [
        f"schedule: {metrics.scheduler}, {metrics.tx_count} txs, "
        f"{metrics.threads} threads, makespan {metrics.makespan:,.0f} "
        f"(speedup {metrics.speedup:.2f}x)"
    ]
    for lane_no, lane in enumerate(lanes[:max_threads]):
        row = [" "] * width
        for start, end, index in lane:
            left = min(int(start * scale), width - 1)
            right = min(max(int(end * scale), left + 1), width)
            label = f"T{index}"
            span = right - left
            body = (label + "─" * span)[: span - 1] if span > 1 else ""
            row[left:right] = list(("[" + body)[:span])
            if span > 1:
                row[right - 1] = "]"
        lines.append(f"  t{lane_no:<2d} |{''.join(row)}|")
    if len(lanes) > max_threads:
        lines.append(f"  … {len(lanes) - max_threads} more lanes")
    return "\n".join(lines)


def render_speedup_curves(
    series: Dict[str, Sequence[Tuple[int, float]]],
    height: int = 12,
    title: str = "speedup vs threads",
) -> str:
    """ASCII line plot of speedup curves (one symbol per scheduler)."""
    symbols = "O*x+#@"
    all_points = [p for curve in series.values() for p in curve]
    if not all_points:
        return "(no data)"
    max_speedup = max(speedup for _t, speedup in all_points)
    threads = sorted({t for curve in series.values() for t, _s in curve})
    column_of = {t: i for i, t in enumerate(threads)}
    width = len(threads)

    grid = [[" "] * width for _ in range(height)]
    for label_index, (label, curve) in enumerate(sorted(series.items())):
        symbol = symbols[label_index % len(symbols)]
        for t, speedup in curve:
            row = height - 1 - int((speedup / max_speedup) * (height - 1))
            grid[row][column_of[t]] = symbol

    lines = [title]
    for i, row in enumerate(grid):
        level = max_speedup * (height - 1 - i) / (height - 1)
        lines.append(f"{level:7.1f}x |" + "  ".join(row))
    lines.append("         +" + "--" * width)
    lines.append("          " + "  ".join(f"{t}" for t in threads))
    legend = "   ".join(
        f"{symbols[i % len(symbols)]}={label}"
        for i, label in enumerate(sorted(series))
    )
    lines.append(f"threads ({legend})")
    return "\n".join(lines)


def speedup_series_from_result(result) -> Dict[str, List[Tuple[int, float]]]:
    """Adapt a SpeedupResult into render_speedup_curves input."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for row in result.rows:
        series.setdefault(row.scheduler, []).append((row.threads, row.speedup))
    for curve in series.values():
        curve.sort()
    return series
