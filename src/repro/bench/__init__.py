"""Benchmark harness: one runner per figure/claim of the paper."""

from .ablation import ablation_executors, run_feature_ablation
from .harness import (
    clone_statedb,
    CorrectnessResult,
    SpeedupResult,
    SpeedupRow,
    ThroughputResult,
    ThroughputRow,
    default_executors,
    run_blockchain_throughput,
    run_fig7a,
    run_fig7b,
    run_fig8a,
    run_fig8b,
    run_rq1_correctness,
    run_speedup_experiment,
)
from .reporting import (
    RESULTS_SCHEMA_VERSION,
    render_gantt,
    render_speedup_curves,
    save_results_json,
    speedup_series_from_result,
    stamp_results,
)

__all__ = [
    "RESULTS_SCHEMA_VERSION",
    "render_gantt",
    "render_speedup_curves",
    "save_results_json",
    "speedup_series_from_result",
    "stamp_results",
    "CorrectnessResult",
    "SpeedupResult",
    "SpeedupRow",
    "ThroughputResult",
    "ThroughputRow",
    "ablation_executors",
    "clone_statedb",
    "default_executors",
    "run_blockchain_throughput",
    "run_feature_ablation",
    "run_fig7a",
    "run_fig7b",
    "run_fig8a",
    "run_fig8b",
    "run_rq1_correctness",
    "run_speedup_experiment",
]
