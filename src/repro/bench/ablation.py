"""Ablation experiments for DMVCC's design choices.

The paper motivates three mechanisms — write versioning, early-write
visibility, commutative writes — and Fig. 6 illustrates the latter two.
These experiments toggle each mechanism to quantify its contribution, plus
one extra: how much of DMVCC's advantage over the DAG baseline is just
*analysis precision* (slot-level vs variable-level conflict sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..executors.dag import DAGExecutor
from ..executors.dmvcc import DMVCCExecutor
from ..workload.generator import WorkloadConfig, high_contention_config
from .harness import SpeedupResult, run_speedup_experiment


def ablation_executors() -> Dict[str, Callable[[], object]]:
    """DMVCC variants with individual features removed."""
    return {
        "dmvcc": lambda: DMVCCExecutor(),
        "dmvcc-noEW": lambda: DMVCCExecutor(enable_early_write=False),
        "dmvcc-noCW": lambda: DMVCCExecutor(enable_commutative=False),
        "dmvcc-wv": lambda: DMVCCExecutor(
            enable_early_write=False, enable_commutative=False
        ),
        "dag-slot": lambda: DAGExecutor(granularity="slot"),
        "dag": lambda: DAGExecutor(),
    }


def run_feature_ablation(
    blocks: int = 2,
    txs_per_block: int = 500,
    thread_counts: Sequence[int] = (8, 32),
    config: WorkloadConfig = None,
) -> SpeedupResult:
    """High-contention ablation: where do DMVCC's wins come from?"""
    if config is None:
        config = high_contention_config()
    return run_speedup_experiment(
        config,
        "Ablation: DMVCC features under high contention",
        blocks=blocks,
        txs_per_block=txs_per_block,
        thread_counts=thread_counts,
        executors=ablation_executors(),
    )
