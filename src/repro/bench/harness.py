"""Experiment harness: one entry point per figure/claim in the paper.

Every function returns plain data (lists of rows) and can also print the
paper-style series, so both the pytest-benchmark wrappers and the example
scripts reuse the same machinery.  All experiments are seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..chain.network import NetworkSimulation
from ..chain.txpool import Packer
from ..chain.validator import Validator
from ..executors.base import Executor
from ..executors.dag import DAGExecutor
from ..executors.dmvcc import DMVCCExecutor
from ..executors.occ import OCCExecutor
from ..executors.serial import SerialExecutor
from ..sim.metrics import BlockMetrics, aggregate
from ..state.statedb import StateDB
from ..workload.generator import (
    Workload,
    WorkloadConfig,
    high_contention_config,
    low_contention_config,
)

DEFAULT_THREAD_COUNTS = (1, 2, 4, 8, 16, 32)


def default_executors() -> Dict[str, Callable[[], Executor]]:
    """The paper's comparison set."""
    return {
        "dag": DAGExecutor,
        "occ": OCCExecutor,
        "dmvcc": DMVCCExecutor,
    }


@dataclass
class SpeedupRow:
    """One point of a Fig. 7-style speedup curve."""

    scheduler: str
    threads: int
    speedup: float
    aborts: int
    abort_rate: float
    executions: int
    utilisation: float

    def __str__(self) -> str:
        return (
            f"{self.scheduler:>8} @ {self.threads:>2} threads: "
            f"{self.speedup:6.2f}x  (aborts={self.aborts}, "
            f"abort_rate={self.abort_rate:.2%})"
        )


@dataclass
class SpeedupResult:
    """A full speedup experiment (one workload, all schedulers/threads)."""

    name: str
    rows: List[SpeedupRow] = field(default_factory=list)
    correctness_ok: bool = True

    def series(self, scheduler: str) -> List[SpeedupRow]:
        return sorted(
            (r for r in self.rows if r.scheduler == scheduler),
            key=lambda r: r.threads,
        )

    def at(self, scheduler: str, threads: int) -> SpeedupRow:
        for row in self.rows:
            if row.scheduler == scheduler and row.threads == threads:
                return row
        raise KeyError((scheduler, threads))

    def format_table(self) -> str:
        lines = [f"== {self.name} =="]
        schedulers = sorted({r.scheduler for r in self.rows})
        threads = sorted({r.threads for r in self.rows})
        header = "scheduler | " + " ".join(f"{t:>7}" for t in threads)
        lines.append(header)
        lines.append("-" * len(header))
        for scheduler in schedulers:
            cells = []
            for t in threads:
                try:
                    cells.append(f"{self.at(scheduler, t).speedup:7.2f}")
                except KeyError:
                    cells.append("      -")
            lines.append(f"{scheduler:>9} | " + " ".join(cells))
        lines.append(f"correctness (root match): {'OK' if self.correctness_ok else 'FAILED'}")
        return "\n".join(lines)


def run_speedup_experiment(
    config: WorkloadConfig,
    name: str,
    blocks: int = 4,
    txs_per_block: int = 1_000,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    executors: Optional[Dict[str, Callable[[], Executor]]] = None,
    verify_roots: bool = True,
) -> SpeedupResult:
    """Fig. 7 machinery: speedup vs thread count for every scheduler.

    Blocks are executed back-to-back: the reference serial execution commits
    each block before the next is generated against its snapshot, exactly
    like the paper's repacked-block evaluation.  Every parallel execution of
    a block starts from the same pre-block snapshot and is checked to
    produce the same write set as serial.
    """
    if executors is None:
        executors = default_executors()
    workload = Workload(config)
    block_txs = [workload.transactions(txs_per_block) for _ in range(blocks)]

    result = SpeedupResult(name=name)
    serial = SerialExecutor()
    # scheduler -> threads -> accumulated metrics
    metric_acc: Dict[str, Dict[int, List[BlockMetrics]]] = {
        label: {t: [] for t in thread_counts} for label in executors
    }

    for txs in block_txs:
        base_height = workload.db.height
        snapshot = workload.db.snapshot(base_height)
        reference = serial.execute_block(
            txs, snapshot, workload.db.codes.code_of
        )
        for label, factory in executors.items():
            for threads in thread_counts:
                execution = factory().execute_block(
                    txs, snapshot, workload.db.codes.code_of, threads=threads
                )
                if verify_roots and execution.writes != reference.writes:
                    result.correctness_ok = False
                metric_acc[label][threads].append(execution.metrics)
        workload.db.commit(reference.writes)

    for label in executors:
        for threads in thread_counts:
            total = aggregate(metric_acc[label][threads])
            result.rows.append(
                SpeedupRow(
                    scheduler=label,
                    threads=threads,
                    speedup=total.speedup,
                    aborts=total.aborts,
                    abort_rate=total.abort_rate,
                    executions=total.executions,
                    utilisation=total.utilisation,
                )
            )
    return result


def run_fig7a(
    blocks: int = 4,
    txs_per_block: int = 1_000,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    **config_overrides,
) -> SpeedupResult:
    """Fig. 7(a): speedup on the mainnet-mix (low-contention) workload."""
    config = low_contention_config(**config_overrides)
    return run_speedup_experiment(
        config, "Fig 7(a): speedup, low contention", blocks, txs_per_block,
        thread_counts,
    )


def run_fig7b(
    blocks: int = 4,
    txs_per_block: int = 1_000,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    **config_overrides,
) -> SpeedupResult:
    """Fig. 7(b): speedup under hot-contract skew (high contention)."""
    config = high_contention_config(**config_overrides)
    return run_speedup_experiment(
        config, "Fig 7(b): speedup, high contention", blocks, txs_per_block,
        thread_counts,
    )


# ---------------------------------------------------------------------------
# RQ1: correctness (Merkle-root comparison)
# ---------------------------------------------------------------------------

@dataclass
class CorrectnessResult:
    blocks_checked: int
    txs_checked: int
    matches: int

    @property
    def all_match(self) -> bool:
        return self.matches == self.blocks_checked


def run_rq1_correctness(
    blocks: int = 10,
    txs_per_block: int = 200,
    scheduler: str = "dmvcc",
    threads: int = 8,
    **config_overrides,
) -> CorrectnessResult:
    """RQ1: execute blocks with a parallel scheduler and with serial EVM on
    two independent StateDBs; compare the Merkle roots block by block."""
    config = low_contention_config(**config_overrides)
    workload = Workload(config)
    factory = default_executors()[scheduler]

    # A second, independent chain replaying the same blocks serially.
    shadow = Workload(config)
    serial = SerialExecutor()

    matches = 0
    txs_checked = 0
    for _ in range(blocks):
        txs = workload.transactions(txs_per_block)
        txs_checked += len(txs)

        execution = factory().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=threads
        )
        parallel_root = workload.db.commit(execution.writes).root_hash

        reference = serial.execute_block(
            txs, shadow.db.latest, shadow.db.codes.code_of
        )
        serial_root = shadow.db.commit(reference.writes).root_hash

        if parallel_root == serial_root:
            matches += 1
    return CorrectnessResult(blocks, txs_checked, matches)


# ---------------------------------------------------------------------------
# RQ3: blockchain-environment throughput
# ---------------------------------------------------------------------------

@dataclass
class ThroughputRow:
    scheduler: str
    threads: int
    throughput: float
    speedup: float
    mean_execution_seconds: float
    roots_agree: bool


@dataclass
class ThroughputResult:
    name: str
    rows: List[ThroughputRow] = field(default_factory=list)

    def at(self, scheduler: str, threads: int) -> ThroughputRow:
        for row in self.rows:
            if row.scheduler == scheduler and row.threads == threads:
                return row
        raise KeyError((scheduler, threads))

    def format_table(self) -> str:
        lines = [f"== {self.name} =="]
        for row in sorted(self.rows, key=lambda r: (r.scheduler, r.threads)):
            lines.append(
                f"{row.scheduler:>8} @ {row.threads:>2} threads: "
                f"{row.throughput:8.1f} TPS ({row.speedup:5.2f}x vs serial, "
                f"exec {row.mean_execution_seconds:6.2f}s/block, "
                f"roots {'ok' if row.roots_agree else 'MISMATCH'})"
            )
        return "\n".join(lines)


def run_blockchain_throughput(
    config: WorkloadConfig,
    name: str,
    validators: int = 4,
    blocks: int = 3,
    txs_per_block: int = 2_000,
    block_interval: float = 12.0,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    schedulers: Sequence[str] = ("dag", "occ", "dmvcc"),
    gas_per_second: float = 1_250_000.0,
    seed: int = 7,
) -> ThroughputResult:
    """Fig. 8 machinery: throughput speedup in a simulated validator
    network.  The serial single-thread run defines the baseline."""
    result = ThroughputResult(name=name)
    # One workload and transaction stream shared by every row; each run
    # gets fresh, fully independent validator StateDBs cloned from it.
    workload = Workload(config)
    txs = workload.transactions(blocks * txs_per_block)

    def build_network(executor_factory, threads: int) -> NetworkSimulation:
        nodes = []
        for v in range(validators):
            db = _clone_statedb(workload)
            nodes.append(
                Validator(
                    f"v{v}",
                    db,
                    executor_factory(),
                    threads=threads,
                    packer=Packer(max_txs=txs_per_block),
                )
            )
        network = NetworkSimulation(
            nodes,
            block_interval=block_interval,
            gas_per_second=gas_per_second,
            seed=seed,
            deterministic_interval=True,
        )
        network.submit(txs)
        return network

    serial_net = build_network(SerialExecutor, 1)
    serial_result = serial_net.run(blocks)
    baseline = serial_result.throughput
    result.rows.append(
        ThroughputRow(
            "serial", 1, baseline, 1.0,
            serial_result.mean_execution_seconds, serial_result.all_roots_agree,
        )
    )

    executors = default_executors()
    for label in schedulers:
        for threads in thread_counts:
            network = build_network(executors[label], threads)
            run = network.run(blocks)
            result.rows.append(
                ThroughputRow(
                    label,
                    threads,
                    run.throughput,
                    run.throughput / baseline if baseline else 0.0,
                    run.mean_execution_seconds,
                    run.all_roots_agree,
                )
            )
    return result


def clone_statedb(workload: Workload) -> StateDB:
    """Each validator gets a logically independent StateDB starting at the
    workload's current state (a cheap fork: the content-addressed trie
    store is append-only, so forks can never interfere)."""
    return workload.db.fork()


# Backwards-compatible alias (pre-1.0 internal name).
_clone_statedb = clone_statedb


def run_fig8a(**kwargs) -> ThroughputResult:
    """Fig. 8(a): network throughput speedup, low contention."""
    config = low_contention_config(
        **kwargs.pop("config_overrides", {})
    )
    return run_blockchain_throughput(
        config, "Fig 8(a): blockchain throughput, low contention", **kwargs
    )


def run_fig8b(**kwargs) -> ThroughputResult:
    """Fig. 8(b): network throughput speedup, high contention."""
    config = high_contention_config(
        **kwargs.pop("config_overrides", {})
    )
    return run_blockchain_throughput(
        config, "Fig 8(b): blockchain throughput, high contention", **kwargs
    )
