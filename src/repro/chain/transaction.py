"""Transactions.

Two kinds, as in the paper: *contract calls* (the target has code; the data
field carries an ABI-encoded call) and *Ether transactions* (plain value
transfers that never start an EVM instance).  The kind is a property of the
target account, not of the transaction itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.encoding import encode_int, rlp_encode
from ..core.errors import InvalidTransaction
from ..core.hashing import keccak
from ..core.types import Address

DEFAULT_GAS_LIMIT = 2_000_000


@dataclass(frozen=True)
class Transaction:
    """One signed transaction (signatures themselves are out of scope; the
    sender field is taken as authenticated, as the paper does)."""

    sender: Address
    to: Address
    value: int = 0
    data: bytes = b""
    gas_limit: int = DEFAULT_GAS_LIMIT
    nonce: int = 0
    fee: int = 0  # priority fee the sender bids for inclusion
    label: str = field(default="", compare=False)  # debugging/metrics tag

    def __post_init__(self) -> None:
        if self.value < 0:
            raise InvalidTransaction("negative value")
        if self.gas_limit <= 0:
            raise InvalidTransaction("gas limit must be positive")
        if self.fee < 0:
            raise InvalidTransaction("negative fee")
        if self.nonce < 0:
            raise InvalidTransaction("negative nonce")

    @property
    def tx_hash(self) -> bytes:
        return keccak(
            rlp_encode([
                self.sender.to_bytes(),
                self.to.to_bytes(),
                encode_int(self.value),
                self.data,
                encode_int(self.gas_limit),
                encode_int(self.nonce),
                encode_int(self.fee),
            ])
        )

    @property
    def is_transfer(self) -> bool:
        """True when the transaction carries no calldata (note that the
        authoritative test is whether the *target* has code)."""
        return not self.data

    def short_id(self) -> str:
        return self.tx_hash.hex()[:10]

    def __repr__(self) -> str:
        tag = f" {self.label}" if self.label else ""
        return f"Tx({self.short_id()}{tag}, {self.sender} -> {self.to})"
