"""Multi-validator network simulation (the paper's RQ3 testbed).

Models a micro Ethereum network: ``n`` validators with identical genesis
state, a Poisson PoW miner (12 s mainnet-like or 1 s fast-consensus
interval), gossip propagation delay, and per-validator block execution with
a configurable scheduler and thread count.

Execution time is derived from simulated gas via ``gas_per_second`` — the
calibration knob standing in for the authors' testbed hardware.  The block
cycle of the chain is ``max(mining interval, execution + propagation)``:
when execution is the bottleneck (big blocks / fast consensus), parallel
schedulers lift throughput; when mining dominates (180-tx blocks), they
don't — exactly the regime switch Fig. 8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ChainError
from ..sim.metrics import BlockMetrics
from .consensus import PoWSimulator, PropagationModel
from .transaction import Transaction
from .validator import Validator

# Default calibration: the paper's serial EVM executes a 1,000-tx block in
# roughly 40 s, i.e. ~25-40 ms per transaction at ~50k gas each.
DEFAULT_GAS_PER_SECOND = 1_250_000.0


@dataclass
class BlockRecord:
    """Outcome of one block cycle at the mining validator."""

    number: int
    miner: str
    tx_count: int
    mining_gap: float          # seconds since the previous block was mined
    execution_seconds: float
    propagation_seconds: float
    cycle_seconds: float       # effective time this block occupied the chain
    state_root: bytes
    metrics: BlockMetrics
    roots_agree: bool = True


@dataclass
class NetworkResult:
    """Aggregate outcome of a network run."""

    records: List[BlockRecord] = field(default_factory=list)
    missing_csags: int = 0

    @property
    def committed_txs(self) -> int:
        return sum(r.tx_count for r in self.records)

    @property
    def total_seconds(self) -> float:
        return sum(r.cycle_seconds for r in self.records)

    @property
    def throughput(self) -> float:
        """Committed transactions per second of chain time."""
        total = self.total_seconds
        return self.committed_txs / total if total else 0.0

    @property
    def all_roots_agree(self) -> bool:
        return all(r.roots_agree for r in self.records)

    @property
    def mean_execution_seconds(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.execution_seconds for r in self.records) / len(self.records)


class NetworkSimulation:
    """Drives a validator set through a mining schedule."""

    def __init__(
        self,
        validators: List[Validator],
        block_interval: float = 12.0,
        gas_per_second: float = DEFAULT_GAS_PER_SECOND,
        propagation: Optional[PropagationModel] = None,
        seed: int = 0,
        deterministic_interval: bool = False,
        import_on_all: bool = True,
    ) -> None:
        if not validators:
            raise ChainError("network needs at least one validator")
        self.validators = validators
        self.gas_per_second = gas_per_second
        self.propagation = propagation if propagation is not None else PropagationModel()
        self.pow = PoWSimulator(
            len(validators), block_interval, seed,
            deterministic_interval=deterministic_interval,
        )
        self.block_interval = block_interval
        self.import_on_all = import_on_all

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def submit(self, txs: List[Transaction], drop_rate: float = 0.0, seed: int = 1) -> None:
        """Broadcast transactions to every validator's pool.

        ``drop_rate`` models gossip loss: each non-mining validator misses a
        transaction with that probability and must handle the missing-SAG
        path when the block arrives (paper §III-A).
        """
        import random

        rng = random.Random(seed)
        for tx in txs:
            for i, validator in enumerate(self.validators):
                if i > 0 and drop_rate > 0 and rng.random() < drop_rate:
                    continue
                validator.receive_transaction(tx)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, block_count: int) -> NetworkResult:
        """Mine ``block_count`` blocks, importing each on every validator."""
        result = NetworkResult()
        previous_time = 0.0
        for event in self.pow.events(block_count):
            miner = self.validators[event.miner_index]
            block, execution = miner.propose_block(timestamp=int(event.time))
            if len(block) == 0:
                previous_time = event.time
                continue
            execution_seconds = _to_seconds(execution.metrics.makespan, self.gas_per_second)
            propagation_seconds = self.propagation.delay(len(block))

            roots_agree = True
            if self.import_on_all:
                for validator in self.validators:
                    if validator is miner:
                        continue
                    peer_execution = validator.import_block(block)
                    execution_seconds = max(
                        execution_seconds,
                        _to_seconds(peer_execution.metrics.makespan, self.gas_per_second),
                    )
                    if validator.state_root() != block.header.state_root:
                        roots_agree = False

            mining_gap = event.time - previous_time
            previous_time = event.time
            cycle = max(mining_gap, execution_seconds + propagation_seconds)
            result.records.append(
                BlockRecord(
                    number=block.number,
                    miner=miner.name,
                    tx_count=len(block),
                    mining_gap=mining_gap,
                    execution_seconds=execution_seconds,
                    propagation_seconds=propagation_seconds,
                    cycle_seconds=cycle,
                    state_root=block.header.state_root,
                    metrics=execution.metrics,
                    roots_agree=roots_agree,
                )
            )
        result.missing_csags = sum(v.stats.missing_csags for v in self.validators)
        return result


def _to_seconds(gas_time: float, gas_per_second: float) -> float:
    return gas_time / gas_per_second
