"""Simulated Proof-of-Work consensus.

The paper's RQ3 testbed adjusts the mining difficulty so blocks arrive
roughly every 12 seconds (mainnet-like) or every 1 second (fast-consensus
regime).  We model mining as a Poisson process over the validator set:
inter-block times are exponentially distributed around the target interval
and each block's miner is drawn uniformly (equal hash power), all from a
seeded RNG so runs are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class MiningEvent:
    """One mined block slot."""

    number: int
    time: float      # seconds since simulation start
    miner_index: int


class PoWSimulator:
    """Seeded Poisson mining over ``validator_count`` equal miners."""

    def __init__(
        self,
        validator_count: int,
        block_interval: float = 12.0,
        seed: int = 0,
        deterministic_interval: bool = False,
    ) -> None:
        if validator_count <= 0:
            raise ValueError("need at least one validator")
        if block_interval <= 0:
            raise ValueError("block interval must be positive")
        self.validator_count = validator_count
        self.block_interval = block_interval
        self.deterministic_interval = deterministic_interval
        self._rng = random.Random(seed)

    def events(self, count: int) -> Iterator[MiningEvent]:
        """Generate the next ``count`` mining events."""
        time = 0.0
        for number in range(1, count + 1):
            if self.deterministic_interval:
                gap = self.block_interval
            else:
                # Exponential inter-arrival; clamp pathological samples so a
                # single draw cannot stall the whole simulation.
                gap = min(
                    self._rng.expovariate(1.0 / self.block_interval),
                    self.block_interval * 8,
                )
            time += gap
            yield MiningEvent(
                number=number,
                time=time,
                miner_index=self._rng.randrange(self.validator_count),
            )


@dataclass(frozen=True)
class PropagationModel:
    """Block propagation latency between validators.

    A base latency plus a per-transaction serialisation cost, the standard
    first-order model of gossip broadcast.
    """

    base_delay: float = 0.2          # seconds
    per_tx_delay: float = 0.0001     # seconds per transaction

    def delay(self, tx_count: int) -> float:
        return self.base_delay + self.per_tx_delay * tx_count
