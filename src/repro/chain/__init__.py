"""Blockchain substrate: transactions, blocks, pools, validators, network."""

from .block import (
    GENESIS_PARENT,
    Block,
    BlockHeader,
    make_block,
    transactions_root,
    validate_block_shape,
)
from .consensus import MiningEvent, PoWSimulator, PropagationModel
from .network import (
    DEFAULT_GAS_PER_SECOND,
    BlockRecord,
    NetworkResult,
    NetworkSimulation,
)
from .transaction import DEFAULT_GAS_LIMIT, Transaction
from .txpool import (
    AdmissionResult,
    Packer,
    PooledTransaction,
    PoolStats,
    TransactionPool,
)
from .validator import Validator, ValidatorStats

__all__ = [
    "AdmissionResult",
    "Block",
    "BlockHeader",
    "BlockRecord",
    "DEFAULT_GAS_LIMIT",
    "DEFAULT_GAS_PER_SECOND",
    "GENESIS_PARENT",
    "MiningEvent",
    "NetworkResult",
    "NetworkSimulation",
    "Packer",
    "PoWSimulator",
    "PoolStats",
    "PooledTransaction",
    "PropagationModel",
    "Transaction",
    "TransactionPool",
    "Validator",
    "ValidatorStats",
    "make_block",
    "transactions_root",
    "validate_block_shape",
]
