"""Validator (full node): the paper's Fig. 2 workflow on one node.

A validator receives transactions, analyses them into SAGs against its
latest snapshot, pools them, packs blocks (when mining), executes blocks
with its configured scheduler, and commits state snapshots.  Importing a
foreign block looks up the cached C-SAGs; transactions missing from the
local pool are either re-analysed on the fly or executed OCC-style with an
empty ("missing") C-SAG — both paths the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.csag import CSAG, CSAGBuilder
from ..analysis.sag import PSAGCache
from ..core.errors import InvalidBlock
from ..core.types import Address
from ..evm.environment import BlockContext
from ..executors.base import BlockExecution, Executor
from ..state.statedb import StateDB
from .block import GENESIS_PARENT, Block, BlockHeader, make_block, validate_block_shape
from .transaction import Transaction
from .txpool import Packer, TransactionPool


@dataclass
class ValidatorStats:
    """Counters a validator accumulates across its lifetime."""

    received_txs: int = 0
    analysed_txs: int = 0
    proposed_blocks: int = 0
    imported_blocks: int = 0
    missing_csags: int = 0
    reanalysed_csags: int = 0
    root_mismatches: int = 0
    executed_txs: int = 0


class Validator:
    """One full node."""

    def __init__(
        self,
        name: str,
        statedb: StateDB,
        executor: Executor,
        threads: int = 1,
        packer: Optional[Packer] = None,
        psag_cache: Optional[PSAGCache] = None,
        reanalyse_missing: bool = True,
    ) -> None:
        self.name = name
        self.db = statedb
        self.executor = executor
        self.threads = threads
        self.pool = TransactionPool()
        self.packer = packer if packer is not None else Packer()
        self.psag_cache = psag_cache if psag_cache is not None else PSAGCache()
        self.reanalyse_missing = reanalyse_missing
        self.address = Address.derive(f"validator:{name}")
        self.stats = ValidatorStats()
        self.chain: List[BlockHeader] = []

    # ------------------------------------------------------------------
    # Transaction intake (analysis happens here, offline)
    # ------------------------------------------------------------------

    def _builder(self, block: Optional[BlockContext] = None) -> CSAGBuilder:
        return CSAGBuilder(self.db.codes.code_of, self.psag_cache, block)

    def receive_transaction(self, tx: Transaction, analyse: bool = True) -> bool:
        """Accept a transaction into the pool, analysing it immediately
        (the paper's SAG-analyzer stage)."""
        self.stats.received_txs += 1
        csag: Optional[CSAG] = None
        if analyse:
            csag = self._builder().build(tx, self.db.latest)
            self.stats.analysed_txs += 1
        return self.pool.add(tx, csag)

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------

    def propose_block(self, timestamp: int = 0) -> "tuple[Block, BlockExecution]":
        """Pack, execute, commit, and seal the next block."""
        pooled = self.packer.pack(self.pool)
        txs = [p.tx for p in pooled]
        csags = [
            p.csag if p.csag is not None
            else self._builder().build(p.tx, self.db.latest)
            for p in pooled
        ]
        execution = self._execute(txs, csags, timestamp)
        snapshot = self._commit(execution)
        block = make_block(
            number=snapshot.height,
            parent_hash=self._parent_hash(),
            state_root=snapshot.root_hash,
            txs=txs,
            timestamp=timestamp,
            miner=self.address,
            gas_used=execution.metrics.total_gas,
        )
        self.chain.append(block.header)
        self.stats.proposed_blocks += 1
        self.stats.executed_txs += len(txs)
        return block, execution

    def adopt_statedb(self, statedb: StateDB) -> None:
        """Swap in a recovered StateDB and keep proposing from it.

        Used by the soak harness after a crash-recovery cycle: the durable
        store is reopened (log replayed, torn tail truncated) as a *new*
        StateDB, and the validator resumes on it.  The recovered chain must
        line up with the headers this validator already sealed — adopting a
        store that lost sealed blocks would silently fork the chain.
        """
        if self.chain and statedb.height != self.chain[-1].number:
            raise InvalidBlock(
                f"{self.name}: recovered store is at height {statedb.height} "
                f"but the chain head is block {self.chain[-1].number}"
            )
        if self.chain and statedb.latest.root_hash != self.chain[-1].state_root:
            raise InvalidBlock(
                f"{self.name}: recovered root diverges from the sealed "
                f"head at block {self.chain[-1].number}"
            )
        self.db = statedb

    # ------------------------------------------------------------------
    # Importing
    # ------------------------------------------------------------------

    def import_block(self, block: Block, verify_root: bool = True) -> BlockExecution:
        """Execute and commit a block mined elsewhere."""
        if self.chain:
            validate_block_shape(block, self.chain[-1])
        txs = list(block.transactions)
        cached, missing = self.pool.lookup_block(txs)
        self.stats.missing_csags += missing
        csags: List[CSAG] = []
        builder = self._builder(BlockContext(block.number, block.header.timestamp))
        for tx, csag in zip(txs, cached):
            if csag is not None:
                csags.append(csag)
            elif self.reanalyse_missing:
                csags.append(builder.build(tx, self.db.latest))
                self.stats.reanalysed_csags += 1
            else:
                csags.append(builder.build_missing(tx, self.db.latest))
        execution = self._execute(txs, csags, block.header.timestamp)
        snapshot = self._commit(execution)
        if verify_root and snapshot.root_hash != block.header.state_root:
            self.stats.root_mismatches += 1
            raise InvalidBlock(
                f"{self.name}: state root mismatch at block {block.number}: "
                f"{snapshot.root_hash.hex()[:12]} != "
                f"{block.header.state_root.hex()[:12]}"
            )
        self.chain.append(block.header)
        self.stats.imported_blocks += 1
        self.stats.executed_txs += len(txs)
        return execution

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _parent_hash(self) -> bytes:
        return self.chain[-1].block_hash if self.chain else GENESIS_PARENT

    def _commit(self, execution: BlockExecution):
        """Seal the block's write batch and pull the state-layer accounting
        (commit cost + flat-cache hit rates) into the block's metrics."""
        snapshot = self.db.commit(execution.writes)
        report = self.db.last_commit
        metrics = execution.metrics
        if report is not None:
            metrics.commit_time = report.wall_time
            metrics.commit_hashes = report.hashes_computed
            metrics.commit_nodes_sealed = report.nodes_sealed
            if report.durable:
                metrics.db_bytes_appended = report.bytes_appended
                metrics.db_fsync_time = report.fsync_time
                metrics.db_cache_hits = report.db_cache_hits
                metrics.db_cache_misses = report.db_cache_misses
                metrics.db_pruned_nodes = report.pruned_nodes
        return snapshot

    def _execute(self, txs, csags, timestamp: int) -> BlockExecution:
        context = BlockContext(number=self.db.height + 1, timestamp=timestamp)
        snapshot = self.db.latest
        hits, misses = snapshot.flat_hits, snapshot.flat_misses
        kwargs = {}
        # Serial/OCC schedulers need no analysis; the others accept the
        # pre-built C-SAGs.
        if self.executor.name.startswith(("dag", "dmvcc")):
            kwargs["csags"] = csags
        execution = self.executor.execute_block(
            txs,
            snapshot,
            self.db.codes.code_of,
            threads=self.threads,
            block=context,
            **kwargs,
        )
        # Flat-cache traffic this block generated against the snapshot it
        # executed over (the snapshot's counters are cumulative).
        execution.metrics.flat_hits = snapshot.flat_hits - hits
        execution.metrics.flat_misses = snapshot.flat_misses - misses
        return execution

    @property
    def height(self) -> int:
        return self.db.height

    def state_root(self) -> bytes:
        return self.db.latest.root_hash
