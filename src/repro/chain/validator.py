"""Validator (full node): the paper's Fig. 2 workflow on one node.

A validator receives transactions, analyses them into SAGs against its
latest snapshot, pools them, packs blocks (when mining), executes blocks
with its configured scheduler, and commits state snapshots.  Importing a
foreign block looks up the cached C-SAGs; transactions missing from the
local pool are either re-analysed on the fly or executed OCC-style with an
empty ("missing") C-SAG — both paths the paper describes.

Two scheduling extensions ride on top of the base workflow (see
docs/SCHEDULING.md):

* **mining with a lane planner** — ``propose_block`` hands the packed
  draft to a :class:`~repro.scheduling.planner.LanePlanner` that reorders
  it into low-conflict lanes and repairs stale C-SAG predictions before
  execution; the executed abort attribution feeds the planner's learned
  conflict profiles for the next block;
* **the miner-produces/validator-replays split** — with
  ``emit_schedules`` on, the realized happens-before order of every
  proposed block is sealed into a :class:`BlockSidecar`, and
  ``import_block(..., schedule=...)`` executes straight from that
  artifact with conflict discovery disabled (zero aborts, zero
  speculation), still verifying the sealed state root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..analysis.csag import CSAG, CSAGBuilder
from ..analysis.sag import PSAGCache
from ..core.errors import InvalidBlock
from ..core.types import Address
from ..evm.environment import BlockContext
from ..executors.base import BlockExecution, Executor
from ..scheduling.planner import LanePlan, LanePlanner
from ..scheduling.profile import ConflictProfileStore
from ..scheduling.schedule import BlockSidecar, Schedule
from ..state.statedb import StateDB
from .block import GENESIS_PARENT, Block, BlockHeader, make_block, validate_block_shape
from .transaction import Transaction
from .txpool import Packer, TransactionPool


@dataclass
class ValidatorStats:
    """Counters a validator accumulates across its lifetime."""

    received_txs: int = 0
    analysed_txs: int = 0
    proposed_blocks: int = 0
    imported_blocks: int = 0
    replayed_blocks: int = 0
    missing_csags: int = 0
    reanalysed_csags: int = 0
    root_mismatches: int = 0
    executed_txs: int = 0
    planner_repairs: int = 0
    planner_reorders: int = 0


class Validator:
    """One full node."""

    def __init__(
        self,
        name: str,
        statedb: StateDB,
        executor: Executor,
        threads: int = 1,
        packer: Optional[Packer] = None,
        psag_cache: Optional[PSAGCache] = None,
        reanalyse_missing: bool = True,
        planner: Optional[LanePlanner] = None,
        emit_schedules: bool = False,
        profile_path: Optional[str] = None,
    ) -> None:
        self.name = name
        self.db = statedb
        self.executor = executor
        self.threads = threads
        self.pool = TransactionPool()
        self.packer = packer if packer is not None else Packer()
        self.psag_cache = psag_cache if psag_cache is not None else PSAGCache()
        self.reanalyse_missing = reanalyse_missing
        self.planner = planner
        self.emit_schedules = emit_schedules
        # Restart continuity for the learned conflict profiles: when a
        # profile DB path is given and already exists, the planner resumes
        # with the heat it had learned in the previous run instead of
        # re-paying the warm-up aborts; save_profiles() writes it back.
        self.profile_path = profile_path
        if profile_path is not None and self.planner is not None:
            try:
                self.planner.profiles = ConflictProfileStore.load(profile_path)
            except OSError:
                pass  # first run: nothing persisted yet
        self.address = Address.derive(f"validator:{name}")
        self.stats = ValidatorStats()
        self.chain: List[BlockHeader] = []
        # Schedule artifacts sealed alongside proposed blocks, by number.
        self.sidecars: Dict[int, BlockSidecar] = {}
        self.last_plan: Optional[LanePlan] = None

    # ------------------------------------------------------------------
    # Transaction intake (analysis happens here, offline)
    # ------------------------------------------------------------------

    def _builder(self, block: Optional[BlockContext] = None) -> CSAGBuilder:
        return CSAGBuilder(self.db.codes.code_of, self.psag_cache, block)

    def receive_transaction(self, tx: Transaction, analyse: bool = True) -> bool:
        """Accept a transaction into the pool, analysing it immediately
        (the paper's SAG-analyzer stage)."""
        self.stats.received_txs += 1
        csag: Optional[CSAG] = None
        if analyse:
            csag = self._builder().build(tx, self.db.latest)
            self.stats.analysed_txs += 1
        return self.pool.add(tx, csag)

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------

    def propose_block(self, timestamp: int = 0) -> "tuple[Block, BlockExecution]":
        """Pack, (optionally) plan, execute, commit, and seal the next
        block; with ``emit_schedules`` on, seal its schedule sidecar too."""
        pooled = self.packer.pack(self.pool)
        txs = [p.tx for p in pooled]
        csags = [
            p.csag if p.csag is not None
            else self._builder().build(p.tx, self.db.latest)
            for p in pooled
        ]
        if self.planner is not None:
            context = BlockContext(self.db.height + 1, timestamp)
            plan = self.planner.plan(txs, csags, self.db.latest,
                                     self._builder(context))
            txs = plan.apply(txs)
            csags = plan.apply(csags)
            self.last_plan = plan
            self.stats.planner_repairs += plan.repairs
            self.stats.planner_reorders += int(plan.moved)
        execution = self._execute(txs, csags, timestamp)
        snapshot = self._commit(execution)
        block = make_block(
            number=snapshot.height,
            parent_hash=self._parent_hash(),
            state_root=snapshot.root_hash,
            txs=txs,
            timestamp=timestamp,
            miner=self.address,
            gas_used=execution.metrics.total_gas,
        )
        self.chain.append(block.header)
        if self.emit_schedules and execution.schedule is not None:
            self.sidecars[block.number] = BlockSidecar(
                block.header.block_hash, execution.schedule)
        self.stats.proposed_blocks += 1
        self.stats.executed_txs += len(txs)
        return block, execution

    def save_profiles(self) -> bool:
        """Persist the planner's learned conflict profiles to the
        validator's profile DB path; returns whether anything was written
        (no-op without a planner or a configured path)."""
        if self.profile_path is None or self.planner is None:
            return False
        self.planner.profiles.save(self.profile_path)
        return True

    def adopt_statedb(self, statedb: StateDB) -> None:
        """Swap in a recovered StateDB and keep proposing from it.

        Used by the soak harness after a crash-recovery cycle: the durable
        store is reopened (log replayed, torn tail truncated) as a *new*
        StateDB, and the validator resumes on it.  The recovered chain must
        line up with the headers this validator already sealed — adopting a
        store that lost sealed blocks would silently fork the chain.
        """
        if self.chain and statedb.height != self.chain[-1].number:
            raise InvalidBlock(
                f"{self.name}: recovered store is at height {statedb.height} "
                f"but the chain head is block {self.chain[-1].number}"
            )
        if self.chain and statedb.latest.root_hash != self.chain[-1].state_root:
            raise InvalidBlock(
                f"{self.name}: recovered root diverges from the sealed "
                f"head at block {self.chain[-1].number}"
            )
        self.db = statedb

    # ------------------------------------------------------------------
    # Importing
    # ------------------------------------------------------------------

    def import_block(
        self,
        block: Block,
        verify_root: bool = True,
        schedule: Optional[Union[Schedule, BlockSidecar]] = None,
    ) -> BlockExecution:
        """Execute and commit a block mined elsewhere.

        With a ``schedule`` (the miner's sealed sidecar or bare
        :class:`Schedule`), the block replays deterministically from the
        fork-join artifact — no access-sequence speculation, no validation
        rounds, no aborts — and the sealed state root still arbitrates:
        a schedule that does not reproduce the header's root is rejected
        exactly like a fresh-execution mismatch.
        """
        if self.chain:
            validate_block_shape(block, self.chain[-1])
        txs = list(block.transactions)
        if schedule is not None:
            if isinstance(schedule, BlockSidecar):
                if schedule.block_hash != block.header.block_hash:
                    raise InvalidBlock(
                        f"{self.name}: sidecar is for block "
                        f"{schedule.block_hash.hex()[:12]}, not "
                        f"{block.header.block_hash.hex()[:12]}"
                    )
                schedule = schedule.schedule
            if schedule.tx_count != len(txs):
                raise InvalidBlock(
                    f"{self.name}: schedule covers {schedule.tx_count} "
                    f"transactions, block {block.number} has {len(txs)}"
                )
            # Replay needs no C-SAGs; just clear any pooled copies.
            self.pool.lookup_block(txs)
            execution = self._execute(txs, None, block.header.timestamp,
                                      executor=self._replayer(schedule))
            self.stats.replayed_blocks += 1
        else:
            cached, missing = self.pool.lookup_block(txs)
            self.stats.missing_csags += missing
            csags: List[CSAG] = []
            builder = self._builder(
                BlockContext(block.number, block.header.timestamp))
            for tx, csag in zip(txs, cached):
                if csag is not None:
                    csags.append(csag)
                elif self.reanalyse_missing:
                    csags.append(builder.build(tx, self.db.latest))
                    self.stats.reanalysed_csags += 1
                else:
                    csags.append(builder.build_missing(tx, self.db.latest))
            execution = self._execute(txs, csags, block.header.timestamp)
        snapshot = self._commit(execution)
        if verify_root and snapshot.root_hash != block.header.state_root:
            self.stats.root_mismatches += 1
            raise InvalidBlock(
                f"{self.name}: state root mismatch at block {block.number}: "
                f"{snapshot.root_hash.hex()[:12]} != "
                f"{block.header.state_root.hex()[:12]}"
            )
        self.chain.append(block.header)
        self.stats.imported_blocks += 1
        self.stats.executed_txs += len(txs)
        return execution

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _parent_hash(self) -> bytes:
        return self.chain[-1].block_hash if self.chain else GENESIS_PARENT

    def _replayer(self, schedule: Schedule) -> Executor:
        """A schedule-replay executor inheriting this node's substrate."""
        from ..executors.replay import ScheduleReplayExecutor

        replayer = ScheduleReplayExecutor(
            schedule, gas_time_scale=self.executor.gas_time_scale)
        replayer.substrate = self.executor.substrate
        replayer.obs = self.executor.obs
        replayer.recorder = self.executor.recorder
        return replayer

    def _commit(self, execution: BlockExecution):
        """Seal the block's write batch and pull the state-layer accounting
        (commit cost + flat-cache hit rates) into the block's metrics."""
        snapshot = self.db.commit(execution.writes)
        report = self.db.last_commit
        metrics = execution.metrics
        if report is not None:
            metrics.commit_time = report.wall_time
            metrics.commit_hashes = report.hashes_computed
            metrics.commit_nodes_sealed = report.nodes_sealed
            if report.durable:
                metrics.db_bytes_appended = report.bytes_appended
                metrics.db_fsync_time = report.fsync_time
                metrics.db_cache_hits = report.db_cache_hits
                metrics.db_cache_misses = report.db_cache_misses
                metrics.db_pruned_nodes = report.pruned_nodes
        return snapshot

    def _execute(self, txs, csags, timestamp: int,
                 executor: Optional[Executor] = None) -> BlockExecution:
        context = BlockContext(number=self.db.height + 1, timestamp=timestamp)
        snapshot = self.db.latest
        hits, misses = snapshot.flat_hits, snapshot.flat_misses
        if executor is None:
            executor = self.executor
        kwargs = {}
        # Serial/OCC/replay schedulers need no analysis; the others accept
        # the pre-built C-SAGs.
        if executor.name.startswith(("dag", "dmvcc")):
            kwargs["csags"] = csags
        emit = self.emit_schedules and executor is self.executor
        with _trace_capture(executor, enabled=emit) as capture:
            with _abort_capture(executor,
                                enabled=self.planner is not None) as aborts:
                execution = executor.execute_block(
                    txs,
                    snapshot,
                    self.db.codes.code_of,
                    threads=self.threads,
                    block=context,
                    **kwargs,
                )
        if emit:
            schedule = Schedule.from_trace(
                capture.trace(), len(txs), block_number=context.number,
                producer=executor.name,
            )
            execution.schedule = schedule
        if self.planner is not None:
            self.planner.observe(aborts.attribution(), context.number)
        # Flat-cache traffic this block generated against the snapshot it
        # executed over (the snapshot's counters are cumulative).
        execution.metrics.flat_hits = snapshot.flat_hits - hits
        execution.metrics.flat_misses = snapshot.flat_misses - misses
        return execution

    @property
    def height(self) -> int:
        return self.db.height

    def state_root(self) -> bytes:
        return self.db.latest.root_hash


# ---------------------------------------------------------------------------
# Instrumentation scopes (shared with the pipeline driver)
# ---------------------------------------------------------------------------


class _trace_capture:
    """Borrow (or lend) the executor's trace-recorder slot for one block.

    If a recorder is already attached (a verify pass), its stream is
    shared and only the events appended during this block are exposed;
    otherwise a fresh recorder is attached for the duration.
    """

    def __init__(self, executor: Executor, enabled: bool = True) -> None:
        self.executor = executor
        self.enabled = enabled
        self._own: Optional[object] = None
        self._start = 0

    def __enter__(self) -> "_trace_capture":
        if not self.enabled:
            return self
        from ..verify.trace import TraceRecorder

        if self.executor.recorder is None:
            self._own = TraceRecorder()
            self.executor.recorder = self._own
        else:
            self._start = len(self.executor.recorder.events)
        return self

    def __exit__(self, *exc) -> None:
        if self._own is not None and self.executor.recorder is self._own:
            self.executor.recorder = None

    def trace(self):
        """The block's event stream (a TraceRecorder-shaped view)."""
        from ..verify.trace import TraceRecorder

        if self._own is not None:
            return self._own
        view = TraceRecorder()
        recorder = self.executor.recorder
        view.events = list(recorder.events[self._start:]) if recorder else []
        return view


class _abort_capture:
    """Borrow (or lend) the executor's obs slot to collect this block's
    abort/wait events for the planner's conflict profiles."""

    def __init__(self, executor: Executor, enabled: bool = True) -> None:
        self.executor = executor
        self.enabled = enabled
        self._own: Optional[object] = None
        self._start = 0

    def __enter__(self) -> "_abort_capture":
        if not self.enabled:
            return self
        from ..obs.events import EventBus

        if self.executor.obs is None:
            self._own = EventBus()
            self.executor.obs = self._own
        else:
            self._start = len(self.executor.obs.events)
        return self

    def __exit__(self, *exc) -> None:
        if self._own is not None and self.executor.obs is self._own:
            self.executor.obs = None

    def attribution(self):
        from ..obs.attribution import AbortAttribution

        if not self.enabled:
            return AbortAttribution()
        bus = self._own if self._own is not None else self.executor.obs
        events = bus.events if self._own is not None else \
            bus.events[self._start:]
        return AbortAttribution.from_events(events)
