"""Blocks and headers.

A block carries an ordered transaction list and a header whose
``state_root`` commits to the post-execution state — the Merkle root the
paper's RQ1 compares across schedulers and validators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.encoding import encode_int, rlp_encode
from ..core.errors import InvalidBlock
from ..core.hashing import keccak
from ..core.types import Address
from .transaction import Transaction

GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    number: int
    parent_hash: bytes
    state_root: bytes
    tx_root: bytes
    timestamp: int
    miner: Address
    gas_used: int = 0

    @property
    def block_hash(self) -> bytes:
        return keccak(
            rlp_encode([
                encode_int(self.number),
                self.parent_hash,
                self.state_root,
                self.tx_root,
                encode_int(self.timestamp),
                self.miner.to_bytes(),
                encode_int(self.gas_used),
            ])
        )


@dataclass(frozen=True)
class Block:
    header: BlockHeader
    transactions: Tuple[Transaction, ...]

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash

    def __len__(self) -> int:
        return len(self.transactions)


def transactions_root(txs: List[Transaction]) -> bytes:
    """Order-sensitive commitment to the transaction list."""
    return keccak(rlp_encode([tx.tx_hash for tx in txs]))


def make_block(
    number: int,
    parent_hash: bytes,
    state_root: bytes,
    txs: List[Transaction],
    timestamp: int,
    miner: Address,
    gas_used: int = 0,
) -> Block:
    header = BlockHeader(
        number=number,
        parent_hash=parent_hash,
        state_root=state_root,
        tx_root=transactions_root(txs),
        timestamp=timestamp,
        miner=miner,
        gas_used=gas_used,
    )
    return Block(header=header, transactions=tuple(txs))


def validate_block_shape(block: Block, parent: BlockHeader) -> None:
    """Stateless checks: linkage, numbering, and the transaction root."""
    if block.header.parent_hash != parent.block_hash:
        raise InvalidBlock(f"block {block.number}: bad parent hash")
    if block.header.number != parent.number + 1:
        raise InvalidBlock(
            f"block {block.number}: expected number {parent.number + 1}"
        )
    if block.header.tx_root != transactions_root(list(block.transactions)):
        raise InvalidBlock(f"block {block.number}: transaction root mismatch")
