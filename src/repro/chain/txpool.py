"""Transaction pool with attached analysis results.

Per the paper's workflow (Fig. 2), a validator analyses each transaction as
it arrives — building/refining its SAG against the *current* latest
snapshot — and parks both in the pool.  The packer later drafts
transactions into blocks; the executor fetches the cached C-SAGs, rebuilding
only the ones that are missing (transactions first seen inside a foreign
block) or stale beyond use.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.csag import CSAG, CSAGBuilder
from ..state.statedb import Snapshot
from .transaction import Transaction


@dataclass
class PooledTransaction:
    tx: Transaction
    csag: Optional[CSAG] = None

    @property
    def analysed(self) -> bool:
        return self.csag is not None


class TransactionPool:
    """FIFO pool keyed by transaction hash."""

    def __init__(self, max_size: int = 100_000) -> None:
        self._pool: "OrderedDict[bytes, PooledTransaction]" = OrderedDict()
        self.max_size = max_size

    def add(self, tx: Transaction, csag: Optional[CSAG] = None) -> bool:
        """Insert a transaction (idempotent); returns whether it was new."""
        tx_hash = tx.tx_hash
        if tx_hash in self._pool:
            return False
        if len(self._pool) >= self.max_size:
            self._pool.popitem(last=False)  # evict the oldest
        self._pool[tx_hash] = PooledTransaction(tx, csag)
        return True

    def analyse(self, builder: CSAGBuilder, snapshot: Snapshot) -> int:
        """Build C-SAGs for every unanalysed transaction; returns how many."""
        built = 0
        for pooled in self._pool.values():
            if pooled.csag is None:
                pooled.csag = builder.build(pooled.tx, snapshot)
                built += 1
        return built

    def get(self, tx_hash: bytes) -> Optional[PooledTransaction]:
        return self._pool.get(tx_hash)

    def take(self, count: int) -> List[PooledTransaction]:
        """Pop up to ``count`` transactions in arrival order."""
        taken: List[PooledTransaction] = []
        while self._pool and len(taken) < count:
            _hash, pooled = self._pool.popitem(last=False)
            taken.append(pooled)
        return taken

    def remove(self, tx_hash: bytes) -> bool:
        return self._pool.pop(tx_hash, None) is not None

    def lookup_block(
        self, txs: List[Transaction]
    ) -> Tuple[List[Optional[CSAG]], int]:
        """Fetch cached C-SAGs for a foreign block's transactions.

        Returns (csags-or-None aligned with ``txs``, number missing) and
        removes the found transactions from the pool.
        """
        csags: List[Optional[CSAG]] = []
        missing = 0
        for tx in txs:
            pooled = self._pool.pop(tx.tx_hash, None)
            if pooled is not None and pooled.csag is not None:
                csags.append(pooled.csag)
            else:
                csags.append(None)
                missing += 1
        return csags, missing

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._pool


class Packer:
    """Drafts blocks from the pool (count- and gas-limited)."""

    def __init__(self, max_txs: int = 1_000, gas_limit: Optional[int] = None) -> None:
        self.max_txs = max_txs
        self.gas_limit = gas_limit

    def pack(self, pool: TransactionPool) -> List[PooledTransaction]:
        """Select transactions for the next block, honouring both limits."""
        selected = pool.take(self.max_txs)
        if self.gas_limit is None:
            return selected
        total = 0
        packed: List[PooledTransaction] = []
        overflow: List[PooledTransaction] = []
        for pooled in selected:
            estimate = (
                pooled.csag.predicted_gas
                if pooled.csag is not None
                else pooled.tx.gas_limit
            )
            if total + estimate > self.gas_limit and packed:
                overflow.append(pooled)
                continue
            total += estimate
            packed.append(pooled)
        # Unpacked transactions return to the pool (front of FIFO is lost,
        # but arrival order among them is preserved).
        for pooled in overflow:
            pool.add(pooled.tx, pooled.csag)
        return packed
