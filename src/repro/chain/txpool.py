"""Transaction pool with attached analysis results.

Per the paper's workflow (Fig. 2), a validator analyses each transaction as
it arrives — building/refining its SAG against the *current* latest
snapshot — and parks both in the pool.  The packer later drafts
transactions into blocks; the executor fetches the cached C-SAGs, rebuilding
only the ones that are missing (transactions first seen inside a foreign
block) or stale beyond use.

Beyond the paper's sketch, the pool is a real mempool (the serving shape
:mod:`repro.pipeline` drives):

* **admission control** — duplicate and stale/duplicate-nonce rejection
  (with replace-by-fee on a nonce collision), a minimum admission fee, a
  per-sender entry cap, and an optional bound on per-sender nonce gaps;
* **fee-priority eviction** — at capacity the *lowest-fee unanalysed*
  entry is evicted first (analysis work is the expensive part the pool
  exists to cache); an incoming transaction that bids strictly less than
  every would-be victim is rejected instead of displacing paid work, and
  every eviction is counted in :class:`PoolStats` and emitted on the
  attached obs bus — never silent;
* **watermarks** — ``above_high`` / ``below_low`` occupancy signals the
  pipeline's ingest stage uses for backpressure hysteresis (throttle the
  stream, never drop admitted work).

All of it is opt-in: a default-constructed pool behaves exactly like the
original FIFO pool for zero-fee transactions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.csag import CSAG, CSAGBuilder
from ..core.types import Address
from ..state.statedb import Snapshot
from .transaction import Transaction


@dataclass
class PooledTransaction:
    tx: Transaction
    csag: Optional[CSAG] = None
    arrival: int = 0  # admission sequence number (FIFO tie-breaker)

    @property
    def analysed(self) -> bool:
        return self.csag is not None

    @property
    def fee(self) -> int:
        return self.tx.fee


# Rejection / admission reasons (AdmissionResult.reason values).
ACCEPTED = "accepted"
REPLACED = "replaced"          # accepted by displacing a same-nonce entry
DUPLICATE = "duplicate"        # same tx hash already pooled
DUPLICATE_NONCE = "duplicate-nonce"  # same (sender, nonce), not a better fee
STALE_NONCE = "stale-nonce"    # nonce below the sender's included floor
NONCE_GAP = "nonce-gap"        # nonce too far ahead of the sender's floor
UNDERPRICED = "underpriced"    # fee below the pool's admission minimum
SENDER_CAP = "sender-cap"      # sender already holds its entry quota
POOL_FULL = "pool-full"        # full, and the newcomer outbids no victim


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one :meth:`TransactionPool.add`; truthy iff admitted."""

    accepted: bool
    reason: str = ACCEPTED
    evicted: Optional[bytes] = None  # hash displaced to make room, if any

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class PoolStats:
    """Lifetime mempool accounting (admissions, rejections, evictions)."""

    received: int = 0
    admitted: int = 0
    replacements: int = 0          # replace-by-fee admissions
    evictions: int = 0             # capacity evictions (never silent)
    evicted_analysed: int = 0      # evictions that threw away a built C-SAG
    stale_dropped: int = 0         # entries invalidated by mark_included
    rejected: Dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def as_dict(self) -> dict:
        return {
            "received": self.received,
            "admitted": self.admitted,
            "replacements": self.replacements,
            "evictions": self.evictions,
            "evicted_analysed": self.evicted_analysed,
            "stale_dropped": self.stale_dropped,
            "rejected": dict(self.rejected),
        }


class TransactionPool:
    """Mempool keyed by transaction hash (arrival order preserved).

    ``nonce_tracking`` turns on per-sender nonce accounting: stale and
    duplicate nonces are rejected at admission (replace-by-fee wins a
    collision), :meth:`mark_included` advances each sender's floor when a
    block is packed, and :meth:`take_by_fee` never emits nonce ``n+1``
    before ``n``.  ``base_nonce`` resolves a sender's starting floor
    (e.g. from the latest state snapshot); it defaults to zero.
    """

    def __init__(
        self,
        max_size: int = 100_000,
        *,
        min_fee: int = 0,
        per_sender_cap: int = 0,
        nonce_tracking: bool = False,
        max_nonce_gap: Optional[int] = None,
        high_watermark: float = 0.9,
        low_watermark: float = 0.75,
        base_nonce: Optional[Callable[[Address], int]] = None,
        obs=None,
    ) -> None:
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        self._pool: "OrderedDict[bytes, PooledTransaction]" = OrderedDict()
        self.max_size = max_size
        self.min_fee = min_fee
        self.per_sender_cap = per_sender_cap
        self.nonce_tracking = nonce_tracking
        self.max_nonce_gap = max_nonce_gap
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._base_nonce = base_nonce
        self.obs = obs
        self.stats = PoolStats()
        self._arrivals = 0
        self._by_sender: Dict[Address, Dict[int, bytes]] = {}
        self._floor: Dict[Address, int] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def floor_of(self, sender: Address) -> int:
        """The sender's next expected nonce (lazily seeded)."""
        floor = self._floor.get(sender)
        if floor is None:
            floor = self._base_nonce(sender) if self._base_nonce else 0
            self._floor[sender] = floor
        return floor

    def sender_count(self, sender: Address) -> int:
        return len(self._by_sender.get(sender, ()))

    def add(self, tx: Transaction, csag: Optional[CSAG] = None) -> AdmissionResult:
        """Admit a transaction; returns a truthy result iff it was pooled."""
        self.stats.received += 1
        tx_hash = tx.tx_hash
        if tx_hash in self._pool:
            return self._reject(tx, DUPLICATE)
        displaced: Optional[bytes] = None
        if self.nonce_tracking:
            floor = self.floor_of(tx.sender)
            if tx.nonce < floor:
                return self._reject(tx, STALE_NONCE)
            if (
                self.max_nonce_gap is not None
                and tx.nonce > floor + self.max_nonce_gap
            ):
                return self._reject(tx, NONCE_GAP)
            holder = self._by_sender.get(tx.sender, {}).get(tx.nonce)
            if holder is not None:
                incumbent = self._pool[holder]
                if tx.fee <= incumbent.fee:
                    return self._reject(tx, DUPLICATE_NONCE)
                self._drop(holder, REPLACED)
                self.stats.replacements += 1
                displaced = holder
        if tx.fee < self.min_fee:
            return self._reject(tx, UNDERPRICED)
        if (
            self.per_sender_cap
            and displaced is None
            and self.sender_count(tx.sender) >= self.per_sender_cap
        ):
            return self._reject(tx, SENDER_CAP)
        if len(self._pool) >= self.max_size:
            victim = self._eviction_victim()
            if victim is not None and tx.fee < victim.fee:
                # The newcomer outbids nobody: refusing it loses less work
                # than displacing a better-paying entry.
                return self._reject(tx, POOL_FULL)
            if victim is not None:
                self._evict(victim)
                displaced = displaced or victim.tx.tx_hash
        self._insert(PooledTransaction(tx, csag, self._next_arrival()))
        self.stats.admitted += 1
        reason = REPLACED if displaced is not None and self.nonce_tracking else ACCEPTED
        return AdmissionResult(True, reason, evicted=displaced)

    def reinsert(self, pooled: PooledTransaction) -> None:
        """Return a previously admitted entry (e.g. packer overflow) to the
        pool, bypassing admission control and stats."""
        if pooled.tx.tx_hash in self._pool:
            return
        self._insert(pooled)

    def _reject(self, tx: Transaction, reason: str) -> AdmissionResult:
        self.stats.reject(reason)
        if self.obs is not None:
            self.obs.mempool_rejected(0.0, reason=reason, fee=tx.fee)
        return AdmissionResult(False, reason)

    def _sender_key(self, tx: Transaction):
        # With nonce tracking each sender holds one slot per nonce (what
        # replace-by-fee displaces); without it every entry is its own slot.
        return tx.nonce if self.nonce_tracking else tx.tx_hash

    def _insert(self, pooled: PooledTransaction) -> None:
        tx = pooled.tx
        self._pool[tx.tx_hash] = pooled
        self._by_sender.setdefault(tx.sender, {})[self._sender_key(tx)] = tx.tx_hash

    def _next_arrival(self) -> int:
        self._arrivals += 1
        return self._arrivals

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _eviction_victim(self) -> Optional[PooledTransaction]:
        """Pick the entry a full pool sacrifices: the lowest-fee unanalysed
        entry (oldest on ties); only if everything is analysed, the
        lowest-fee analysed one."""
        best: Optional[PooledTransaction] = None
        fallback: Optional[PooledTransaction] = None
        for pooled in self._pool.values():
            if not pooled.analysed:
                if best is None or (pooled.fee, pooled.arrival) < (best.fee, best.arrival):
                    best = pooled
            elif best is None:
                if fallback is None or (pooled.fee, pooled.arrival) < (fallback.fee, fallback.arrival):
                    fallback = pooled
        return best if best is not None else fallback

    def _evict(self, victim: PooledTransaction) -> None:
        self.stats.evictions += 1
        if victim.analysed:
            self.stats.evicted_analysed += 1
        self._drop(victim.tx.tx_hash, "capacity")
        if self.obs is not None:
            self.obs.mempool_evicted(
                0.0, fee=victim.fee, analysed=victim.analysed,
                reason="capacity", pool_size=len(self._pool),
            )

    def _drop(self, tx_hash: bytes, reason: str) -> Optional[PooledTransaction]:
        pooled = self._pool.pop(tx_hash, None)
        if pooled is None:
            return None
        sender_map = self._by_sender.get(pooled.tx.sender)
        key = self._sender_key(pooled.tx)
        if sender_map is not None and sender_map.get(key) == tx_hash:
            del sender_map[key]
            if not sender_map:
                del self._by_sender[pooled.tx.sender]
        return pooled

    # ------------------------------------------------------------------
    # Inclusion accounting (miner side)
    # ------------------------------------------------------------------

    def mark_included(self, txs: List[Transaction]) -> int:
        """Record that ``txs`` made it into a sealed block: advance each
        sender's nonce floor and drop pooled entries the floor obsoletes.
        Returns how many stale entries were dropped."""
        if not self.nonce_tracking:
            return 0
        dropped = 0
        for tx in txs:
            floor = max(self.floor_of(tx.sender), tx.nonce + 1)
            self._floor[tx.sender] = floor
            stale = [
                n for n in self._by_sender.get(tx.sender, {})
                if n < floor
            ]
            for nonce in stale:
                self._drop(self._by_sender[tx.sender][nonce], "stale")
                dropped += 1
        self.stats.stale_dropped += dropped
        return dropped

    # ------------------------------------------------------------------
    # Analysis & retrieval
    # ------------------------------------------------------------------

    def analyse(self, builder: CSAGBuilder, snapshot: Snapshot,
                stale_keys=None) -> int:
        """Build C-SAGs for every unanalysed transaction; returns how many.

        ``stale_keys`` (a set of :class:`StateKey`) additionally forces
        re-analysis of already-analysed entries whose predicted reads touch
        any of those keys — the pipeline passes the lane planner's learned
        hot keys here, so predictions against contention-prone state are
        refreshed against the newest sealed snapshot instead of riding a
        stale cache into a mispredicted block.
        """
        built = 0
        for pooled in self._pool.values():
            if pooled.csag is None:
                pooled.csag = builder.build(pooled.tx, snapshot)
                built += 1
            elif stale_keys and not stale_keys.isdisjoint(
                    pooled.csag.read_keys | pooled.csag.static_read_keys):
                pooled.csag = builder.build(pooled.tx, snapshot)
                built += 1
        return built

    def get(self, tx_hash: bytes) -> Optional[PooledTransaction]:
        return self._pool.get(tx_hash)

    def take(self, count: int) -> List[PooledTransaction]:
        """Pop up to ``count`` transactions in arrival order."""
        taken: List[PooledTransaction] = []
        while self._pool and len(taken) < count:
            tx_hash = next(iter(self._pool))
            taken.append(self._drop(tx_hash, "taken"))
        return taken

    def take_by_fee(self, count: int) -> List[PooledTransaction]:
        """Pop up to ``count`` transactions, highest fee first (ties by
        arrival).  With nonce tracking on, a sender's transactions are only
        eligible in nonce order starting at its floor — a gapped nonce
        parks until the gap fills."""
        if not self.nonce_tracking:
            order = sorted(
                self._pool.values(), key=lambda p: (-p.fee, p.arrival)
            )
            taken = order[:count]
            for pooled in taken:
                self._drop(pooled.tx.tx_hash, "taken")
            return taken
        # Per-sender nonce cursors: only the head (cursor nonce) of each
        # sender competes on fee; picking it advances the cursor.
        cursors: Dict[Address, int] = {
            sender: self.floor_of(sender) for sender in self._by_sender
        }
        taken = []
        while len(taken) < count:
            head_best: Optional[PooledTransaction] = None
            for sender, nonce in cursors.items():
                tx_hash = self._by_sender.get(sender, {}).get(nonce)
                if tx_hash is None:
                    continue
                pooled = self._pool[tx_hash]
                if head_best is None or (-pooled.fee, pooled.arrival) < (
                    -head_best.fee, head_best.arrival
                ):
                    head_best = pooled
            if head_best is None:
                break
            cursors[head_best.tx.sender] = head_best.tx.nonce + 1
            self._drop(head_best.tx.tx_hash, "taken")
            taken.append(head_best)
        return taken

    def remove(self, tx_hash: bytes) -> bool:
        return self._drop(tx_hash, "removed") is not None

    def lookup_block(
        self, txs: List[Transaction]
    ) -> Tuple[List[Optional[CSAG]], int]:
        """Fetch cached C-SAGs for a foreign block's transactions.

        Returns (csags-or-None aligned with ``txs``, number missing) and
        removes the found transactions from the pool.
        """
        csags: List[Optional[CSAG]] = []
        missing = 0
        for tx in txs:
            pooled = self._drop(tx.tx_hash, "included")
            if pooled is not None and pooled.csag is not None:
                csags.append(pooled.csag)
            else:
                csags.append(None)
                missing += 1
        return csags, missing

    # ------------------------------------------------------------------
    # Occupancy / backpressure signals
    # ------------------------------------------------------------------

    @property
    def saturation(self) -> float:
        return len(self._pool) / self.max_size if self.max_size else 0.0

    @property
    def above_high(self) -> bool:
        """Occupancy crossed the high watermark: ingest should throttle."""
        return len(self._pool) >= self.high_watermark * self.max_size

    @property
    def below_low(self) -> bool:
        """Occupancy fell under the low watermark: ingest may resume."""
        return len(self._pool) <= self.low_watermark * self.max_size

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._pool


class Packer:
    """Drafts blocks from the pool (count- and gas-limited).

    ``order`` selects the draft policy: ``"arrival"`` (the original FIFO
    shape) or ``"fee"`` (highest bid first, per-sender nonce order
    preserved when the pool tracks nonces — the miner-packs side of the
    miner-packs/validator-replays split, since the packed order travels in
    the block for importers to replay).
    """

    def __init__(
        self,
        max_txs: int = 1_000,
        gas_limit: Optional[int] = None,
        order: str = "arrival",
    ) -> None:
        if order not in ("arrival", "fee"):
            raise ValueError(f"unknown pack order {order!r}")
        self.max_txs = max_txs
        self.gas_limit = gas_limit
        self.order = order

    def pack(self, pool: TransactionPool) -> List[PooledTransaction]:
        """Select transactions for the next block, honouring both limits."""
        if self.order == "fee":
            selected = pool.take_by_fee(self.max_txs)
        else:
            selected = pool.take(self.max_txs)
        if self.gas_limit is None:
            return selected
        total = 0
        packed: List[PooledTransaction] = []
        overflow: List[PooledTransaction] = []
        for pooled in selected:
            estimate = (
                pooled.csag.predicted_gas
                if pooled.csag is not None
                else pooled.tx.gas_limit
            )
            if total + estimate > self.gas_limit and packed:
                overflow.append(pooled)
                continue
            total += estimate
            packed.append(pooled)
        # Unpacked transactions return to the pool without re-running
        # admission (they were already admitted once).
        for pooled in overflow:
            pool.reinsert(pooled)
        return packed
