"""Simulated thread pool.

Models the paper's execution setup: a fixed number of worker threads, each
able to run one EVM instance at a time.  The pool is work-conserving and
FIFO: when a thread frees up, the longest-waiting ready transaction starts
immediately; when a transaction becomes ready and a thread is idle, it
starts at once.

The pool does not know task durations in advance — callers occupy a thread,
advance simulated time as the task's VM events arrive, and release the
thread at completion or abort.  Per-thread busy intervals are recorded for
utilisation metrics and Gantt-style inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from ..core.errors import SchedulingError


@dataclass
class BusyInterval:
    """One span of thread occupancy."""

    thread: int
    start: float
    end: float
    label: str = ""


@dataclass
class _Thread:
    index: int
    busy: bool = False
    free_at: float = 0.0
    current_label: str = ""
    current_start: float = 0.0


class ThreadPool:
    """Fixed-size pool with explicit occupy/release and an idle FIFO.

    ``obs`` is an optional :class:`repro.obs.events.EventBus`; occupancy
    changes are emitted as ThreadOccupied/ThreadReleased events (one
    ``is not None`` branch per transition when disabled).
    """

    def __init__(self, size: int, obs=None) -> None:
        if size <= 0:
            raise SchedulingError("thread pool needs at least one thread")
        self._threads = [_Thread(i) for i in range(size)]
        self._idle: Deque[int] = deque(range(size))
        self.intervals: List[BusyInterval] = []
        self._obs = obs

    @property
    def size(self) -> int:
        return len(self._threads)

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def try_occupy(self, now: float, label: str = "") -> Optional[int]:
        """Claim an idle thread at time ``now``; returns its index or None."""
        if not self._idle:
            return None
        index = self._idle.popleft()
        thread = self._threads[index]
        thread.busy = True
        thread.current_label = label
        thread.current_start = now
        if self._obs is not None:
            self._obs.thread_occupied(now, index, label)
        return index

    def release(self, index: int, now: float) -> None:
        """Release a thread at ``now``, recording the busy interval."""
        thread = self._threads[index]
        if not thread.busy:
            raise SchedulingError(f"thread {index} is not busy")
        self.intervals.append(
            BusyInterval(index, thread.current_start, now, thread.current_label)
        )
        thread.busy = False
        thread.free_at = now
        thread.current_label = ""
        self._idle.append(index)
        if self._obs is not None:
            self._obs.thread_released(now, index)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def busy_time(self) -> float:
        return sum(iv.end - iv.start for iv in self.intervals)

    def utilisation(self, makespan: float) -> float:
        if makespan <= 0:
            return 0.0
        return self.busy_time() / (makespan * self.size)

    def gantt(self) -> Dict[int, List[Tuple[float, float, str]]]:
        """Per-thread list of (start, end, label) — the paper's Fig. 4(b)."""
        chart: Dict[int, List[Tuple[float, float, str]]] = {
            t.index: [] for t in self._threads
        }
        for iv in sorted(self.intervals, key=lambda iv: (iv.thread, iv.start)):
            chart[iv.thread].append((iv.start, iv.end, iv.label))
        return chart
