"""Execution metrics shared by every executor and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TxMetrics:
    """Per-transaction scheduling outcome."""

    index: int
    attempts: int = 1
    start_time: float = 0.0
    end_time: float = 0.0
    gas_used: int = 0
    succeeded: bool = True
    aborted_times: int = 0
    # Incremental re-execution accounting (DMVCC checkpoint/resume):
    instructions_executed: int = 0   # dispatched across every attempt
    instructions_final: int = 0      # the committed attempt's logical path
    instructions_skipped: int = 0    # avoided via resume / revalidation
    resumes: int = 0                 # aborts recovered from a VM checkpoint
    revalidation_hits: int = 0       # aborts recovered with zero re-execution

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time

    @property
    def replayed_instructions(self) -> int:
        """Instructions spent re-doing work an earlier attempt already did."""
        return max(self.instructions_executed - self.instructions_final, 0)


@dataclass
class OracleStats:
    """Counters from serializability-oracle checks (repro.verify.oracle).

    ``doomed_reads`` counts reads that observed a version later retracted
    (early-write visibility exposing a write its transaction then took
    back); ``repaired_reads`` are the subset whose reader was aborted and
    re-executed afterwards — normal protocol repair.  ``unrepaired_violations``
    are doomed reads that survived into a committed attempt: hard safety
    failures.
    """

    blocks_checked: int = 0
    reads_checked: int = 0
    conflict_edges: int = 0
    early_publishes: int = 0
    doomed_reads: int = 0
    repaired_reads: int = 0
    unrepaired_violations: int = 0
    stale_reads: int = 0
    divergences: int = 0

    def merge_from(self, other: "OracleStats") -> None:
        self.blocks_checked += other.blocks_checked
        self.reads_checked += other.reads_checked
        self.conflict_edges += other.conflict_edges
        self.early_publishes += other.early_publishes
        self.doomed_reads += other.doomed_reads
        self.repaired_reads += other.repaired_reads
        self.unrepaired_violations += other.unrepaired_violations
        self.stale_reads += other.stale_reads
        self.divergences += other.divergences

    def summary(self) -> str:
        return (
            f"oracle: blocks={self.blocks_checked} reads={self.reads_checked} "
            f"edges={self.conflict_edges} early={self.early_publishes} "
            f"doomed={self.doomed_reads} (repaired={self.repaired_reads}, "
            f"unrepaired={self.unrepaired_violations}) "
            f"stale={self.stale_reads} divergences={self.divergences}"
        )


@dataclass
class BlockMetrics:
    """Result of executing one block under some scheduler."""

    scheduler: str
    threads: int
    tx_count: int = 0
    makespan: float = 0.0
    serial_time: float = 0.0
    total_gas: int = 0
    executions: int = 0       # total execution attempts (incl. re-executions)
    aborts: int = 0           # scheduler-induced (non-deterministic) aborts
    deterministic_failures: int = 0  # reverts/asserts/oog: the contract's own doing
    rescues: int = 0          # scheduler wake-loss recoveries (should be 0)
    utilisation: float = 0.0
    # Execution-substrate accounting (repro.substrate): which backend the
    # block actually ran on and what it cost in *wall* seconds (the sim
    # backend parallelises in gas time; real backends in wall time).
    backend: str = "sim"
    workers: int = 0                  # real worker count (0 on the sim backend)
    wall_time: float = 0.0            # wall seconds executing the block
    view_misses: int = 0              # reads outside a shipped view (re-dispatches)
    worker_crashes: int = 0           # workers lost and respawned mid-block
    replayed: bool = False            # executed from a sealed Schedule artifact
    seeded_views: int = 0             # dispatch views pre-seeded from static analysis
    # Incremental re-execution totals (sums of the per_tx counters):
    replayed_instructions: int = 0
    instructions_skipped: int = 0
    resumes: int = 0
    revalidation_hits: int = 0
    # Declared-operation merge algebra (repro.state.merge):
    merge_intents: int = 0            # delta intents logged on declared keys
    merge_tolerated: int = 0          # aborts skipped by outcome-stable guards
    # Sharded execution (repro.shard):
    shards: int = 0                   # shard count (0 ≡ unsharded)
    cross_shard_txs: int = 0          # transactions spanning >1 shard
    handoff_requeues: int = 0         # phase-2 handoffs aborted and requeued
    shard_fallbacks: int = 0          # blocks re-run unsharded (escape detected)
    # State-layer accounting (filled by the validator around commit):
    commit_time: float = 0.0          # wall seconds sealing the snapshot
    commit_hashes: int = 0            # node-hash invocations in the commit
    commit_nodes_sealed: int = 0      # trie nodes persisted by the commit
    flat_hits: int = 0                # snapshot reads served by the flat/LRU cache
    flat_misses: int = 0              # snapshot reads that walked the trie
    # Durable-backend accounting (zero when the StateDB runs in-memory):
    db_bytes_appended: int = 0        # log bytes this block's commit appended
    db_fsync_time: float = 0.0        # wall seconds inside fsync at the marker
    db_cache_hits: int = 0            # node-cache hits since the previous marker
    db_cache_misses: int = 0          # node-cache misses (disk reads)
    db_pruned_nodes: int = 0          # nodes reclaimed by auto-compaction
    per_tx: List[TxMetrics] = field(default_factory=list)
    oracle: Optional[OracleStats] = None  # set when a verify pass ran

    @property
    def speedup(self) -> float:
        """Speedup over serial execution of the same block."""
        if self.makespan <= 0:
            return 1.0
        return self.serial_time / self.makespan

    @property
    def abort_rate(self) -> float:
        """Fraction of execution attempts that were aborted and redone."""
        if self.executions == 0:
            return 0.0
        return self.aborts / self.executions

    def merge_from(self, other: "BlockMetrics") -> None:
        """Accumulate another block's numbers (for multi-block averages)."""
        self.tx_count += other.tx_count
        self.makespan += other.makespan
        self.serial_time += other.serial_time
        self.total_gas += other.total_gas
        self.executions += other.executions
        self.aborts += other.aborts
        self.deterministic_failures += other.deterministic_failures
        self.replayed_instructions += other.replayed_instructions
        self.instructions_skipped += other.instructions_skipped
        self.resumes += other.resumes
        self.revalidation_hits += other.revalidation_hits
        self.merge_intents += other.merge_intents
        self.merge_tolerated += other.merge_tolerated
        self.shards = max(self.shards, other.shards)
        self.cross_shard_txs += other.cross_shard_txs
        self.handoff_requeues += other.handoff_requeues
        self.shard_fallbacks += other.shard_fallbacks
        self.commit_time += other.commit_time
        self.commit_hashes += other.commit_hashes
        self.commit_nodes_sealed += other.commit_nodes_sealed
        self.flat_hits += other.flat_hits
        self.flat_misses += other.flat_misses
        if other.backend != "sim":
            self.backend = other.backend
            self.workers = max(self.workers, other.workers)
        self.wall_time += other.wall_time
        self.view_misses += other.view_misses
        self.worker_crashes += other.worker_crashes

    @property
    def flat_hit_rate(self) -> float:
        """Fraction of snapshot reads served without a trie walk."""
        total = self.flat_hits + self.flat_misses
        return self.flat_hits / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.scheduler:>8} | threads={self.threads:<3d} txs={self.tx_count:<6d} "
            f"speedup={self.speedup:6.2f}x  aborts={self.aborts:<5d} "
            f"abort_rate={self.abort_rate:6.2%}  util={self.utilisation:6.2%}"
        )


def aggregate(blocks: List[BlockMetrics]) -> BlockMetrics:
    """Combine per-block metrics into workload totals (speedup uses summed
    serial time over summed makespan, i.e. the paper's 'average over all
    blocks' weighted by work)."""
    if not blocks:
        raise ValueError("no block metrics to aggregate")
    total = BlockMetrics(scheduler=blocks[0].scheduler, threads=blocks[0].threads)
    for b in blocks:
        total.merge_from(b)
    busy = sum(b.utilisation * b.makespan * b.threads for b in blocks)
    denominator = total.makespan * total.threads
    total.utilisation = busy / denominator if denominator else 0.0
    return total
