"""Discrete-event simulation core.

The paper evaluates scheduling "on a set of threads (up to 32)" in
simulation; we do the same.  Simulated time is measured in *gas units*
(1 gas = ``GAS_TIME_SCALE`` time units), because EVM gas is by construction
proportional to execution work — this is what makes speedup shapes
transferable from the authors' testbed to our substrate.

:class:`EventLoop` is a plain priority queue of timestamped callbacks with
deterministic FIFO tie-breaking, so every simulation run is bit-for-bit
reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..core.errors import SchedulingError

GAS_TIME_SCALE = 1.0  # simulated time units per unit of gas


def gas_to_time(gas: int, scale: float = GAS_TIME_SCALE) -> float:
    return gas * scale


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """Deterministic timestamp-ordered event loop."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, time: float, callback: Callable[[], None]) -> _Entry:
        """Schedule ``callback`` at ``time`` (must not be in the past)."""
        if time < self._now - 1e-9:
            raise SchedulingError(f"cannot schedule at {time} < now {self._now}")
        self._seq += 1
        entry = _Entry(max(time, self._now), self._seq, callback)
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_now(self, callback: Callable[[], None]) -> _Entry:
        return self.schedule(self._now, callback)

    @staticmethod
    def cancel(entry: _Entry) -> None:
        entry.cancelled = True

    def run(self, max_events: int = 10_000_000) -> float:
        """Drain the queue; returns the final simulated time."""
        if self._running:
            raise SchedulingError("event loop is not re-entrant")
        self._running = True
        try:
            events = 0
            while self._heap:
                entry = heapq.heappop(self._heap)
                if entry.cancelled:
                    continue
                events += 1
                if events > max_events:
                    raise SchedulingError(f"exceeded {max_events} events; livelock?")
                self._now = entry.time
                entry.callback()
            return self._now
        finally:
            self._running = False

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
