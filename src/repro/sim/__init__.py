"""Discrete-event simulation: clock, thread pool, metrics."""

from .clock import GAS_TIME_SCALE, EventLoop, gas_to_time
from .metrics import BlockMetrics, TxMetrics, aggregate
from .threadpool import BusyInterval, ThreadPool

__all__ = [
    "BlockMetrics",
    "BusyInterval",
    "EventLoop",
    "GAS_TIME_SCALE",
    "ThreadPool",
    "TxMetrics",
    "aggregate",
    "gas_to_time",
]
