"""Property tests for the workload generator: Zipf weights, hot-set and
stream determinism, and per-scenario transaction-shape invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    SCENARIO_NAMES,
    Workload,
    WorkloadConfig,
    scenario_config,
)

SMALL = dict(users=60, erc20_tokens=3, dex_pools=2, nft_collections=2, icos=1)

# One shared instance: building a Workload compiles and seeds a full chain,
# far too heavy to repeat per hypothesis example.
_SHARED = Workload(WorkloadConfig(**SMALL))


def _zipf(n, alpha):
    # The cache is keyed by n alone (alpha is fixed per config in real use),
    # so clear it when sweeping alpha.
    _SHARED._zipf_cache.clear()
    return _SHARED._zipf_weights(n, alpha)


class TestZipfWeights:
    """``_zipf_weights(n, alpha)`` returns *cumulative* rank weights."""

    @given(
        n=st.integers(min_value=1, max_value=64),
        alpha=st.floats(min_value=0.0, max_value=3.0,
                        allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_cumulative_shape(self, n, alpha):
        weights = _zipf(n, alpha)
        assert len(weights) == n
        assert weights[0] > 0
        # Strictly increasing: every rank contributes positive mass.
        assert all(a < b for a, b in zip(weights, weights[1:]))

    @given(
        n=st.integers(min_value=2, max_value=64),
        alpha=st.floats(min_value=0.05, max_value=3.0,
                        allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_mass_strictly_decreasing(self, n, alpha):
        """Per-rank mass (the cumulative deltas) strictly decreases with
        rank for any positive alpha — the defining Zipf property."""
        weights = _zipf(n, alpha)
        masses = [weights[0]] + [
            b - a for a, b in zip(weights, weights[1:])
        ]
        assert all(m1 > m2 for m1, m2 in zip(masses, masses[1:]))

    def test_zero_alpha_uniform_mass(self):
        weights = _zipf(10, 0.0)
        masses = [weights[0]] + [b - a for a, b in zip(weights, weights[1:])]
        assert all(abs(m - 1.0) < 1e-12 for m in masses)

    def test_normalized_share_matches_zipf_law(self):
        """The top rank's normalized share equals 1/H_n under alpha=1."""
        n = 16
        weights = _zipf(n, 1.0)
        harmonic = sum(1.0 / r for r in range(1, n + 1))
        assert abs(weights[0] / weights[-1] - 1.0 / harmonic) < 1e-12

    def test_cache_returns_same_object(self):
        _SHARED._zipf_cache.clear()
        assert _SHARED._zipf_weights(8, 1.1) is _SHARED._zipf_weights(8, 1.1)


class TestHotSetDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_hot_sets_identical_under_seed(self, seed):
        a = Workload(WorkloadConfig(**SMALL, seed=seed, hot_access_prob=0.5))
        b = Workload(WorkloadConfig(**SMALL, seed=seed, hot_access_prob=0.5))
        assert a._pick_hot(a.contracts.erc20) == b._pick_hot(b.contracts.erc20)
        assert a._pick_hot(a.contracts.pools) == b._pick_hot(b.contracts.pools)
        assert a.users == b.users
        assert a.contracts.all_addresses() == b.contracts.all_addresses()

    def test_hot_set_is_stable_prefix(self):
        """The hot set is the deterministic head of the deployment order,
        independent of how many transactions were drawn before asking."""
        workload = Workload(
            WorkloadConfig(**SMALL, hot_access_prob=0.5, hot_contract_count=2)
        )
        before = workload._pick_hot(workload.contracts.erc20)
        workload.transactions(300)
        assert workload._pick_hot(workload.contracts.erc20) == before
        assert before == workload.contracts.erc20[:2]

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_scenario_streams_deterministic(self, seed):
        a = Workload(scenario_config("mix", **SMALL, seed=seed))
        b = Workload(scenario_config("mix", **SMALL, seed=seed))
        assert a.transactions(120) == b.transactions(120)
        assert a.db.latest.root_hash == b.db.latest.root_hash


class TestScenarioTxShapes:
    """Each preset generates transactions of its advertised shape."""

    def _txs(self, name, count=300, **overrides):
        workload = Workload(scenario_config(name, **SMALL, **overrides))
        return workload, workload.transactions(count)

    def test_mint_storm_hits_hot_collection(self):
        workload, txs = self._txs("mint_storm")
        mints = [t for t in txs if t.label == "nft:mint_storm"]
        assert len(mints) > len(txs) * 0.6
        hot = workload.contracts.nfts[0]
        share = sum(1 for t in mints if t.to == hot) / len(mints)
        assert share > 0.8
        selector = workload.contracts.compiled["NFT"].abi("mint").selector
        assert all(
            int.from_bytes(t.data[:4], "big") == selector for t in mints
        )

    def test_airdrop_flood_single_contract_distinct_claimants(self):
        workload, txs = self._txs("airdrop_flood")
        claims = [t for t in txs if t.label.startswith("airdrop")]
        assert len(claims) > len(txs) * 0.6
        assert {t.to for t in claims} == {workload.scenarios.airdrop}
        fresh = [t for t in claims if t.label == "airdrop:claim"]
        # Fresh claims come from distinct, synthetic claimant accounts.
        assert len({t.sender for t in fresh}) == len(fresh)
        reclaims = [t for t in claims if t.label == "airdrop:reclaim"]
        assert all(t.sender in {f.sender for f in fresh} for t in reclaims)

    def test_flash_bundle_calldata_shape(self):
        workload, txs = self._txs("flash_loan")
        bundles = [t for t in txs if t.label == "flash:bundle"]
        assert bundles
        pools = set(workload.contracts.pools)
        for tx in bundles:
            assert tx.to == workload.scenarios.hub
            assert len(tx.data) == 32 * 3  # two pool legs + amount
            leg_a = int.from_bytes(tx.data[0:32], "big")
            leg_b = int.from_bytes(tx.data[32:64], "big")
            amount = int.from_bytes(tx.data[64:96], "big")
            assert {leg_a, leg_b} <= {p.to_word() for p in pools}
            assert amount >= 2

    def test_composition_route_legs(self):
        workload, txs = self._txs("defi_composition", composition_legs=3)
        routes = [t for t in txs if t.label == "defi:route"]
        assert routes
        for tx in routes:
            assert tx.to == workload.scenarios.router
            assert len(tx.data) == 32 * 4  # three pool legs + amount

    def test_reentrancy_depth_bounded(self):
        workload, txs = self._txs("reentrancy", reentrancy_depth=5)
        storms = [t for t in txs if t.label == "reentrancy:storm"]
        assert storms
        for tx in storms:
            assert tx.to == workload.scenarios.reentrant
            depth = int.from_bytes(tx.data, "big")
            assert 1 <= depth <= 5

    def test_abort_storm_pairs_set_then_update(self):
        workload, txs = self._txs("abort_storm")
        example = workload.contracts.compiled["Example"]
        set_sel = example.abi("setA").selector
        upd_sel = example.abi("UpdateB").selector
        hot_words = {u.to_word() for u in workload.scenarios.hot_keys}
        sets = [t for t in txs if t.label == "abort:set"]
        updates = [t for t in txs if t.label == "abort:update"]
        # A trailing set's update can still be queued when the stream cuts.
        assert sets and len(updates) >= len(sets) - 1
        for tx in sets + updates:
            assert tx.to == workload.scenarios.example
            selector = int.from_bytes(tx.data[:4], "big")
            assert selector == (set_sel if tx.label == "abort:set" else upd_sel)
            x = int.from_bytes(tx.data[4:36], "big")
            assert x in hot_words
        # Every setA(x, …) is *immediately* chased by an UpdateB(x, …) —
        # the queued pair is drained before any other traffic, which is
        # the adversarial ordering itself.
        pairs = 0
        for i, tx in enumerate(txs[:-1]):
            if tx.label != "abort:set":
                continue
            follower = txs[i + 1]
            assert follower.label == "abort:update"
            assert follower.data[4:36] == tx.data[4:36]
            pairs += 1
        assert pairs > 0

    def test_unknown_scenario_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            scenario_config("nope")
        with pytest.raises(ValueError):
            Workload(WorkloadConfig(**SMALL, scenario="bogus"))

    def test_every_preset_registered(self):
        from repro.workload import SCENARIOS

        assert set(SCENARIO_NAMES) | {"mix"} == set(SCENARIOS)
