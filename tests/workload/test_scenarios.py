"""Scenario-pack execution tests.

Every preset must (a) replay deterministically, (b) execute serially with
no unexpected failures, and (c) stay oracle-clean under the full DMVCC
protocol.  The abort-maximizer must out-abort the generic high-contention
preset — that asymmetry is its whole reason to exist.
"""

import pytest

from repro.executors import DMVCCExecutor, SerialExecutor
from repro.verify import check_block
from repro.workload import (
    SCENARIOS,
    Workload,
    high_contention_config,
    scenario_config,
)

SMALL = dict(users=60, erc20_tokens=3, dex_pools=2, nft_collections=2, icos=1)

# Labels whose serial revert is part of the scenario's design.  A
# cross-shard routed swap can legitimately revert once drifting reserves
# round an intermediate leg's output to zero — mispredicted txs are
# exactly what the sharded executor's cross lane exists to absorb.
EXPECTED_REVERTS = {"airdrop:reclaim", "storm:cross_route"}


def _preset_workload(name, seed=11):
    return Workload(scenario_config(name, **SMALL, seed=seed))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestEveryPreset:
    def test_deterministic_replay(self, name):
        a = _preset_workload(name)
        b = _preset_workload(name)
        assert a.db.latest.root_hash == b.db.latest.root_hash
        assert a.transactions(150) == b.transactions(150)

    def test_serial_execution_clean(self, name):
        workload = _preset_workload(name)
        serial = SerialExecutor()
        for _ in range(3):
            txs = workload.transactions(80)
            execution = serial.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of
            )
            for tx, receipt in zip(txs, execution.receipts):
                if not receipt.result.success:
                    assert tx.label in EXPECTED_REVERTS, (
                        f"{tx.label} reverted serially under {name}"
                    )
            workload.db.commit(execution.writes)

    def test_dmvcc_oracle_clean(self, name):
        workload = _preset_workload(name)
        executor = DMVCCExecutor()
        for _ in range(3):
            txs = workload.transactions(64)
            report, _trace = check_block(
                executor, txs, workload.db.latest,
                workload.db.codes.code_of, threads=4,
            )
            assert report.ok, report.render()
            execution = executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of, threads=4
            )
            workload.db.commit(execution.writes)


class TestAbortMaximizer:
    def _abort_rate(self, workload, blocks=4, txs_per_block=48):
        executor = DMVCCExecutor()
        aborts = attempts = 0
        for _ in range(blocks):
            txs = workload.transactions(txs_per_block)
            execution = executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of, threads=4
            )
            workload.db.commit(execution.writes)
            aborts += execution.metrics.aborts
            attempts += len(txs)
        return aborts / attempts

    def test_out_aborts_generic_high_contention(self):
        storm = self._abort_rate(_preset_workload("abort_storm"))
        generic = self._abort_rate(
            Workload(high_contention_config(**SMALL, seed=11))
        )
        # The adversarial orderer must beat plain hot-key skew by a wide
        # margin, not a rounding error.
        assert storm > generic + 0.2
        assert storm > 0.3
