"""Auction contract tests (internal visibility, hot-key bidding wars)."""

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.evm import BlockContext
from repro.executors import DMVCCExecutor, SerialExecutor, TxStatus
from repro.lang import compile_source
from repro.state import StateDB
from repro.workload.contracts import AUCTION_SOURCE


@pytest.fixture(scope="module")
def auction_contract():
    return compile_source(AUCTION_SOURCE)


class TestVisibility:
    def test_internal_helper_has_no_selector(self, auction_contract):
        assert "creditRefund" not in auction_contract.functions
        assert "bid" in auction_contract.functions

    def test_internal_helper_not_externally_callable(self, auction_contract):
        from repro.lang.compiler import selector_of
        from repro.evm import EVM, HaltReason, Message, drive
        from repro.state import WriteJournal

        contract = Address.derive("auction-vis")
        evm = EVM(lambda a: auction_contract.code)
        journal = WriteJournal(lambda key: 0)
        data = selector_of("creditRefund(address,uint256)").to_bytes(4, "big") + b"\x00" * 64
        out = drive(evm, Message(Address.derive("m"), contract, 0, data, 10**6), journal)
        assert out.result.status == HaltReason.REVERT  # unknown selector


class TestAuctionFlow:
    def _setup(self, auction_contract, timestamp=100):
        db = StateDB()
        auction = Address.derive("auction-flow")
        db.deploy_contract(auction, auction_contract.code, "Auction")
        users = [Address.derive(f"bidder{i}") for i in range(6)]
        seller = Address.derive("seller")
        db.seed_genesis({u: 10**18 for u in users + [seller]})
        return db, auction, seller, users

    def run(self, db, txs, timestamp=100):
        execution = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of, block=BlockContext(1, timestamp)
        )
        db.commit(execution.writes)
        return execution

    def test_bidding_war(self, auction_contract):
        db, auction, seller, users = self._setup(auction_contract)
        open_tx = Transaction(seller, auction, 0,
                              auction_contract.encode_call("open", seller, 1_000))
        bids = [
            Transaction(users[i], auction, 0,
                        auction_contract.encode_call("bid", 100 * (i + 1)))
            for i in range(4)
        ]
        execution = self.run(db, [open_tx] + bids)
        assert all(r.result.success for r in execution.receipts)
        assert db.latest.get(StateKey(auction, auction_contract.slot_of("highestBid"))) == 400
        assert db.latest.get(
            StateKey(auction, auction_contract.slot_of("highestBidder"))
        ) == users[3].to_word()

    def test_outbid_refund_credited(self, auction_contract):
        db, auction, seller, users = self._setup(auction_contract)
        txs = [
            Transaction(seller, auction, 0, auction_contract.encode_call("open", seller, 1_000)),
            Transaction(users[0], auction, 0, auction_contract.encode_call("bid", 100)),
            Transaction(users[1], auction, 0, auction_contract.encode_call("bid", 250)),
        ]
        self.run(db, txs)
        from repro.core import mapping_slot

        refund_slot = auction_contract.slot_of("refunds")
        owed = db.latest.get(
            StateKey(auction, mapping_slot(users[0].to_word(), refund_slot))
        )
        assert owed == 100

    def test_low_bid_rejected(self, auction_contract):
        db, auction, seller, users = self._setup(auction_contract)
        txs = [
            Transaction(seller, auction, 0, auction_contract.encode_call("open", seller, 1_000)),
            Transaction(users[0], auction, 0, auction_contract.encode_call("bid", 100)),
            Transaction(users[1], auction, 0, auction_contract.encode_call("bid", 50)),
        ]
        execution = self.run(db, txs)
        assert execution.receipts[2].result.status is TxStatus.REVERTED

    def test_bid_after_end_rejected(self, auction_contract):
        db, auction, seller, users = self._setup(auction_contract)
        self.run(db, [Transaction(seller, auction, 0,
                                  auction_contract.encode_call("open", seller, 50))],
                 timestamp=100)
        late = Transaction(users[0], auction, 0, auction_contract.encode_call("bid", 10))
        execution = SerialExecutor().execute_block(
            [late], db.latest, db.codes.code_of, block=BlockContext(2, 99_999)
        )
        assert execution.receipts[0].result.status is TxStatus.REVERTED

    def test_settle_and_withdraw(self, auction_contract):
        db, auction, seller, users = self._setup(auction_contract)
        self.run(db, [
            Transaction(seller, auction, 0, auction_contract.encode_call("open", seller, 10)),
            Transaction(users[0], auction, 0, auction_contract.encode_call("bid", 777)),
        ], timestamp=100)
        execution = SerialExecutor().execute_block(
            [Transaction(users[1], auction, 0, auction_contract.encode_call("settle"))],
            db.latest, db.codes.code_of, block=BlockContext(2, 200),
        )
        assert execution.receipts[0].result.success
        db.commit(execution.writes)
        # Seller's proceeds are a refund credit; withdraw returns it.
        withdrawal = SerialExecutor().execute_block(
            [Transaction(seller, auction, 0, auction_contract.encode_call("withdrawRefund"))],
            db.latest, db.codes.code_of, block=BlockContext(3, 201),
        )
        result = withdrawal.receipts[0].result
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 777

    def test_double_settle_rejected(self, auction_contract):
        db, auction, seller, users = self._setup(auction_contract)
        self.run(db, [Transaction(seller, auction, 0,
                                  auction_contract.encode_call("open", seller, 10))])
        ctx = BlockContext(2, 500)
        first = SerialExecutor().execute_block(
            [Transaction(users[0], auction, 0, auction_contract.encode_call("settle"))],
            db.latest, db.codes.code_of, block=ctx,
        )
        db.commit(first.writes)
        second = SerialExecutor().execute_block(
            [Transaction(users[0], auction, 0, auction_contract.encode_call("settle"))],
            db.latest, db.codes.code_of, block=ctx,
        )
        assert second.receipts[0].result.status is TxStatus.REVERTED


class TestAuctionUnderDMVCC:
    def test_bidding_block_serializable(self, auction_contract):
        """A block of competing bids is a worst-case hot chain (every bid
        reads and writes highestBid) — DMVCC must stay serial-equivalent."""
        db = StateDB()
        auction = Address.derive("auction-dmvcc")
        db.deploy_contract(auction, auction_contract.code, "Auction")
        users = [Address.derive(f"war{i}") for i in range(10)]
        db.seed_genesis({u: 10**18 for u in users})
        context = BlockContext(1, 100)
        txs = [Transaction(users[0], auction, 0,
                           auction_contract.encode_call("open", users[0], 10_000))]
        # Interleave rising and losing bids.
        amounts = [100, 50, 300, 200, 900, 400, 1_000]
        txs += [
            Transaction(users[i + 1], auction, 0,
                        auction_contract.encode_call("bid", amount))
            for i, amount in enumerate(amounts)
        ]
        reference = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of, block=context
        )
        execution = DMVCCExecutor().execute_block(
            txs, db.latest, db.codes.code_of, threads=8, block=context
        )
        assert execution.writes == reference.writes
        statuses = [r.result.status for r in execution.receipts]
        assert statuses == [r.result.status for r in reference.receipts]
