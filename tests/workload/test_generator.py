"""Workload generator tests: determinism, mix, skew, and executability."""

from collections import Counter

import pytest

from repro.executors import SerialExecutor
from repro.workload import (
    Workload,
    WorkloadConfig,
    high_contention_config,
    low_contention_config,
)

SMALL = dict(users=120, erc20_tokens=4, dex_pools=2, nft_collections=2, icos=1)


@pytest.fixture(scope="module")
def small_workload():
    return Workload(WorkloadConfig(**SMALL))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = Workload(WorkloadConfig(**SMALL, seed=5)).transactions(50)
        b = Workload(WorkloadConfig(**SMALL, seed=5)).transactions(50)
        assert a == b

    def test_same_seed_same_genesis_root(self):
        a = Workload(WorkloadConfig(**SMALL, seed=5)).db.latest.root_hash
        b = Workload(WorkloadConfig(**SMALL, seed=5)).db.latest.root_hash
        assert a == b

    def test_different_seed_differs(self):
        a = Workload(WorkloadConfig(**SMALL, seed=5)).transactions(50)
        b = Workload(WorkloadConfig(**SMALL, seed=6)).transactions(50)
        assert a != b


class TestMix:
    def test_traffic_shares_close_to_paper(self):
        workload = Workload(WorkloadConfig(**SMALL, seed=1))
        txs = workload.transactions(3_000)
        counts = Counter(t.label.split(":")[0] for t in txs)
        total = len(txs)
        assert abs(counts["ether"] / total - 0.31) < 0.05
        contract = total - counts["ether"]
        assert abs(counts["erc20"] / contract - 0.60) < 0.05
        assert abs(counts["defi"] / contract - 0.29) < 0.05
        assert abs(counts["nft"] / contract - 0.10) < 0.04

    def test_contract_targets_are_deployed(self, small_workload):
        txs = small_workload.transactions(200)
        deployed = set(small_workload.contracts.all_addresses())
        for tx in txs:
            if not tx.label.startswith("ether"):
                assert tx.to in deployed

    def test_blocks_shape(self, small_workload):
        blocks = small_workload.blocks(3, 40)
        assert len(blocks) == 3
        assert all(len(b) == 40 for b in blocks)


class TestContention:
    def test_hot_skew_concentrates_targets(self):
        cold = Workload(low_contention_config(**SMALL, seed=2))
        hot = Workload(high_contention_config(**SMALL, seed=2))
        def top_share(workload):
            txs = [t for t in workload.transactions(1_500) if t.label != "ether"]
            counts = Counter(t.to for t in txs)
            return counts.most_common(1)[0][1] / len(txs)
        assert top_share(hot) > top_share(cold) * 1.2

    def test_zipf_popularity(self):
        workload = Workload(WorkloadConfig(**SMALL, seed=3, zipf_alpha=1.2))
        txs = [t for t in workload.transactions(2_000) if t.label.startswith("erc20")]
        counts = Counter(t.to for t in txs)
        ranked = [count for _t, count in counts.most_common()]
        assert ranked[0] > ranked[-1] * 2

    def test_zero_alpha_uniform(self):
        workload = Workload(WorkloadConfig(**SMALL, seed=3, zipf_alpha=0.0))
        txs = [t for t in workload.transactions(2_000) if t.label.startswith("erc20")]
        counts = Counter(t.to for t in txs)
        ranked = [count for _t, count in counts.most_common()]
        assert ranked[0] < ranked[-1] * 2


class TestExecutability:
    def test_blocks_execute_cleanly(self):
        """The generated stream must execute with (near-)zero failures —
        the generator keeps its own view of ownership/balances consistent."""
        workload = Workload(WorkloadConfig(**SMALL, seed=4))
        serial = SerialExecutor()
        failures = 0
        total = 0
        for _ in range(3):
            txs = workload.transactions(100)
            execution = serial.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of
            )
            workload.db.commit(execution.writes)
            failures += execution.metrics.deterministic_failures
            total += len(txs)
        assert failures <= total * 0.02

    def test_nft_transfers_present_and_valid(self):
        workload = Workload(WorkloadConfig(**SMALL, seed=8, nft_mint_prob=0.2))
        txs = workload.transactions(1_200)
        nft_transfers = [t for t in txs if t.label == "nft:transfer"]
        assert nft_transfers
        execution = SerialExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of
        )
        statuses = {
            t.label: r.result.success
            for t, r in zip(txs, execution.receipts)
            if t.label == "nft:transfer"
        }
        # Transfers were generated against tracked ownership: they succeed.
        failed = [
            r for t, r in zip(txs, execution.receipts)
            if t.label == "nft:transfer" and not r.result.success
        ]
        assert not failed
