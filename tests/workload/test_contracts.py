"""Behavioural tests for the workload contracts (ERC20, DEX, NFT, ICO)."""

import pytest

from repro.core import Address
from repro.executors import TxStatus


class TestERC20:
    def test_mint_transfer_burn(self, chain, erc20_contract):
        token = chain.deploy("erc20", erc20_contract)
        alice, bob = chain.user("alice"), chain.user("bob")
        result, _ = chain.call(alice, token, erc20_contract, "mint", alice, 1_000)
        assert result.success
        result, _ = chain.call(alice, token, erc20_contract, "transfer", bob, 400)
        assert result.success
        result, _ = chain.call(alice, token, erc20_contract, "burn", 100)
        assert result.success
        assert chain.mapping_value(token, erc20_contract, "balanceOf", alice) == 500
        assert chain.mapping_value(token, erc20_contract, "balanceOf", bob) == 400
        assert chain.storage(token, erc20_contract.slot_of("totalSupply")) == 900

    def test_transfer_insufficient_reverts(self, chain, erc20_contract):
        token = chain.deploy("erc20b", erc20_contract)
        alice, bob = chain.user("alice"), chain.user("bob")
        result, _ = chain.call(alice, token, erc20_contract, "transfer", bob, 1)
        assert result.status is TxStatus.REVERTED

    def test_approve_transfer_from(self, chain, erc20_contract):
        token = chain.deploy("erc20c", erc20_contract)
        alice, bob, carol = chain.user("alice"), chain.user("bob"), chain.user("carol")
        chain.call(alice, token, erc20_contract, "mint", alice, 1_000)
        chain.call(alice, token, erc20_contract, "approve", bob, 300)
        result, _ = chain.call(bob, token, erc20_contract, "transferFrom", alice, carol, 200)
        assert result.success
        assert chain.mapping_value(token, erc20_contract, "balanceOf", carol) == 200
        # Allowance decremented: a second overdraw fails.
        result, _ = chain.call(bob, token, erc20_contract, "transferFrom", alice, carol, 200)
        assert result.status is TxStatus.REVERTED

    def test_get_balance_view(self, chain, erc20_contract):
        token = chain.deploy("erc20d", erc20_contract)
        alice = chain.user("alice")
        chain.call(alice, token, erc20_contract, "mint", alice, 77)
        result, _ = chain.call(alice, token, erc20_contract, "getBalance", alice)
        assert int.from_bytes(result.return_data, "big") == 77


class TestDEXPool:
    def _setup(self, chain, pool_contract):
        pool = chain.deploy("dex", pool_contract)
        lp = chain.user("lp")
        trader = chain.user("trader")
        chain.call(lp, pool, pool_contract, "fund", lp, 10**12, 10**12)
        chain.call(lp, pool, pool_contract, "addLiquidity", 10**9, 10**9)
        chain.call(lp, pool, pool_contract, "fund", trader, 10**6, 10**6)
        return pool, lp, trader

    def test_add_liquidity_updates_reserves(self, chain, pool_contract):
        pool, lp, _ = self._setup(chain, pool_contract)
        assert chain.storage(pool, pool_contract.slot_of("reserveX")) == 10**9
        assert chain.storage(pool, pool_contract.slot_of("reserveY")) == 10**9

    def test_swap_constant_product(self, chain, pool_contract):
        pool, _, trader = self._setup(chain, pool_contract)
        result, _ = chain.call(trader, pool, pool_contract, "swapXForY", 1_000)
        assert result.success
        rx = chain.storage(pool, pool_contract.slot_of("reserveX"))
        ry = chain.storage(pool, pool_contract.slot_of("reserveY"))
        assert rx == 10**9 + 1_000
        assert ry < 10**9
        # Constant product preserved up to rounding: k' >= k.
        assert rx * ry >= 10**18

    def test_swap_pays_out(self, chain, pool_contract):
        pool, _, trader = self._setup(chain, pool_contract)
        before = chain.mapping_value(pool, pool_contract, "balanceY", trader)
        chain.call(trader, pool, pool_contract, "swapXForY", 1_000)
        after = chain.mapping_value(pool, pool_contract, "balanceY", trader)
        assert after > before

    def test_swap_without_funds_reverts(self, chain, pool_contract):
        pool, _, _ = self._setup(chain, pool_contract)
        broke = chain.user("broke")
        result, _ = chain.call(broke, pool, pool_contract, "swapXForY", 10)
        assert result.status is TxStatus.REVERTED

    def test_zero_swap_reverts(self, chain, pool_contract):
        pool, _, trader = self._setup(chain, pool_contract)
        result, _ = chain.call(trader, pool, pool_contract, "swapXForY", 0)
        assert result.status is TxStatus.REVERTED

    def test_symmetric_swaps(self, chain, pool_contract):
        pool, _, trader = self._setup(chain, pool_contract)
        assert chain.call(trader, pool, pool_contract, "swapXForY", 500)[0].success
        assert chain.call(trader, pool, pool_contract, "swapYForX", 500)[0].success


class TestNFT:
    def test_mint_assigns_sequential_ids(self, chain, nft_contract):
        nft = chain.deploy("nft", nft_contract)
        alice, bob = chain.user("alice"), chain.user("bob")
        chain.call(alice, nft, nft_contract, "mint")
        chain.call(bob, nft, nft_contract, "mint")
        assert chain.mapping_value(nft, nft_contract, "ownerOf", 0) == alice.to_word()
        assert chain.mapping_value(nft, nft_contract, "ownerOf", 1) == bob.to_word()
        assert chain.storage(nft, nft_contract.slot_of("nextTokenId")) == 2

    def test_transfer_ownership(self, chain, nft_contract):
        nft = chain.deploy("nft2", nft_contract)
        alice, bob = chain.user("alice"), chain.user("bob")
        chain.call(alice, nft, nft_contract, "mint")
        result, _ = chain.call(alice, nft, nft_contract, "transfer", bob, 0)
        assert result.success
        assert chain.mapping_value(nft, nft_contract, "ownerOf", 0) == bob.to_word()
        assert chain.mapping_value(nft, nft_contract, "balanceOf", alice) == 0
        assert chain.mapping_value(nft, nft_contract, "balanceOf", bob) == 1

    def test_transfer_requires_ownership(self, chain, nft_contract):
        nft = chain.deploy("nft3", nft_contract)
        alice, mallory = chain.user("alice"), chain.user("mallory")
        chain.call(alice, nft, nft_contract, "mint")
        result, _ = chain.call(mallory, nft, nft_contract, "transfer", mallory, 0)
        assert result.status is TxStatus.REVERTED


class TestICO:
    def test_uncapped_contribution(self, chain, ico_contract):
        ico = chain.deploy("ico", ico_contract)
        alice = chain.user("alice")
        chain.call(alice, ico, ico_contract, "setup", 0, 100)
        result, _ = chain.call(alice, ico, ico_contract, "contribute", 500)
        assert result.success
        assert chain.storage(ico, ico_contract.slot_of("totalRaised")) == 500
        assert chain.mapping_value(ico, ico_contract, "tokens", alice) == 50_000

    def test_cap_enforced(self, chain, ico_contract):
        ico = chain.deploy("ico2", ico_contract)
        alice = chain.user("alice")
        chain.call(alice, ico, ico_contract, "setup", 1_000, 1)
        assert chain.call(alice, ico, ico_contract, "contribute", 800)[0].success
        result, _ = chain.call(alice, ico, ico_contract, "contribute", 300)
        assert result.status is TxStatus.REVERTED
        assert chain.storage(ico, ico_contract.slot_of("totalRaised")) == 800

    def test_zero_contribution_rejected(self, chain, ico_contract):
        ico = chain.deploy("ico3", ico_contract)
        alice = chain.user("alice")
        chain.call(alice, ico, ico_contract, "setup", 0, 1)
        result, _ = chain.call(alice, ico, ico_contract, "contribute", 0)
        assert result.status is TxStatus.REVERTED


class TestPaperExample:
    def test_loop_branch(self, chain, example_contract):
        """Fig. 1: idx > 1 walks the loop writing B[idx..2]."""
        example = chain.deploy("ex", example_contract)
        alice = chain.user("alice")
        for value in (10, 20, 30, 40, 50, 60):
            chain.call(alice, example, example_contract, "pushB", value)
        chain.call(alice, example, example_contract, "setA", alice, 3)
        result, _ = chain.call(alice, example, example_contract, "UpdateB", alice, 7)
        assert result.success
        # B[3] = B[1] + 7 = 27; B[2] = B[0] + 7 = 17
        from repro.core import StateKey, array_element_slot

        b_slot = example_contract.slot_of("B")
        assert chain.db.latest.get(
            StateKey(example, array_element_slot(b_slot, 3))
        ) == 27
        assert chain.db.latest.get(
            StateKey(example, array_element_slot(b_slot, 2))
        ) == 17

    def test_else_branch_assert(self, chain, example_contract):
        """Fig. 1: idx <= 1 takes the else branch; y > 10 trips the assert."""
        example = chain.deploy("ex2", example_contract)
        alice = chain.user("alice")
        for value in (10, 20):
            chain.call(alice, example, example_contract, "pushB", value)
        ok, _ = chain.call(alice, example, example_contract, "UpdateB", alice, 5)
        assert ok.success
        bad, _ = chain.call(alice, example, example_contract, "UpdateB", alice, 11)
        assert bad.status is TxStatus.ASSERT_FAIL
