"""Consensus simulator and network simulation tests."""

import pytest

from repro.chain import PoWSimulator, PropagationModel
from repro.chain.network import NetworkSimulation, _to_seconds
from repro.chain.txpool import Packer
from repro.chain.validator import Validator
from repro.executors import DMVCCExecutor, SerialExecutor


class TestPoWSimulator:
    def test_deterministic_given_seed(self):
        events_a = list(PoWSimulator(4, 12.0, seed=3).events(10))
        events_b = list(PoWSimulator(4, 12.0, seed=3).events(10))
        assert events_a == events_b

    def test_seed_changes_schedule(self):
        events_a = list(PoWSimulator(4, 12.0, seed=3).events(10))
        events_b = list(PoWSimulator(4, 12.0, seed=4).events(10))
        assert events_a != events_b

    def test_times_increase(self):
        events = list(PoWSimulator(4, 12.0, seed=1).events(20))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_interval_close_to_target(self):
        events = list(PoWSimulator(4, 12.0, seed=7).events(500))
        mean_gap = events[-1].time / len(events)
        assert 8.0 < mean_gap < 16.0

    def test_deterministic_interval_mode(self):
        events = list(
            PoWSimulator(2, 12.0, seed=1, deterministic_interval=True).events(3)
        )
        assert [e.time for e in events] == [12.0, 24.0, 36.0]

    def test_miners_in_range(self):
        events = list(PoWSimulator(3, 1.0, seed=5).events(100))
        assert {e.miner_index for e in events} <= {0, 1, 2}
        assert len({e.miner_index for e in events}) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PoWSimulator(0, 12.0)
        with pytest.raises(ValueError):
            PoWSimulator(2, 0.0)


class TestPropagation:
    def test_delay_scales_with_block_size(self):
        model = PropagationModel(base_delay=0.5, per_tx_delay=0.001)
        assert model.delay(0) == 0.5
        assert model.delay(1000) == pytest.approx(1.5)


class TestNetworkSimulation:
    def _network(self, token_contract, executor_factory, threads, gas_per_second,
                 validators=2, interval=12.0):
        from .test_validator import fresh_db

        nodes = [
            Validator(
                f"v{i}", fresh_db(token_contract), executor_factory(),
                threads=threads, packer=Packer(max_txs=50),
            )
            for i in range(validators)
        ]
        return NetworkSimulation(
            nodes,
            block_interval=interval,
            gas_per_second=gas_per_second,
            seed=1,
            deterministic_interval=True,
        )

    def _txs(self, token_contract, n):
        """Transfers over disjoint sender/recipient pairs: 12 independent
        chains, so parallel schedulers have real work to overlap."""
        from .test_validator import TOKEN, USERS
        from repro.chain import Transaction

        pairs = len(USERS) // 2
        return [
            Transaction(
                USERS[2 * (i % pairs)], TOKEN, 0,
                token_contract.encode_call(
                    "transfer", USERS[2 * (i % pairs) + 1], 1 + i
                ),
            )
            for i in range(n)
        ]

    def test_roots_agree_across_validators(self, token_contract):
        network = self._network(token_contract, DMVCCExecutor, 4, 1e9)
        network.submit(self._txs(token_contract, 40))
        result = network.run(2)
        assert result.all_roots_agree
        assert result.committed_txs > 0

    def test_mining_bound_regime(self, token_contract):
        """Fast execution: the cycle time equals the mining interval."""
        network = self._network(token_contract, SerialExecutor, 1, 1e12)
        network.submit(self._txs(token_contract, 40))
        result = network.run(2)
        for record in result.records:
            assert record.cycle_seconds == pytest.approx(record.mining_gap)

    def test_execution_bound_regime(self, token_contract):
        """Slow execution dominates the cycle (the paper's big-block case)."""
        network = self._network(token_contract, SerialExecutor, 1, 2_000.0)
        network.submit(self._txs(token_contract, 40))
        result = network.run(2)
        assert any(r.cycle_seconds > r.mining_gap for r in result.records)

    def test_parallelism_raises_throughput_when_execution_bound(self, token_contract):
        def throughput(executor_factory, threads):
            network = self._network(token_contract, executor_factory, threads, 20_000.0)
            network.submit(self._txs(token_contract, 60))
            return network.run(2).throughput

        serial_tps = throughput(SerialExecutor, 1)
        parallel_tps = throughput(DMVCCExecutor, 8)
        assert parallel_tps > serial_tps * 1.5

    def test_gossip_drop_exercises_missing_path(self, token_contract):
        network = self._network(token_contract, DMVCCExecutor, 4, 1e9)
        network.submit(self._txs(token_contract, 40), drop_rate=0.5, seed=3)
        result = network.run(2)
        assert result.all_roots_agree
        assert result.missing_csags > 0

    def test_to_seconds(self):
        assert _to_seconds(2_500_000.0, 1_250_000.0) == 2.0
