"""Transaction and block structure tests."""

import pytest

from repro.chain import (
    Block,
    GENESIS_PARENT,
    Transaction,
    make_block,
    transactions_root,
    validate_block_shape,
)
from repro.core import Address
from repro.core.errors import InvalidBlock, InvalidTransaction

ALICE = Address.derive("alice")
BOB = Address.derive("bob")
MINER = Address.derive("miner")


class TestTransaction:
    def test_hash_deterministic(self):
        tx1 = Transaction(ALICE, BOB, 5)
        tx2 = Transaction(ALICE, BOB, 5)
        assert tx1.tx_hash == tx2.tx_hash

    def test_hash_sensitive_to_fields(self):
        base = Transaction(ALICE, BOB, 5)
        assert base.tx_hash != Transaction(ALICE, BOB, 6).tx_hash
        assert base.tx_hash != Transaction(BOB, ALICE, 5).tx_hash
        assert base.tx_hash != Transaction(ALICE, BOB, 5, b"\x01").tx_hash
        assert base.tx_hash != Transaction(ALICE, BOB, 5, nonce=1).tx_hash

    def test_label_excluded_from_identity(self):
        assert Transaction(ALICE, BOB, 5, label="a") == Transaction(ALICE, BOB, 5, label="b")

    def test_negative_value_rejected(self):
        with pytest.raises(InvalidTransaction):
            Transaction(ALICE, BOB, -1)

    def test_zero_gas_rejected(self):
        with pytest.raises(InvalidTransaction):
            Transaction(ALICE, BOB, 1, gas_limit=0)

    def test_is_transfer(self):
        assert Transaction(ALICE, BOB, 1).is_transfer
        assert not Transaction(ALICE, BOB, 1, b"\x01\x02\x03\x04").is_transfer


class TestBlock:
    def _block(self, txs, number=1, parent=GENESIS_PARENT):
        return make_block(
            number=number,
            parent_hash=parent,
            state_root=b"\x01" * 32,
            txs=txs,
            timestamp=1000,
            miner=MINER,
        )

    def test_tx_root_order_sensitive(self):
        tx1 = Transaction(ALICE, BOB, 1)
        tx2 = Transaction(BOB, ALICE, 2)
        assert transactions_root([tx1, tx2]) != transactions_root([tx2, tx1])

    def test_block_hash_covers_state_root(self):
        block_a = self._block([])
        block_b = make_block(1, GENESIS_PARENT, b"\x02" * 32, [], 1000, MINER)
        assert block_a.block_hash != block_b.block_hash

    def test_validate_linkage(self):
        parent = self._block([])
        child = make_block(2, parent.block_hash, b"\x01" * 32, [], 1001, MINER)
        validate_block_shape(child, parent.header)  # no raise

    def test_bad_parent_rejected(self):
        parent = self._block([])
        orphan = make_block(2, b"\xff" * 32, b"\x01" * 32, [], 1001, MINER)
        with pytest.raises(InvalidBlock):
            validate_block_shape(orphan, parent.header)

    def test_bad_number_rejected(self):
        parent = self._block([])
        child = make_block(5, parent.block_hash, b"\x01" * 32, [], 1001, MINER)
        with pytest.raises(InvalidBlock):
            validate_block_shape(child, parent.header)

    def test_tampered_tx_list_rejected(self):
        parent = self._block([])
        txs = [Transaction(ALICE, BOB, 1)]
        child = make_block(2, parent.block_hash, b"\x01" * 32, txs, 1001, MINER)
        tampered = Block(child.header, (Transaction(ALICE, BOB, 2),))
        with pytest.raises(InvalidBlock):
            validate_block_shape(tampered, parent.header)

    def test_len(self):
        assert len(self._block([Transaction(ALICE, BOB, 1)])) == 1
