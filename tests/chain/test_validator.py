"""Validator workflow tests: propose, import, verify roots."""

import pytest

from repro.chain import Packer, Transaction, Validator
from repro.core import Address, StateKey, mapping_slot
from repro.core.errors import InvalidBlock
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.state import StateDB

USERS = [Address.derive(f"vuser{i}") for i in range(24)]
TOKEN = Address.derive("vtoken")


def fresh_db(token_contract):
    db = StateDB()
    db.deploy_contract(TOKEN, token_contract.code, "Token")
    bal = token_contract.slot_of("balanceOf")
    storage = {
        StateKey(TOKEN, mapping_slot(u.to_word(), bal)): 10_000 for u in USERS
    }
    db.seed_genesis({u: 10**18 for u in USERS}, storage)
    return db


def make_validator(token_contract, name="v0", executor=None, threads=4):
    return Validator(
        name,
        fresh_db(token_contract),
        executor if executor is not None else DMVCCExecutor(),
        threads=threads,
        packer=Packer(max_txs=100),
    )


def sample_txs(token_contract, n=6):
    txs = []
    for i in range(n):
        txs.append(Transaction(
            USERS[i % len(USERS)], TOKEN, 0,
            token_contract.encode_call("transfer", USERS[(i + 1) % len(USERS)], 10 + i),
        ))
    return txs


class TestPropose:
    def test_propose_commits_and_seals(self, token_contract):
        validator = make_validator(token_contract)
        for tx in sample_txs(token_contract):
            validator.receive_transaction(tx)
        block, execution = validator.propose_block(timestamp=100)
        assert block.number == 1
        assert validator.height == 1
        assert block.header.state_root == validator.state_root()
        assert len(block) == 6
        assert execution.success_count == 6

    def test_pool_drained(self, token_contract):
        validator = make_validator(token_contract)
        for tx in sample_txs(token_contract):
            validator.receive_transaction(tx)
        validator.propose_block()
        assert len(validator.pool) == 0

    def test_packer_limit_respected(self, token_contract):
        validator = make_validator(token_contract)
        validator.packer = Packer(max_txs=2)
        for tx in sample_txs(token_contract):
            validator.receive_transaction(tx)
        block, _ = validator.propose_block()
        assert len(block) == 2
        assert len(validator.pool) == 4

    def test_stats_updated(self, token_contract):
        validator = make_validator(token_contract)
        for tx in sample_txs(token_contract):
            validator.receive_transaction(tx)
        validator.propose_block()
        assert validator.stats.received_txs == 6
        assert validator.stats.analysed_txs == 6
        assert validator.stats.proposed_blocks == 1


class TestImport:
    def test_import_reaches_same_root(self, token_contract):
        miner = make_validator(token_contract, "miner")
        follower = make_validator(token_contract, "follower",
                                  executor=SerialExecutor(), threads=1)
        txs = sample_txs(token_contract)
        for tx in txs:
            miner.receive_transaction(tx)
            follower.receive_transaction(tx)
        block, _ = miner.propose_block(timestamp=50)
        follower.import_block(block)
        assert follower.state_root() == miner.state_root()

    def test_import_with_cold_pool(self, token_contract):
        """A follower that never saw the transactions re-analyses on the
        fly (paper §III-A) and still agrees."""
        miner = make_validator(token_contract, "miner")
        follower = make_validator(token_contract, "cold")
        txs = sample_txs(token_contract)
        for tx in txs:
            miner.receive_transaction(tx)
        block, _ = miner.propose_block()
        follower.import_block(block)
        assert follower.state_root() == miner.state_root()
        assert follower.stats.missing_csags == len(txs)
        assert follower.stats.reanalysed_csags == len(txs)

    def test_import_occ_fallback_for_missing(self, token_contract):
        """With re-analysis disabled, missing transactions run with an empty
        C-SAG (pure OCC mode) — correctness must still hold."""
        miner = make_validator(token_contract, "miner")
        follower = Validator(
            "occ-fallback",
            fresh_db(token_contract),
            DMVCCExecutor(),
            threads=4,
            reanalyse_missing=False,
        )
        txs = sample_txs(token_contract)
        for tx in txs:
            miner.receive_transaction(tx)
        block, _ = miner.propose_block()
        follower.import_block(block)
        assert follower.state_root() == miner.state_root()

    def test_root_mismatch_detected(self, token_contract):
        """A block with a forged state root must be rejected."""
        from dataclasses import replace

        from repro.chain.block import Block

        miner = make_validator(token_contract, "miner")
        follower = make_validator(token_contract, "follower")
        for tx in sample_txs(token_contract):
            miner.receive_transaction(tx)
        block, _ = miner.propose_block()
        forged_header = replace(block.header, state_root=b"\x66" * 32)
        forged = Block(forged_header, block.transactions)
        with pytest.raises(InvalidBlock):
            follower.import_block(forged)
        assert follower.stats.root_mismatches == 1

    def test_chain_continuity_enforced(self, token_contract):
        miner = make_validator(token_contract, "miner")
        follower = make_validator(token_contract, "follower")
        for tx in sample_txs(token_contract):
            miner.receive_transaction(tx)
        block1, _ = miner.propose_block()
        for tx in sample_txs(token_contract, 3):
            miner.receive_transaction(tx)
        block2, _ = miner.propose_block()
        follower.import_block(block1)
        follower.import_block(block2)
        assert follower.height == 2
        # Re-importing out of order fails the shape check.
        with pytest.raises(InvalidBlock):
            follower.import_block(block1)


class TestMultiBlock:
    def test_multi_block_chain_roots(self, token_contract):
        """Three blocks proposed with DMVCC match a serial follower
        throughout — the RQ1 check in miniature."""
        miner = make_validator(token_contract, "miner", threads=8)
        follower = make_validator(token_contract, "serial-check",
                                  executor=SerialExecutor(), threads=1)
        for round_ in range(3):
            txs = sample_txs(token_contract, 5)
            for tx in txs:
                miner.receive_transaction(tx)
            block, _ = miner.propose_block(timestamp=round_)
            follower.import_block(block)
            assert follower.state_root() == miner.state_root()
