"""Transaction pool and packer tests."""

from repro.analysis import CSAGBuilder
from repro.chain import Packer, Transaction, TransactionPool
from repro.core import Address
from repro.state import StateDB

ALICE = Address.derive("alice")
BOB = Address.derive("bob")


def make_txs(n):
    return [Transaction(ALICE, BOB, value=i + 1) for i in range(n)]


class TestPool:
    def test_add_and_contains(self):
        pool = TransactionPool()
        (tx,) = make_txs(1)
        assert pool.add(tx)
        assert tx.tx_hash in pool
        assert len(pool) == 1

    def test_duplicate_ignored(self):
        pool = TransactionPool()
        (tx,) = make_txs(1)
        pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1

    def test_take_fifo(self):
        pool = TransactionPool()
        txs = make_txs(5)
        for tx in txs:
            pool.add(tx)
        taken = pool.take(3)
        assert [p.tx for p in taken] == txs[:3]
        assert len(pool) == 2

    def test_eviction_at_capacity(self):
        pool = TransactionPool(max_size=2)
        txs = make_txs(3)
        for tx in txs:
            pool.add(tx)
        assert len(pool) == 2
        assert txs[0].tx_hash not in pool  # oldest evicted

    def test_analyse_fills_missing_csags(self):
        db = StateDB()
        db.seed_genesis({ALICE: 10**18})
        pool = TransactionPool()
        for tx in make_txs(3):
            pool.add(tx)
        built = pool.analyse(CSAGBuilder(db.codes.code_of), db.latest)
        assert built == 3
        assert pool.analyse(CSAGBuilder(db.codes.code_of), db.latest) == 0

    def test_lookup_block_removes_and_reports_missing(self):
        db = StateDB()
        db.seed_genesis({ALICE: 10**18})
        builder = CSAGBuilder(db.codes.code_of)
        pool = TransactionPool()
        txs = make_txs(3)
        pool.add(txs[0], builder.build(txs[0], db.latest))
        pool.add(txs[1])  # present but unanalysed
        # txs[2] entirely unknown
        csags, missing = pool.lookup_block(txs)
        assert csags[0] is not None
        assert csags[1] is None and csags[2] is None
        assert missing == 2
        assert len(pool) == 0

    def test_remove(self):
        pool = TransactionPool()
        (tx,) = make_txs(1)
        pool.add(tx)
        assert pool.remove(tx.tx_hash)
        assert not pool.remove(tx.tx_hash)


class TestPacker:
    def test_count_limit(self):
        pool = TransactionPool()
        for tx in make_txs(10):
            pool.add(tx)
        packed = Packer(max_txs=4).pack(pool)
        assert len(packed) == 4
        assert len(pool) == 6

    def test_gas_limit(self):
        db = StateDB()
        db.seed_genesis({ALICE: 10**18})
        builder = CSAGBuilder(db.codes.code_of)
        pool = TransactionPool()
        txs = make_txs(5)
        for tx in txs:
            pool.add(tx, builder.build(tx, db.latest))
        # Each transfer predicts 21_000 gas; cap at two transfers' worth.
        packed = Packer(max_txs=100, gas_limit=45_000).pack(pool)
        assert len(packed) == 2
        assert len(pool) == 3  # the rest returned to the pool

    def test_gas_limit_always_packs_at_least_one(self):
        pool = TransactionPool()
        (tx,) = make_txs(1)
        pool.add(tx)  # unanalysed: estimate = tx.gas_limit (large)
        packed = Packer(max_txs=10, gas_limit=1).pack(pool)
        assert len(packed) == 1
