"""Mempool admission control, nonce tracking, and fee-priority eviction.

The original FIFO pool behaviour is covered by ``test_txpool.py``; these
tests cover the mempool upgrade: per-sender nonce validation at admission,
replace-by-fee, fee floors and sender caps, the lowest-fee-unanalysed
eviction policy (observable, never silent), watermark signals, and
fee-ordered packing that preserves per-sender nonce order.
"""

import pytest

from repro.chain import Packer, Transaction, TransactionPool
from repro.chain.txpool import (
    DUPLICATE,
    DUPLICATE_NONCE,
    NONCE_GAP,
    POOL_FULL,
    REPLACED,
    SENDER_CAP,
    STALE_NONCE,
    UNDERPRICED,
)
from repro.core import Address
from repro.obs import EventBus

ALICE = Address.derive("alice")
BOB = Address.derive("bob")
CAROL = Address.derive("carol")


def tx(sender=ALICE, nonce=0, fee=0, value=1, label=""):
    return Transaction(
        sender, BOB, value=value, nonce=nonce, fee=fee, label=label,
    )


class TestNonceTracking:
    def test_stale_nonce_rejected(self):
        pool = TransactionPool(nonce_tracking=True, base_nonce=lambda a: 5)
        result = pool.add(tx(nonce=4))
        assert not result
        assert result.reason == STALE_NONCE
        assert pool.stats.rejected[STALE_NONCE] == 1

    def test_nonce_at_floor_accepted(self):
        pool = TransactionPool(nonce_tracking=True, base_nonce=lambda a: 5)
        assert pool.add(tx(nonce=5))
        assert pool.floor_of(ALICE) == 5

    def test_duplicate_nonce_without_better_fee_rejected(self):
        pool = TransactionPool(nonce_tracking=True)
        assert pool.add(tx(nonce=0, fee=10, value=1))
        result = pool.add(tx(nonce=0, fee=10, value=2))
        assert not result
        assert result.reason == DUPLICATE_NONCE
        assert len(pool) == 1

    def test_replace_by_fee_wins_the_collision(self):
        pool = TransactionPool(nonce_tracking=True)
        first = tx(nonce=0, fee=10, value=1)
        better = tx(nonce=0, fee=11, value=2)
        assert pool.add(first)
        result = pool.add(better)
        assert result
        assert result.reason == REPLACED
        assert result.evicted == first.tx_hash
        assert len(pool) == 1
        assert better.tx_hash in pool
        assert pool.stats.replacements == 1

    def test_nonce_gap_beyond_bound_rejected(self):
        pool = TransactionPool(nonce_tracking=True, max_nonce_gap=2)
        assert pool.add(tx(nonce=2))  # floor 0, gap 2: allowed
        result = pool.add(tx(nonce=3, value=2))
        assert not result
        assert result.reason == NONCE_GAP

    def test_gap_unbounded_by_default(self):
        pool = TransactionPool(nonce_tracking=True)
        assert pool.add(tx(nonce=1_000))

    def test_mark_included_advances_floor_and_drops_stale(self):
        pool = TransactionPool(nonce_tracking=True)
        old = tx(nonce=0)
        nxt = tx(nonce=1, value=2)
        pool.add(old)
        pool.add(nxt)
        included = tx(nonce=0, value=3, fee=1)
        dropped = pool.mark_included([included])
        assert pool.floor_of(ALICE) == 1
        assert dropped == 1              # the nonce-0 entry is now stale
        assert old.tx_hash not in pool
        assert nxt.tx_hash in pool
        assert not pool.add(tx(nonce=0, value=9))  # stale forever after

    def test_per_sender_isolation(self):
        pool = TransactionPool(nonce_tracking=True)
        assert pool.add(tx(sender=ALICE, nonce=0))
        assert pool.add(tx(sender=CAROL, nonce=0))
        assert pool.floor_of(ALICE) == 0
        assert pool.sender_count(ALICE) == 1
        assert pool.sender_count(CAROL) == 1

    def test_duplicate_hash_still_rejected_first(self):
        pool = TransactionPool(nonce_tracking=True)
        t = tx(nonce=0)
        pool.add(t)
        assert pool.add(t).reason == DUPLICATE


class TestAdmissionPolicy:
    def test_min_fee_floor(self):
        pool = TransactionPool(min_fee=5)
        result = pool.add(tx(fee=4))
        assert not result
        assert result.reason == UNDERPRICED
        assert pool.add(tx(fee=5, value=2))

    def test_sender_cap(self):
        pool = TransactionPool(per_sender_cap=2)
        assert pool.add(tx(value=1))
        assert pool.add(tx(value=2))
        result = pool.add(tx(value=3))
        assert not result
        assert result.reason == SENDER_CAP
        assert pool.add(tx(sender=CAROL, value=1))  # other senders unaffected

    def test_replacement_does_not_count_against_sender_cap(self):
        pool = TransactionPool(nonce_tracking=True, per_sender_cap=1)
        assert pool.add(tx(nonce=0, fee=1))
        assert pool.add(tx(nonce=0, fee=2, value=2))  # replaces, same slot


class TestEvictionPolicy:
    def test_lowest_fee_unanalysed_evicted_first(self):
        pool = TransactionPool(max_size=3)
        cheap = tx(value=1, fee=1)
        mid = tx(value=2, fee=5)
        rich = tx(value=3, fee=9)
        for t in (mid, cheap, rich):
            assert pool.add(t)
        newcomer = tx(value=4, fee=7)
        result = pool.add(newcomer)
        assert result
        assert result.evicted == cheap.tx_hash
        assert cheap.tx_hash not in pool
        assert newcomer.tx_hash in pool
        assert pool.stats.evictions == 1

    def test_underbidding_newcomer_rejected_not_evicting(self):
        pool = TransactionPool(max_size=2)
        pool.add(tx(value=1, fee=5))
        pool.add(tx(value=2, fee=6))
        result = pool.add(tx(value=3, fee=4))
        assert not result
        assert result.reason == POOL_FULL
        assert len(pool) == 2
        assert pool.stats.rejected[POOL_FULL] == 1

    def test_analysed_entries_survive_unanalysed_ones(self):
        from repro.analysis import CSAGBuilder
        from repro.state import StateDB

        db = StateDB()
        builder = CSAGBuilder(db.codes.code_of)
        pool = TransactionPool(max_size=2)
        analysed_tx = tx(value=1, fee=1)
        pool.add(analysed_tx, builder.build(analysed_tx, db.latest))
        unanalysed = tx(value=2, fee=3)  # higher fee but no C-SAG yet
        pool.add(unanalysed)
        result = pool.add(tx(value=3, fee=9))
        assert result.evicted == unanalysed.tx_hash
        assert analysed_tx.tx_hash in pool
        assert pool.stats.evictions == 1
        assert pool.stats.evicted_analysed == 0

    def test_eviction_emits_obs_event_and_counts(self):
        bus = EventBus()
        pool = TransactionPool(max_size=1, obs=bus)
        pool.add(tx(value=1, fee=1))
        pool.add(tx(value=2, fee=2))
        events = [e for e in bus.events if type(e).__name__ == "MempoolEvicted"]
        assert len(events) == 1
        assert events[0].fee == 1
        assert events[0].reason == "capacity"
        assert pool.stats.evictions == 1

    def test_rejection_emits_obs_event(self):
        bus = EventBus()
        pool = TransactionPool(min_fee=10, obs=bus)
        pool.add(tx(fee=1))
        events = [e for e in bus.events if type(e).__name__ == "MempoolRejected"]
        assert len(events) == 1
        assert events[0].reason == UNDERPRICED

    def test_stats_accounting_totals(self):
        pool = TransactionPool(max_size=2, min_fee=2)
        pool.add(tx(value=1, fee=2))
        pool.add(tx(value=2, fee=3))
        pool.add(tx(value=3, fee=1))    # underpriced
        pool.add(tx(value=4, fee=9))    # evicts the fee-2 entry
        stats = pool.stats
        assert stats.received == 4
        assert stats.admitted == 3
        assert stats.evictions == 1
        assert stats.rejected_total == 1
        assert stats.as_dict()["rejected"] == {UNDERPRICED: 1}


class TestWatermarks:
    def test_watermark_signals(self):
        pool = TransactionPool(
            max_size=10, high_watermark=0.8, low_watermark=0.5,
        )
        for i in range(8):
            pool.add(tx(value=i + 1))
        assert pool.above_high
        assert not pool.below_low
        assert pool.saturation == pytest.approx(0.8)
        for _ in range(3):
            pool.take(1)
        assert not pool.above_high
        assert pool.below_low

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            TransactionPool(high_watermark=0.5, low_watermark=0.9)
        with pytest.raises(ValueError):
            TransactionPool(low_watermark=0.0)


class TestFeeOrderedPacking:
    def test_take_by_fee_highest_first(self):
        pool = TransactionPool()
        fees = [3, 9, 1, 7]
        for i, fee in enumerate(fees):
            pool.add(tx(value=i + 1, fee=fee))
        taken = pool.take_by_fee(3)
        assert [p.fee for p in taken] == [9, 7, 3]

    def test_fee_order_never_breaks_sender_nonce_order(self):
        pool = TransactionPool(nonce_tracking=True)
        # Alice's later nonce bids higher than her earlier one; Carol
        # outbids both.  Nonce order must win within a sender.
        pool.add(tx(sender=ALICE, nonce=0, fee=1, value=1))
        pool.add(tx(sender=ALICE, nonce=1, fee=50, value=2))
        pool.add(tx(sender=CAROL, nonce=0, fee=10, value=3))
        taken = pool.take_by_fee(3)
        order = [(p.tx.sender, p.tx.nonce) for p in taken]
        assert order.index((ALICE, 0)) < order.index((ALICE, 1))
        assert order[0] == (CAROL, 0)  # highest eligible head bid

    def test_gapped_nonce_parks_until_gap_fills(self):
        pool = TransactionPool(nonce_tracking=True)
        pool.add(tx(sender=ALICE, nonce=1, fee=99, value=1))
        assert pool.take_by_fee(5) == []     # nonce 0 missing: parked
        pool.add(tx(sender=ALICE, nonce=0, fee=1, value=2))
        taken = pool.take_by_fee(5)
        assert [p.tx.nonce for p in taken] == [0, 1]

    def test_fee_packer_returns_overflow_to_pool(self):
        pool = TransactionPool()
        for i in range(4):
            pool.add(tx(value=i + 1, fee=i))
        packer = Packer(max_txs=4, gas_limit=21_000, order="fee")
        packed = packer.pack(pool)
        assert len(packed) == 1
        assert packed[0].fee == 3
        assert len(pool) == 3             # overflow reinserted, not lost

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            Packer(order="price")


class TestFeePackingUnderLanePlanning:
    """Regression line for the Packer(order="fee") × LanePlanner
    interaction: lane planning may interleave lanes, but it must keep fee
    order stable *within* a lane and never reorder one sender's nonces —
    a fee-packed draft that goes through the planner still seals a
    nonce-valid block."""

    @staticmethod
    def _planned(pool, max_txs=16):
        from repro.analysis.csag import CSAG, PredictedAccess
        from repro.core import StateKey
        from repro.scheduling import LanePlanner

        packer = Packer(max_txs=max_txs, order="fee")
        pooled = packer.pack(pool)
        txs = [p.tx for p in pooled]
        # Synthetic C-SAGs: every tx writes its sender's value-keyed slot,
        # and same-value txs contend on a shared slot — enough structure
        # to force real lanes without running the EVM.
        csags = [
            CSAG(accesses=[
                PredictedAccess("write", StateKey(BOB, p.tx.value % 3), 0, 1),
            ])
            for p in pooled
        ]
        plan = LanePlanner().plan(txs, csags)
        return txs, plan

    def test_sender_nonces_monotone_in_planned_order(self):
        pool = TransactionPool(nonce_tracking=True)
        # Interleaved fees so fee packing shuffles senders aggressively.
        for nonce in range(4):
            pool.add(tx(sender=ALICE, nonce=nonce, fee=10 - nonce, value=nonce))
            pool.add(tx(sender=CAROL, nonce=nonce, fee=nonce, value=nonce + 1))
        txs, plan = self._planned(pool)
        planned = [txs[i] for i in plan.order]
        for sender in (ALICE, CAROL):
            nonces = [t.nonce for t in planned if t.sender == sender]
            assert nonces == sorted(nonces), (
                f"planner broke {sender} nonce order: {nonces}")

    def test_fee_order_stable_within_each_lane(self):
        pool = TransactionPool()
        for i, fee in enumerate([9, 3, 7, 1, 8, 2]):
            pool.add(tx(sender=Address.derive(f"fee-sender-{i}"),
                        fee=fee, value=i))
        txs, plan = self._planned(pool)
        # Packed order is fee-descending; within a lane the planner must
        # preserve packed (= fee) order.
        for lane in plan.lanes:
            fees = [txs[i].fee for i in lane]
            assert fees == sorted(fees, reverse=True), (
                f"lane reordered fees: {fees}")

    def test_planned_order_is_permutation_of_packed(self):
        pool = TransactionPool(nonce_tracking=True)
        for nonce in range(5):
            pool.add(tx(sender=ALICE, nonce=nonce, fee=nonce, value=nonce))
        txs, plan = self._planned(pool)
        assert sorted(plan.order) == list(range(len(txs)))


class TestTransactionFee:
    def test_fee_participates_in_hash(self):
        a = tx(fee=1)
        b = tx(fee=2)
        assert a.tx_hash != b.tx_hash

    def test_negative_fee_rejected(self):
        from repro.core.errors import InvalidTransaction

        with pytest.raises(InvalidTransaction):
            Transaction(ALICE, BOB, value=1, fee=-1)
