"""Property tests for the declared-operation merge algebra.

Everything the sharded commit path leans on is an algebraic law of
:class:`~repro.state.merge.MergeSpec`:

* folds are order-independent (commutative + associative) for every op;
* the cross-shard ``reduce`` of per-partition folds equals one global fold;
* bounds-guard outcomes are pure functions of (base, operand) — the same
  misdeclaration aborts identically on every executor and shard count;
* a merge-logged parallel execution is byte-identical to plain serial
  read-modify-write over the same block.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Address, StateKey
from repro.executors.dmvcc import DMVCCExecutor
from repro.executors.serial import SerialExecutor
from repro.state.merge import WORD, MergeOp, MergeRegistry, MergeSpec

WORDS = st.integers(min_value=0, max_value=WORD - 1)
SMALL_WORDS = st.integers(min_value=0, max_value=2**64)
OPERAND_LISTS = st.lists(SMALL_WORDS, min_size=0, max_size=12)
OPS = st.sampled_from(list(MergeOp))


def _spec(op: MergeOp) -> MergeSpec:
    # The common real declaration: balances bounded below at zero.
    lower = 0 if op in (MergeOp.ADD, MergeOp.SUB) else None
    return MergeSpec(op=op, lower=lower)


class TestFoldLaws:
    @given(op=OPS, base=WORDS, operands=OPERAND_LISTS,
           rng=st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_fold_order_invariant(self, op, base, operands, rng):
        """Any permutation of intent arrival order folds to the same value
        — the property that lets shards apply intents as they land."""
        spec = _spec(op)
        shuffled = list(operands)
        rng.shuffle(shuffled)
        assert spec.fold(base, operands) == spec.fold(base, shuffled)

    @given(op=OPS, base=WORDS, xs=OPERAND_LISTS, ys=OPERAND_LISTS)
    @settings(max_examples=120, deadline=None)
    def test_fold_associative(self, op, base, xs, ys):
        """Folding in two batches equals folding once — per-shard local
        folds can be applied incrementally."""
        spec = _spec(op)
        assert spec.fold(spec.fold(base, xs), ys) == spec.fold(base, xs + ys)

    @given(op=st.sampled_from([MergeOp.MAX, MergeOp.MIN, MergeOp.SET_INSERT]),
           base=WORDS, operands=OPERAND_LISTS)
    @settings(max_examples=80, deadline=None)
    def test_idempotent_ops_absorb_duplicates(self, op, base, operands):
        """Semilattice ops tolerate redelivered intents (a requeued
        cross-shard transaction must not double-apply)."""
        spec = _spec(op)
        doubled = operands + operands
        assert spec.fold(base, operands) == spec.fold(base, doubled)
        assert op.idempotent and not op.delta_encodable

    @given(op=OPS, base=WORDS, operands=OPERAND_LISTS,
           cuts=st.lists(st.integers(0, 12), min_size=0, max_size=3))
    @settings(max_examples=120, deadline=None)
    def test_reduce_of_partition_folds_is_global_fold(self, op, base,
                                                      operands, cuts):
        """Split the operands into per-shard partitions, fold each from the
        snapshot, then reduce the finals: the answer must equal one serial
        fold of everything — the seal-time cross-shard law."""
        spec = _spec(op)
        bounds = sorted({min(c, len(operands)) for c in cuts})
        parts, prev = [], 0
        for cut in bounds + [len(operands)]:
            parts.append(operands[prev:cut])
            prev = cut
        finals = [spec.fold(base, part) for part in parts if part]
        assert spec.reduce(base, finals) == spec.fold(base, operands)


class TestGuardOutcomes:
    @given(base=WORDS, operand=WORDS)
    @settings(max_examples=150, deadline=None)
    def test_sub_guard_matches_require(self, base, operand):
        """SUB with lower=0 is exactly Solidity's ``require(balance >=
        amount)``: underflow fails (never wraps), everything else passes."""
        spec = MergeSpec(op=MergeOp.SUB, lower=0)
        assert spec.outcome(base, operand) == (operand <= base)

    @given(op=OPS, base=WORDS, operand=SMALL_WORDS,
           lower=st.one_of(st.none(), SMALL_WORDS),
           upper=st.one_of(st.none(), SMALL_WORDS))
    @settings(max_examples=150, deadline=None)
    def test_outcome_deterministic_and_pure(self, op, base, operand,
                                            lower, upper):
        """The guard verdict is a pure function — two shards evaluating
        the same (base, operand) can never disagree — and a passing
        verdict always leaves the post-value in bounds."""
        spec = MergeSpec(op=op, lower=lower, upper=upper)
        first = spec.outcome(base, operand)
        assert first == spec.outcome(base, operand)
        if first:
            assert spec.in_bounds(spec.apply(base, operand))

    @given(base=WORDS, operands=OPERAND_LISTS)
    @settings(max_examples=80, deadline=None)
    def test_add_fold_is_modular_sum(self, base, operands):
        spec = MergeSpec(op=MergeOp.ADD)
        assert spec.fold(base, operands) == (base + sum(operands)) % WORD


# -- merge-logged execution vs plain read-modify-write ----------------------

_SMALL = dict(users=40, erc20_tokens=3, dex_pools=2, nft_collections=1,
              icos=1)


def _workload(seed: int):
    from repro.workload import Workload, scenario_config

    return Workload(scenario_config("airdrop_flood", seed=seed, **_SMALL))


class TestMergeLoggedParity:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None)
    def test_merge_logged_dmvcc_matches_rmw_serial(self, seed):
        """DMVCC with the workload's declared registry attached (merge
        intents, guard-outcome validation, delta commits) produces the
        same receipts, writes, and sealed root as plain serial RMW."""
        workload = _workload(seed)
        txs = workload.transactions(32)
        snapshot = workload.db.latest
        resolver = workload.db.codes.code_of

        serial = SerialExecutor().execute_block(txs, snapshot, resolver)
        dmvcc = DMVCCExecutor()
        dmvcc.attach_merges(workload.declared_merges())
        merged = dmvcc.execute_block(txs, snapshot, resolver, threads=8)

        assert [(r.result.status, r.result.gas_used, r.result.return_data,
                 r.result.error) for r in serial.receipts] == \
               [(r.result.status, r.result.gas_used, r.result.return_data,
                 r.result.error) for r in merged.receipts]
        assert serial.writes == merged.writes
        serial_root = workload.db.fork().commit(serial.writes).root_hash
        merged_root = workload.db.fork().commit(merged.writes).root_hash
        assert serial_root == merged_root

    def test_declared_registry_round_trips_json(self):
        registry = _workload(3).declared_merges()
        assert len(registry) > 0
        clone = MergeRegistry.from_json(registry.to_json())
        assert dict(iter(clone)) == dict(iter(registry))

    def test_wrong_declaration_is_callers_liability_docs_exist(self):
        """The generator's declaration helper documents the safety
        argument — a guard against someone blanket-declaring keys whose
        values feed derived storage addressing."""
        from repro.workload.generator import Workload

        doc = Workload.declared_merges.__doc__ or ""
        assert "balance" in doc.lower()
