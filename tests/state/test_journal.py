"""Write journal tests: buffering, checkpoints, read/write sets."""

import pytest

from repro.core import Address, StateKey
from repro.core.errors import StateError
from repro.state import OverlayReader, WriteJournal

CONTRACT = Address.derive("c")
K0 = StateKey(CONTRACT, 0)
K1 = StateKey(CONTRACT, 1)


def backing(values):
    return lambda key: values.get(key, 0)


class TestReadWrite:
    def test_read_through(self):
        journal = WriteJournal(backing({K0: 5}))
        assert journal.read(K0) == 5

    def test_write_shadows(self):
        journal = WriteJournal(backing({K0: 5}))
        journal.write(K0, 9)
        assert journal.read(K0) == 9

    def test_write_set_latest_wins(self):
        journal = WriteJournal(backing({}))
        journal.write(K0, 1)
        journal.write(K0, 2)
        assert journal.write_set == {K0: 2}

    def test_read_set_first_observation(self):
        journal = WriteJournal(backing({K0: 5}))
        journal.read(K0)
        journal.write(K0, 9)
        journal.read(K0)  # hits the buffer, not the backing store
        assert journal.read_set == {K0: 5}

    def test_read_set_excludes_buffer_hits(self):
        journal = WriteJournal(backing({}))
        journal.write(K0, 1)
        journal.read(K0)
        assert K0 not in journal.read_set

    def test_written(self):
        journal = WriteJournal(backing({}))
        assert not journal.written(K0)
        journal.write(K0, 1)
        assert journal.written(K0)


class TestCheckpoints:
    def test_revert_discards(self):
        journal = WriteJournal(backing({K0: 5}))
        token = journal.checkpoint()
        journal.write(K0, 9)
        journal.revert_to(token)
        assert journal.read(K0) == 5
        assert journal.write_set == {}

    def test_revert_keeps_outer_writes(self):
        journal = WriteJournal(backing({}))
        journal.write(K0, 1)
        token = journal.checkpoint()
        journal.write(K0, 2)
        journal.write(K1, 3)
        journal.revert_to(token)
        assert journal.write_set == {K0: 1}

    def test_commit_keeps_inner_writes(self):
        journal = WriteJournal(backing({}))
        token = journal.checkpoint()
        journal.write(K0, 7)
        journal.commit_checkpoint(token)
        assert journal.write_set == {K0: 7}

    def test_nested_checkpoints(self):
        journal = WriteJournal(backing({}))
        outer = journal.checkpoint()
        journal.write(K0, 1)
        inner = journal.checkpoint()
        journal.write(K0, 2)
        journal.revert_to(inner)
        assert journal.read(K0) == 1
        journal.commit_checkpoint(outer)
        assert journal.write_set == {K0: 1}

    def test_out_of_order_release_rejected(self):
        journal = WriteJournal(backing({}))
        outer = journal.checkpoint()
        journal.checkpoint()
        with pytest.raises(StateError):
            journal.commit_checkpoint(outer)

    def test_clear(self):
        journal = WriteJournal(backing({K0: 1}))
        journal.read(K0)
        journal.write(K1, 2)
        journal.clear()
        assert journal.write_set == {}
        assert journal.read_set == {}


class TestOverlayReader:
    def test_reads_base(self):
        overlay = OverlayReader(backing({K0: 3}))
        assert overlay.read(K0) == 3

    def test_apply_shadows(self):
        overlay = OverlayReader(backing({K0: 3}))
        overlay.apply({K0: 8})
        assert overlay.read(K0) == 8
        assert overlay(K0) == 8  # callable form

    def test_pending(self):
        overlay = OverlayReader(backing({}))
        overlay.apply({K0: 1})
        overlay.apply({K1: 2})
        assert overlay.pending == {K0: 1, K1: 2}
