"""StateDB and snapshot tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Address, StateKey
from repro.core.errors import StateError, UnknownSnapshotError
from repro.state import StateDB

ALICE = Address.derive("alice")
BOB = Address.derive("bob")
CONTRACT = Address.derive("contract")


class TestGenesis:
    def test_empty_genesis(self):
        db = StateDB()
        assert db.height == 0
        assert db.latest.get(StateKey.balance(ALICE)) == 0

    def test_seed_balances(self):
        db = StateDB()
        db.seed_genesis({ALICE: 100, BOB: 200})
        assert db.latest.balance_of(ALICE) == 100
        assert db.latest.balance_of(BOB) == 200

    def test_seed_storage(self):
        db = StateDB()
        key = StateKey(CONTRACT, 7)
        db.seed_genesis({}, {key: 42})
        assert db.latest.get(key) == 42

    def test_seed_zero_storage_pruned(self):
        db = StateDB()
        db.seed_genesis({}, {StateKey(CONTRACT, 7): 0})
        empty = StateDB()
        empty.seed_genesis({})
        assert db.latest.root_hash == empty.latest.root_hash

    def test_seed_after_commit_rejected(self):
        db = StateDB()
        db.commit({})
        with pytest.raises(StateError):
            db.seed_genesis({ALICE: 1})


class TestCommit:
    def test_commit_advances_height(self):
        db = StateDB()
        db.commit({StateKey(CONTRACT, 0): 1})
        assert db.height == 1

    def test_commit_applies_writes(self):
        db = StateDB()
        key = StateKey(CONTRACT, 0)
        db.commit({key: 99})
        assert db.latest.get(key) == 99

    def test_commit_zero_prunes(self):
        db = StateDB()
        key = StateKey(CONTRACT, 0)
        root0 = db.latest.root_hash
        db.commit({key: 5})
        db.commit({key: 0})
        assert db.latest.get(key) == 0
        assert db.latest.root_hash == root0

    def test_negative_value_rejected(self):
        db = StateDB()
        with pytest.raises(StateError):
            db.commit({StateKey(CONTRACT, 0): -1})

    def test_snapshots_immutable(self):
        db = StateDB()
        key = StateKey(CONTRACT, 0)
        db.commit({key: 1})
        old = db.snapshot(1)
        db.commit({key: 2})
        assert old.get(key) == 1
        assert db.latest.get(key) == 2

    def test_unknown_snapshot(self):
        db = StateDB()
        with pytest.raises(UnknownSnapshotError):
            db.snapshot(5)
        with pytest.raises(UnknownSnapshotError):
            db.snapshot(-1)

    def test_root_at(self):
        db = StateDB()
        root0 = db.root_at(0)
        db.commit({StateKey(CONTRACT, 0): 1})
        assert db.root_at(0) == root0
        assert db.root_at(1) != root0


class TestContracts:
    def test_deploy_and_resolve(self):
        db = StateDB()
        db.deploy_contract(CONTRACT, b"\x60\x00", "Test")
        assert db.codes.code_of(CONTRACT) == b"\x60\x00"
        assert db.codes.is_contract(CONTRACT)
        assert not db.codes.is_contract(ALICE)

    def test_double_deploy_rejected(self):
        db = StateDB()
        db.deploy_contract(CONTRACT, b"\x00")
        with pytest.raises(StateError):
            db.deploy_contract(CONTRACT, b"\x00")

    def test_empty_code_rejected(self):
        db = StateDB()
        with pytest.raises(StateError):
            db.deploy_contract(CONTRACT, b"")

    def test_account_summary(self):
        db = StateDB()
        db.deploy_contract(CONTRACT, b"\x00")
        db.seed_genesis({ALICE: 10}, {StateKey(CONTRACT, 3): 7})
        summary = db.account_summary(CONTRACT, slots=[3, 4])
        assert summary.is_contract
        assert summary.storage == {3: 7, 4: 0}
        assert db.account_summary(ALICE).balance == 10


class TestRootDeterminism:
    @given(
        st.dictionaries(
            st.integers(0, 50), st.integers(1, 2**64), min_size=1, max_size=20
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_one_commit_vs_many(self, writes):
        """Committing in one batch or one write per block yields the same
        final root (the trie is a pure function of contents)."""
        keyed = {StateKey(CONTRACT, slot): value for slot, value in writes.items()}
        db_batch = StateDB()
        db_batch.commit(keyed)
        db_steps = StateDB()
        for key, value in keyed.items():
            db_steps.commit({key: value})
        assert db_batch.latest.root_hash == db_steps.latest.root_hash
