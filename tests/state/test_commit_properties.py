"""Commit-pipeline properties: canonical roots, zero-write pruning, the
overlay/legacy differential, the flat read cache, and commit observability.

The ``commit`` docstring has always claimed the sealed root is canonical —
independent of write order, with zero-valued slots pruned; these tests pin
that claim down for both commit paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Address, StateKey
from repro.obs import CommitSealed, CommitStarted, EventBus
from repro.state import StateDB
from repro.state.statedb import FLAT_LRU_SIZE

CONTRACT = Address.derive("props-contract")
OTHER = Address.derive("props-other")

WRITE_BATCHES = st.dictionaries(
    st.integers(0, 400), st.integers(0, 2**64), min_size=0, max_size=40
).map(lambda d: {StateKey(CONTRACT, slot): value for slot, value in d.items()})


class TestCanonicalRoots:
    @given(WRITE_BATCHES)
    @settings(max_examples=60, deadline=None)
    def test_zero_writes_prune_slots(self, writes):
        """A batch containing zeros seals the same root as the batch with
        those keys never written at all, and the zero slots are truly gone
        from the authenticated contents."""
        with_zeros = StateDB()
        with_zeros.commit(writes)
        without = StateDB()
        without.commit({k: v for k, v in writes.items() if v})
        assert with_zeros.latest.root_hash == without.latest.root_hash
        committed_keys = {key for key, _ in with_zeros.latest.items()}
        for key, value in writes.items():
            if value == 0:
                assert key.trie_key() not in committed_keys
            else:
                assert key.trie_key() in committed_keys

    @given(WRITE_BATCHES, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_commit_order_never_changes_root(self, writes, rng):
        """The same batch presented in any iteration order — and under
        either commit path — seals the same root."""
        items = list(writes.items())
        rng.shuffle(items)
        overlay_sorted = StateDB()
        overlay_sorted.commit(writes)
        overlay_shuffled = StateDB()
        overlay_shuffled.commit(dict(items))
        legacy = StateDB()
        legacy.commit(dict(items), legacy=True)
        assert (
            overlay_sorted.latest.root_hash
            == overlay_shuffled.latest.root_hash
            == legacy.latest.root_hash
        )

    @given(st.lists(WRITE_BATCHES, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_overlay_equals_legacy_across_chain(self, batches):
        """Differential: a chain of commits through the overlay matches the
        legacy per-key path block for block, byte for byte."""
        overlay_db, legacy_db = StateDB(), StateDB()
        for batch in batches:
            overlay_db.commit(batch)
            legacy_db.commit(batch, legacy=True)
            assert overlay_db.latest.root_hash == legacy_db.latest.root_hash

    def test_zero_only_batch_restores_prior_root(self):
        db = StateDB()
        root0 = db.latest.root_hash
        key = StateKey(CONTRACT, 1)
        db.commit({key: 7})
        db.commit({key: 0})
        assert db.latest.root_hash == root0
        assert db.latest.get(key) == 0


class TestFlatReadCache:
    def test_committed_writes_are_flat_hits(self):
        db = StateDB()
        key = StateKey(CONTRACT, 3)
        db.commit({key: 11})
        snap = db.latest
        assert snap.get(key) == 11
        assert snap.flat_hits == 1 and snap.flat_misses == 0

    def test_flat_layer_inherited_across_commits(self):
        db = StateDB()
        old = StateKey(CONTRACT, 1)
        db.commit({old: 5})
        db.commit({StateKey(CONTRACT, 2): 6})
        snap = db.latest
        assert snap.get(old) == 5
        assert snap.flat_hits == 1  # served by the inherited flat layer

    def test_zero_write_reads_zero_through_flat(self):
        db = StateDB()
        key = StateKey(CONTRACT, 9)
        db.commit({key: 4})
        db.commit({key: 0})
        snap = db.latest
        assert snap.get(key) == 0
        assert snap.flat_hits == 1

    def test_cold_key_misses_then_lru_hits(self):
        db = StateDB()
        db.seed_genesis({}, {StateKey(OTHER, 5): 42})
        db.commit({StateKey(CONTRACT, 0): 1})
        # A snapshot adopted bare from the trie has an empty flat layer, so
        # the first read is a genuine cold miss and the repeat hits the LRU.
        from repro.state.statedb import Snapshot

        snap = Snapshot(db.latest._trie, db.height)
        key = StateKey(OTHER, 5)
        assert snap.get(key) == 42
        assert snap.flat_misses == 1
        assert snap.get(key) == 42
        assert snap.flat_hits == 1  # LRU served the repeat

    def test_lru_is_bounded(self):
        from repro.state.statedb import Snapshot

        db = StateDB()
        db.commit({StateKey(CONTRACT, s): s + 1 for s in range(10)})
        snap = Snapshot(db.latest._trie, db.height)
        for s in range(FLAT_LRU_SIZE + 50):
            snap.get(StateKey(CONTRACT, s))
        assert len(snap._lru) <= FLAT_LRU_SIZE

    def test_cached_reads_match_uncached(self):
        db = StateDB()
        writes = {StateKey(CONTRACT, s): (s * 7) % 5 for s in range(30)}
        db.commit(writes)
        snap = db.latest
        for key in writes:
            assert snap.get(key) == snap.get_uncached(key)


class TestCommitReporting:
    def test_report_fields(self):
        db = StateDB()
        db.commit({StateKey(CONTRACT, 0): 1, StateKey(CONTRACT, 1): 0})
        report = db.last_commit
        assert report.height == 1
        assert report.writes == 1 and report.deletes == 1
        assert report.nodes_sealed >= 1
        assert report.hashes_computed == report.nodes_sealed
        assert report.wall_time >= 0.0
        assert report.root == db.latest.root_hash
        assert not report.legacy

    def test_legacy_report_flagged_and_costlier(self):
        writes = {StateKey(CONTRACT, s): s + 1 for s in range(100)}
        overlay_db, legacy_db = StateDB(), StateDB()
        overlay_db.commit(writes)
        legacy_db.commit(writes, legacy=True)
        assert legacy_db.last_commit.legacy
        assert (
            overlay_db.last_commit.hashes_computed * 3
            <= legacy_db.last_commit.hashes_computed
        )

    def test_commit_events_emitted(self):
        db = StateDB()
        bus = EventBus()
        db.obs = bus
        db.commit({StateKey(CONTRACT, 0): 1})
        started = bus.of_type(CommitStarted)
        sealed = bus.of_type(CommitSealed)
        assert len(started) == 1 and len(sealed) == 1
        assert started[0].height == sealed[0].height == 1
        assert sealed[0].nodes_sealed >= 1
        assert sealed[0].seq > started[0].seq

    def test_negative_value_rejected_before_any_mutation(self):
        from repro.core.errors import StateError

        db = StateDB()
        before = db.latest.root_hash
        with pytest.raises(StateError):
            db.commit({StateKey(CONTRACT, 0): 5, StateKey(CONTRACT, 1): -1})
        assert db.height == 0
        assert db.latest.root_hash == before
