"""Discrete-event loop tests."""

import pytest

from repro.core.errors import SchedulingError
from repro.sim import EventLoop, gas_to_time


class TestEventLoop:
    def test_time_ordered(self):
        loop = EventLoop()
        order = []
        loop.schedule(5.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(9.0, lambda: order.append("c"))
        end = loop.run()
        assert order == ["a", "b", "c"]
        assert end == 9.0

    def test_fifo_tie_break(self):
        loop = EventLoop()
        order = []
        for name in "abc":
            loop.schedule(1.0, lambda n=name: order.append(n))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [3.0]

    def test_callbacks_can_schedule(self):
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule(loop.now + 1, lambda: order.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert order == ["first", "second"]

    def test_schedule_now_inside_callback(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: loop.schedule_now(lambda: order.append(loop.now)))
        loop.run()
        assert order == [2.0]

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: loop.schedule(1.0, lambda: None))
        with pytest.raises(SchedulingError):
            loop.run()

    def test_cancellation(self):
        loop = EventLoop()
        fired = []
        entry = loop.schedule(1.0, lambda: fired.append(1))
        loop.cancel(entry)
        loop.run()
        assert not fired

    def test_len_skips_cancelled(self):
        loop = EventLoop()
        entry = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.cancel(entry)
        assert len(loop) == 1

    def test_livelock_guard(self):
        loop = EventLoop()

        def rearm():
            loop.schedule_now(rearm)

        loop.schedule_now(rearm)
        with pytest.raises(SchedulingError):
            loop.run(max_events=100)

    def test_empty_run(self):
        assert EventLoop().run() == 0.0


class TestGasTime:
    def test_default_scale(self):
        assert gas_to_time(1_000) == 1_000.0

    def test_custom_scale(self):
        assert gas_to_time(1_000, scale=0.5) == 500.0
