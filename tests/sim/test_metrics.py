"""Metrics aggregation tests."""

import pytest

from repro.sim import BlockMetrics, TxMetrics, aggregate


def block(scheduler="x", threads=4, makespan=100.0, serial=400.0,
          executions=10, aborts=2, utilisation=0.5, txs=8):
    metrics = BlockMetrics(scheduler=scheduler, threads=threads)
    metrics.tx_count = txs
    metrics.makespan = makespan
    metrics.serial_time = serial
    metrics.executions = executions
    metrics.aborts = aborts
    metrics.utilisation = utilisation
    return metrics


class TestBlockMetrics:
    def test_speedup(self):
        assert block(makespan=100, serial=400).speedup == 4.0

    def test_speedup_zero_makespan(self):
        assert block(makespan=0, serial=0).speedup == 1.0

    def test_abort_rate(self):
        assert block(executions=10, aborts=2).abort_rate == 0.2

    def test_abort_rate_no_executions(self):
        assert block(executions=0, aborts=0).abort_rate == 0.0

    def test_summary_contains_fields(self):
        text = block().summary()
        assert "threads=4" in text
        assert "speedup" in text

    def test_tx_metrics_latency(self):
        tx = TxMetrics(index=0, start_time=5.0, end_time=12.5)
        assert tx.latency == 7.5


class TestAggregate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_totals_sum(self):
        total = aggregate([
            block(makespan=100, serial=300, executions=5, aborts=1, txs=4),
            block(makespan=50, serial=200, executions=6, aborts=2, txs=5),
        ])
        assert total.makespan == 150
        assert total.serial_time == 500
        assert total.tx_count == 9
        assert total.executions == 11
        assert total.aborts == 3

    def test_speedup_is_work_weighted(self):
        """Aggregate speedup = total serial time / total makespan, not the
        mean of per-block speedups."""
        total = aggregate([
            block(makespan=100, serial=100),  # 1x
            block(makespan=10, serial=90),    # 9x
        ])
        assert total.speedup == pytest.approx(190 / 110)

    def test_utilisation_weighted_by_busy_time(self):
        total = aggregate([
            block(makespan=100, utilisation=1.0, threads=4),
            block(makespan=100, utilisation=0.0, threads=4),
        ])
        assert total.utilisation == pytest.approx(0.5)
