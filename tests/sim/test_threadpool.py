"""Simulated thread pool tests."""

import pytest

from repro.core.errors import SchedulingError
from repro.sim import ThreadPool


class TestOccupancy:
    def test_size_validated(self):
        with pytest.raises(SchedulingError):
            ThreadPool(0)

    def test_occupy_until_exhausted(self):
        pool = ThreadPool(2)
        assert pool.try_occupy(0.0) is not None
        assert pool.try_occupy(0.0) is not None
        assert pool.try_occupy(0.0) is None

    def test_release_recycles(self):
        pool = ThreadPool(1)
        thread = pool.try_occupy(0.0)
        pool.release(thread, 5.0)
        assert pool.try_occupy(5.0) is not None

    def test_release_idle_rejected(self):
        pool = ThreadPool(1)
        with pytest.raises(SchedulingError):
            pool.release(0, 1.0)

    def test_idle_count(self):
        pool = ThreadPool(3)
        pool.try_occupy(0.0)
        assert pool.idle_count == 2


class TestMetrics:
    def test_busy_time_accumulates(self):
        pool = ThreadPool(2)
        a = pool.try_occupy(0.0, label="A")
        b = pool.try_occupy(0.0, label="B")
        pool.release(a, 10.0)
        pool.release(b, 4.0)
        assert pool.busy_time() == 14.0

    def test_utilisation(self):
        pool = ThreadPool(2)
        a = pool.try_occupy(0.0)
        pool.release(a, 10.0)
        assert pool.utilisation(makespan=10.0) == pytest.approx(0.5)

    def test_utilisation_zero_makespan(self):
        assert ThreadPool(2).utilisation(0.0) == 0.0

    def test_gantt_structure(self):
        pool = ThreadPool(2)
        a = pool.try_occupy(0.0, label="T1")
        pool.release(a, 3.0)
        b = pool.try_occupy(3.0, label="T2")
        pool.release(b, 7.0)
        chart = pool.gantt()
        assert set(chart) == {0, 1}
        flattened = [entry for intervals in chart.values() for entry in intervals]
        assert ("T1" in {e[2] for e in flattened})
        assert ("T2" in {e[2] for e in flattened})

    def test_gantt_empty_pool(self):
        chart = ThreadPool(2).gantt()
        assert chart == {0: [], 1: []}

    def test_busy_time_zero_length_interval(self):
        pool = ThreadPool(1)
        a = pool.try_occupy(4.0)
        pool.release(a, 4.0)
        assert pool.busy_time() == 0.0
        assert pool.utilisation(makespan=0.0) == 0.0


class TestObservability:
    def test_occupancy_events_emitted(self):
        from repro.obs.events import EventBus, ThreadOccupied, ThreadReleased

        bus = EventBus()
        pool = ThreadPool(2, obs=bus)
        a = pool.try_occupy(1.0, label="T7")
        pool.release(a, 5.0)
        occupied = bus.of_type(ThreadOccupied)
        released = bus.of_type(ThreadReleased)
        assert len(occupied) == 1 and occupied[0].label == "T7"
        assert occupied[0].ts == 1.0 and occupied[0].thread == a
        assert len(released) == 1 and released[0].ts == 5.0

    def test_exhausted_pool_emits_nothing(self):
        from repro.obs.events import EventBus

        bus = EventBus()
        pool = ThreadPool(1, obs=bus)
        pool.try_occupy(0.0)
        assert pool.try_occupy(0.0) is None
        assert len(bus) == 1  # only the successful occupation

    def test_failed_release_emits_nothing(self):
        from repro.obs.events import EventBus

        bus = EventBus()
        pool = ThreadPool(1, obs=bus)
        with pytest.raises(SchedulingError):
            pool.release(0, 1.0)
        assert len(bus) == 0
