"""Event bus tests: ordering, typed queries, and the disabled path."""

from repro.core.types import Address, StateKey
from repro.obs.events import (
    NULL_BUS,
    EventBus,
    LockAcquire,
    NullSink,
    TxAbort,
    TxStart,
    UNKNOWN_WRITER,
)

ADDR = Address.derive("obs-test")
KEY = StateKey(ADDR, 1)


class TestEventBus:
    def test_sequence_numbers_total_order(self):
        bus = EventBus()
        bus.tx_ready(5.0, 1)
        bus.tx_start(3.0, 0)  # out-of-ts-order emission is allowed
        bus.tx_end(9.0, 1)
        seqs = [e.seq for e in bus.events]
        assert seqs == [0, 1, 2]
        assert [type(e).__name__ for e in bus.events] == [
            "TxReady", "TxStart", "TxEnd",
        ]

    def test_of_type_and_of_tx(self):
        bus = EventBus()
        bus.tx_start(0.0, 0, thread=2)
        bus.tx_start(1.0, 1, thread=3)
        bus.lock_acquire(2.0, 1, KEY)
        assert [e.tx for e in bus.of_type(TxStart)] == [0, 1]
        assert [type(e) for e in bus.of_tx(1)] == [TxStart, LockAcquire]

    def test_abort_carries_attribution_triple(self):
        bus = EventBus()
        bus.tx_abort(7.0, 4, attempt=2, key=KEY, writer=1)
        (abort,) = bus.of_type(TxAbort)
        assert (abort.tx, abort.writer, abort.key) == (4, 1, KEY)
        bus.tx_abort(8.0, 5)
        assert bus.of_type(TxAbort)[1].writer == UNKNOWN_WRITER

    def test_clear_resets_sequence(self):
        bus = EventBus()
        bus.tx_ready(0.0, 0)
        bus.clear()
        assert len(bus) == 0
        bus.tx_ready(1.0, 1)
        assert bus.events[0].seq == 0

    def test_summary_counts_types(self):
        bus = EventBus()
        bus.tx_ready(0.0, 0)
        bus.tx_ready(0.0, 1)
        bus.tx_start(0.0, 0)
        assert "TxReady=2" in bus.summary()
        assert "TxStart=1" in bus.summary()


class TestNullSink:
    def test_every_emit_is_a_noop(self):
        sink = NullSink()
        sink.block_start(0.0, "x", 1, 1)
        sink.tx_abort(1.0, 0, key=KEY, writer=2)
        sink.commutative_merge(2.0, 0, KEY, 5)
        assert len(sink) == 0
        assert sink.enabled is False
        assert NULL_BUS.enabled is False

    def test_disabled_tracing_does_not_perturb_the_schedule(self):
        """DMVCC with a live bus must produce the identical schedule and
        write set as with tracing off — observation must not interfere."""
        from repro.executors.dmvcc import DMVCCExecutor
        from repro.workload.generator import Workload, WorkloadConfig

        config = WorkloadConfig(users=10, erc20_tokens=1, dex_pools=1,
                                nft_collections=1, icos=1, seed=11)

        def run(obs):
            workload = Workload(config)
            txs = workload.transactions(16)
            executor = DMVCCExecutor()
            if obs is not None:
                executor.attach_obs(obs)
            return executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of, threads=4
            )

        plain = run(None)
        bus = EventBus()
        traced = run(bus)
        assert traced.writes == plain.writes
        assert traced.metrics.makespan == plain.metrics.makespan
        assert traced.metrics.aborts == plain.metrics.aborts
        assert len(bus) > 0
