"""Timeline reconstruction tests: span pairing, decomposition, critical path."""

from repro.core.types import Address, StateKey
from repro.obs.events import EventBus
from repro.obs.timeline import (
    EXEC,
    LOCK_WAIT,
    QUEUE_WAIT,
    VERSION_WAIT,
    build_timeline,
    format_breakdown,
)

ADDR = Address.derive("timeline-test")
KEY = StateKey(ADDR, 7)


def _spans(timeline, tx, category):
    return [s for s in timeline.txs[tx].spans if s.category == category]


class TestSpanPairing:
    def test_ready_start_end_yields_queue_and_exec(self):
        bus = EventBus()
        bus.block_start(0.0, "test", threads=2, tx_count=1)
        bus.tx_ready(0.0, 0)
        bus.tx_start(3.0, 0, thread=1)
        bus.tx_end(10.0, 0, gas_used=7)
        bus.block_end(10.0, makespan=10.0)
        timeline = build_timeline(bus)
        (queue,) = _spans(timeline, 0, QUEUE_WAIT)
        (execution,) = _spans(timeline, 0, EXEC)
        assert (queue.start, queue.end) == (0.0, 3.0)
        assert (execution.start, execution.end) == (3.0, 10.0)
        assert execution.thread == 1
        assert timeline.makespan == 10.0
        assert timeline.scheduler == "test"

    def test_abort_closes_exec_with_note(self):
        bus = EventBus()
        bus.tx_start(0.0, 0)
        bus.tx_abort(4.0, 0, key=KEY, writer=3)
        timeline = build_timeline(bus)
        (execution,) = _spans(timeline, 0, EXEC)
        assert execution.note == "aborted"
        assert execution.end == 4.0
        assert timeline.txs[0].aborts == 1

    def test_version_wait_records_keys_and_cause(self):
        bus = EventBus()
        bus.version_wait_begin(1.0, 2, keys=(KEY,), blockers=(0,))
        bus.version_wait_end(6.0, 2, key=KEY, granted_by=0)
        timeline = build_timeline(bus)
        (wait,) = _spans(timeline, 2, VERSION_WAIT)
        assert wait.keys == (KEY,)
        assert wait.cause == 0
        assert wait.duration == 5.0

    def test_lock_wait_cause_is_last_holder(self):
        bus = EventBus()
        bus.lock_wait_begin(0.0, 3, holders=(0, 2))
        bus.lock_wait_end(8.0, 3)
        timeline = build_timeline(bus)
        (wait,) = _spans(timeline, 3, LOCK_WAIT)
        assert wait.cause == 2

    def test_unmatched_end_is_ignored(self):
        bus = EventBus()
        bus.tx_end(5.0, 0)
        bus.version_wait_end(5.0, 1)
        timeline = build_timeline(bus)
        assert _spans(timeline, 0, EXEC) == []

    def test_open_spans_closed_at_stream_end(self):
        bus = EventBus()
        bus.tx_start(2.0, 0)
        bus.tx_ready(0.0, 1)
        bus.block_end(9.0, makespan=9.0)
        timeline = build_timeline(bus)
        (execution,) = _spans(timeline, 0, EXEC)
        assert execution.end == 9.0 and execution.note == "unterminated"
        (queue,) = _spans(timeline, 1, QUEUE_WAIT)
        assert queue.end == 9.0


class TestDecomposition:
    def _two_tx_bus(self):
        bus = EventBus()
        bus.block_start(0.0, "demo", threads=1, tx_count=2)
        bus.tx_ready(0.0, 0)
        bus.tx_start(0.0, 0, thread=0)
        bus.tx_end(10.0, 0)
        bus.version_wait_begin(0.0, 1, keys=(KEY,), blockers=(0,))
        bus.version_wait_end(10.0, 1, key=KEY, granted_by=0)
        bus.tx_ready(10.0, 1)
        bus.tx_start(10.0, 1, thread=0)
        bus.tx_end(14.0, 1)
        bus.block_end(14.0, makespan=14.0)
        return bus

    def test_breakdown_totals(self):
        timeline = build_timeline(self._two_tx_bus())
        totals = timeline.breakdown()
        assert totals[EXEC] == 14.0
        assert totals[VERSION_WAIT] == 10.0
        assert totals[QUEUE_WAIT] == 0.0
        text = format_breakdown(timeline)
        assert "version-wait=10" in text

    def test_gantt_matches_threadpool_shape(self):
        timeline = build_timeline(self._two_tx_bus())
        chart = timeline.gantt()
        assert list(chart) == [0]
        assert [label for _s, _e, label in chart[0]] == ["T0", "T1"]

    def test_critical_path_follows_version_wait(self):
        timeline = build_timeline(self._two_tx_bus())
        path = timeline.critical_path()
        assert [step.tx for step in path] == [0, 1]
        assert "version-wait" in path[-1].via
        assert path[-1].via_tx == 0

    def test_critical_path_follows_queue_wait(self):
        bus = EventBus()
        bus.block_start(0.0, "q", threads=1, tx_count=2)
        bus.tx_ready(0.0, 0)
        bus.tx_start(0.0, 0, thread=0)
        bus.tx_ready(0.0, 1)
        bus.tx_end(6.0, 0)
        bus.tx_start(6.0, 1, thread=0)
        bus.tx_end(9.0, 1)
        bus.block_end(9.0, makespan=9.0)
        timeline = build_timeline(bus)
        path = timeline.critical_path()
        assert [step.tx for step in path] == [0, 1]
        assert "queue-wait behind T0" in path[-1].via

    def test_empty_bus(self):
        timeline = build_timeline(EventBus())
        assert timeline.txs == {}
        assert timeline.critical_path() == []
        assert timeline.breakdown()[EXEC] == 0.0
