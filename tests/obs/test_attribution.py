"""Abort attribution tests: records, contention ranking, rendering."""

from repro.core.types import Address, StateKey
from repro.obs.attribution import AbortAttribution, format_key
from repro.obs.events import EventBus

ADDR_A = Address.derive("attr-a")
ADDR_B = Address.derive("attr-b")
HOT = StateKey(ADDR_A, 0)
COLD = StateKey(ADDR_B, 5)


def _contended_bus():
    bus = EventBus()
    bus.tx_abort(10.0, 3, attempt=1, key=HOT, writer=1)
    bus.tx_abort(20.0, 4, attempt=1, key=HOT, writer=1)
    bus.tx_abort(30.0, 3, attempt=2, key=HOT, writer=2)
    bus.tx_abort(40.0, 5, attempt=1, key=COLD, writer=0)
    bus.version_wait_begin(0.0, 6, keys=(HOT,), blockers=(1,))
    bus.version_wait_end(25.0, 6, key=HOT, granted_by=1)
    bus.early_read(12.0, 7, HOT, writer=1)
    bus.commutative_merge(13.0, 8, COLD, delta=4)
    return bus


class TestAttribution:
    def test_abort_records(self):
        attribution = AbortAttribution.from_events(_contended_bus().events)
        assert attribution.abort_count == 4
        first = attribution.aborts[0]
        assert (first.reader, first.writer, first.key) == (3, 1, HOT)

    def test_hot_key_ranking(self):
        attribution = AbortAttribution.from_events(_contended_bus().events)
        hot = attribution.hot_keys(top=5)
        assert hot[0].key == HOT
        assert hot[0].aborts == 3
        assert hot[0].wait_time == 25.0
        assert hot[0].early_reads == 1
        assert hot[0].writers == {1, 2}
        assert hot[1].key == COLD
        assert hot[1].merges == 1

    def test_pairs_counts_edges(self):
        attribution = AbortAttribution.from_events(_contended_bus().events)
        pairs = attribution.pairs()
        assert pairs[0][3] == 1  # all edges distinct here
        assert (1, 3, HOT, 1) in pairs
        assert (2, 3, HOT, 1) in pairs

    def test_unclosed_wait_finishes_at_stream_end(self):
        attribution = AbortAttribution()
        bus = EventBus()
        bus.version_wait_begin(5.0, 0, keys=(HOT,), blockers=(9,))
        bus.tx_abort(15.0, 0, key=HOT, writer=9)
        for event in bus.events:
            attribution.feed(event)
        attribution.finish()
        assert attribution.contention[HOT].wait_time == 10.0

    def test_format_table_names_keys(self):
        attribution = AbortAttribution.from_events(_contended_bus().events)
        text = attribution.format_table(name_of=lambda a: "Hot" if a == ADDR_A else None)
        assert "Hot[0x0]" in text
        assert "4 abort(s)" in text
        assert "T1" in text  # writer named

    def test_empty_table(self):
        text = AbortAttribution().format_table()
        assert "(no contention recorded)" in text


class TestFormatKey:
    def test_balance_nonce_and_slot(self):
        name_of = lambda a: "ERC20-1"  # noqa: E731
        assert format_key(StateKey.balance(ADDR_A), name_of) == "ERC20-1.balance"
        assert format_key(StateKey(ADDR_A, 0x1F), name_of) == "ERC20-1[0x1f]"

    def test_unnamed_address_shortened(self):
        text = format_key(StateKey(ADDR_A, 1))
        assert "…" in text and text.endswith("[0x1]")
