"""Chrome trace export and ASCII Gantt tests."""

import json

from repro.core.types import Address, StateKey
from repro.obs.events import EventBus
from repro.obs.export import (
    WAIT_LANE_BASE,
    build_chrome_trace,
    chrome_trace_events,
    render_gantt_ascii,
)
from repro.obs.timeline import build_timeline

ADDR = Address.derive("export-test")
KEY = StateKey(ADDR, 3)


def _traced_bus():
    bus = EventBus()
    bus.block_start(0.0, "demo", threads=2, tx_count=2)
    bus.tx_ready(0.0, 0)
    bus.tx_start(0.0, 0, thread=0)
    bus.early_read(2.0, 1, KEY, writer=0)
    bus.tx_end(5.0, 0, gas_used=5)
    bus.version_wait_begin(0.0, 1, keys=(KEY,), blockers=(0,))
    bus.version_wait_end(5.0, 1, key=KEY, granted_by=0)
    bus.tx_start(5.0, 1, thread=1)
    bus.tx_abort(7.0, 1, key=KEY, writer=0)
    bus.block_end(7.0, makespan=7.0)
    return bus


class TestChromeTrace:
    def test_events_are_well_formed(self):
        timeline = build_timeline(_traced_bus())
        events = chrome_trace_events(timeline, pid=3)
        assert all(e["pid"] == 3 for e in events)
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert "ts" in event and "tid" in event

    def test_exec_spans_on_thread_lanes_waits_on_tx_lanes(self):
        timeline = build_timeline(_traced_bus())
        events = chrome_trace_events(timeline)
        spans = [e for e in events if e["ph"] == "X"]
        exec_tids = {e["tid"] for e in spans if e["cat"] == "exec"}
        wait_tids = {e["tid"] for e in spans if e["cat"] != "exec"}
        assert exec_tids <= {0, 1}
        assert all(tid >= WAIT_LANE_BASE for tid in wait_tids)

    def test_instant_markers_for_protocol_moments(self):
        timeline = build_timeline(_traced_bus())
        events = chrome_trace_events(timeline)
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert "abort T1" in instants
        assert "early-read T0→T1" in instants

    def test_document_is_json_serialisable(self):
        timeline = build_timeline(_traced_bus())
        document = build_chrome_trace(
            [("a", timeline, 0.0), ("b", timeline, 100.0)],
            metadata={"note": "test"},
        )
        text = json.dumps(document)
        parsed = json.loads(text)
        assert parsed["otherData"]["note"] == "test"
        pids = {e["pid"] for e in parsed["traceEvents"]}
        assert pids == {0, 1}

    def test_ts_offset_shifts_section(self):
        timeline = build_timeline(_traced_bus())
        shifted = chrome_trace_events(timeline, ts_offset=100.0)
        spans = [e for e in shifted if e["ph"] == "X"]
        assert min(e["ts"] for e in spans) >= 100.0


class TestAsciiGantt:
    def test_empty_chart(self):
        assert "(empty schedule)" in render_gantt_ascii({0: []}, 0.0)

    def test_labels_rendered(self):
        chart = {0: [(0.0, 50.0, "T0")], 1: [(10.0, 90.0, "T1")]}
        text = render_gantt_ascii(chart, makespan=100.0, width=40)
        assert "T0" in text and "T1" in text
        assert "t0 " in text and "t1 " in text

    def test_thread_cap(self):
        chart = {t: [(0.0, 10.0, f"T{t}")] for t in range(20)}
        text = render_gantt_ascii(chart, makespan=10.0, max_threads=4)
        assert "more threads" in text
