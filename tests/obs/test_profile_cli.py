"""End-to-end tests for ``repro profile`` and the verify artifact writer."""

import json
import os

from repro.__main__ import _write_verify_artifacts, main
from repro.executors.dmvcc import DMVCCExecutor
from repro.obs.profile import run_profile
from repro.verify.fuzz import DifferentialFuzzer


class TestRunProfile:
    def test_small_profile_covers_all_schedulers(self):
        report = run_profile(
            blocks=1, txs_per_block=16, threads=4,
            config_overrides=dict(users=20, erc20_tokens=2, dex_pools=1,
                                  nft_collections=1, icos=1),
        )
        assert report.correctness_ok
        assert [s.scheduler for s in report.sections] == [
            "serial", "dag", "occ", "dmvcc",
        ]
        assert all(s.matches_serial for s in report.sections)
        assert report.trace["traceEvents"]
        assert set(report.attributions) == {"dag", "occ", "dmvcc"}
        rendered = report.render(top=5)
        assert "wait-time decomposition" in rendered
        assert "correctness (write-set match vs serial): OK" in rendered

    def test_unknown_scheduler_rejected(self):
        try:
            run_profile(schedulers=("serial", "bogus"))
        except ValueError as error:
            assert "bogus" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestProfileCLI:
    def test_cli_writes_perfetto_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "--users", "20", "--tokens", "2", "--pools", "1", "--nfts", "1",
            "profile", "--blocks", "1", "--txs", "12", "--workers", "2",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "wait-time decomposition" in captured
        assert "trace written to" in captured
        document = json.loads(out.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]
        assert all("ph" in e and "pid" in e for e in document["traceEvents"])
        assert document["otherData"]["blocks"] == 1


class _BrokenDMVCC(DMVCCExecutor):
    """A deliberately wrong executor: corrupts one committed write so the
    differential fuzzer reports a divergence we can export artifacts for."""

    def execute_block(self, *args, **kwargs):
        execution = super().execute_block(*args, **kwargs)
        if execution.writes:
            key = next(iter(sorted(execution.writes)))
            execution.writes[key] += 7_777
        return execution


class TestVerifyArtifacts:
    def test_clean_run_writes_oracle_report_only(self, tmp_path):
        fuzzer = DifferentialFuzzer(txs_per_block=6, minimize=False)
        report = fuzzer.run(blocks=1)
        _write_verify_artifacts(str(tmp_path), fuzzer, report)
        assert (tmp_path / "oracle_report.txt").exists()
        assert not list(tmp_path.glob("trace_seed*.json"))

    def test_divergence_exports_replay_trace(self, tmp_path):
        fuzzer = DifferentialFuzzer(
            factories={"broken": _BrokenDMVCC},
            txs_per_block=8, minimize=False,
        )
        report = fuzzer.run(blocks=1)
        assert not report.ok
        _write_verify_artifacts(str(tmp_path), fuzzer, report)
        oracle = (tmp_path / "oracle_report.txt").read_text()
        assert "DIVERGED" in oracle
        traces = list(tmp_path.glob("trace_seed*_broken.json"))
        assert traces
        document = json.loads(traces[0].read_text())
        assert document["traceEvents"]
        assert document["otherData"]["scheduler"] == "broken"
