"""PipelinedValidator: determinism, replay parity, and stage overlap.

The pipeline's correctness claim is that overlapping stages never changes
*what* is produced, only *when*: a pipelined run must seal byte-identical
blocks to a strictly-sequential run of the same stream, and any ordinary
``Validator`` must be able to re-import the sealed blocks with root
verification on.  The stage-overlap property pins the speculation contract:
every execute stage sees the sealed base plus the in-flight write sets and
nothing else — covering exactly heights ``1..height-1``.
"""

import pytest

from repro.chain import Packer, Validator
from repro.executors import DMVCCExecutor
from repro.pipeline import PipelinedValidator, WorkloadStream
from repro.workload import Workload, scenario_config

SMALL = dict(users=24, erc20_tokens=2, dex_pools=1, nft_collections=1, icos=1)
BLOCKS = 6
TXS_PER_BLOCK = 8


def fresh_stream(seed=11):
    config = scenario_config("mix", seed=seed, **SMALL)
    workload = Workload(config)
    return workload, WorkloadStream(workload, limit=BLOCKS * TXS_PER_BLOCK)


def run_driver(max_inflight, seed=11):
    workload, source = fresh_stream(seed)
    driver = PipelinedValidator(
        "test", workload.db.fork(), DMVCCExecutor(), threads=4,
        packer=Packer(max_txs=TXS_PER_BLOCK, order="fee"),
        max_inflight=max_inflight,
    )
    try:
        report = driver.run(source, BLOCKS)
    finally:
        driver.close()
    return workload, driver, report


@pytest.fixture(scope="module")
def pipelined():
    return run_driver(max_inflight=2)


@pytest.fixture(scope="module")
def sequential():
    return run_driver(max_inflight=0)


class TestProduction:
    def test_produces_requested_blocks(self, pipelined):
        _, driver, report = pipelined
        assert report.blocks == BLOCKS
        assert len(driver.blocks) == BLOCKS
        assert [b.header.number for b in driver.blocks] == list(
            range(1, BLOCKS + 1)
        )
        assert report.txs == sum(len(b.transactions) for b in driver.blocks)

    def test_chain_links_parent_hashes(self, pipelined):
        _, driver, _ = pipelined
        for prev, cur in zip(driver.chain, driver.chain[1:]):
            assert cur.parent_hash == prev.block_hash

    def test_sealed_height_matches_statedb(self, pipelined):
        _, driver, _ = pipelined
        assert driver.height == BLOCKS
        assert driver.db.latest.root_hash == driver.chain[-1].state_root

    def test_report_flags_and_stages(self, pipelined, sequential):
        _, _, piped = pipelined
        _, _, serial = sequential
        assert piped.pipelined and not serial.pipelined
        for report in (piped, serial):
            payload = report.as_dict()
            assert set(payload["stages"]) == {
                "ingest", "analyse", "pack", "execute", "seal", "persist",
            }
            assert payload["totals"]["blocks"] == BLOCKS
            rendered = report.render()
            assert "execute" in rendered and "seal" in rendered


class TestDeterminism:
    def test_pipelined_matches_sequential(self, pipelined, sequential):
        _, piped, _ = pipelined
        _, serial, _ = sequential
        assert [h.state_root for h in piped.chain] == [
            h.state_root for h in serial.chain
        ]
        assert [h.block_hash for h in piped.chain] == [
            h.block_hash for h in serial.chain
        ]
        assert [
            [t.tx_hash for t in b.transactions] for b in piped.blocks
        ] == [[t.tx_hash for t in b.transactions] for b in serial.blocks]

    def test_blocks_replay_into_ordinary_validator(self, pipelined):
        workload, driver, _ = pipelined
        importer = Validator(
            "importer", workload.db.fork(), DMVCCExecutor(), threads=4,
        )
        for block in driver.blocks:
            importer.import_block(block, verify_root=True)
        assert importer.db.latest.root_hash == driver.db.latest.root_hash
        assert len(importer.chain) == BLOCKS


class TestStageOverlap:
    def test_execute_view_covers_exactly_prior_heights(self, pipelined):
        # The speculation contract: for block N the execute stage reads
        # through a sealed base at height B plus pending write sets, and
        # together they cover exactly 1..N-1 — nothing missing (a lost
        # block) and nothing from the future (a mis-ordered seal).
        _, driver, _ = pipelined
        assert len(driver.execute_log) == BLOCKS
        for rec in driver.execute_log:
            covered = set(range(1, rec.base_height + 1))
            covered.update(rec.pending_heights)
            assert covered == set(range(1, rec.height))
            assert rec.base_height < rec.height

    def test_sequential_mode_never_speculates(self, sequential):
        _, driver, _ = sequential
        for rec in driver.execute_log:
            assert rec.pending_heights == ()
            assert rec.base_height == rec.height - 1

    def test_overlap_accounting(self, pipelined, sequential):
        _, _, piped = pipelined
        _, _, serial = sequential
        assert piped.overlap_seconds >= 0.0
        # No commit lane in sequential mode: nothing to overlap with.
        assert serial.overlap_seconds == 0.0


class TestValidation:
    def test_negative_inflight_rejected(self):
        workload, _ = fresh_stream()
        with pytest.raises(ValueError):
            PipelinedValidator(
                "bad", workload.db.fork(), DMVCCExecutor(), max_inflight=-1,
            )

    def test_on_block_hook_sees_speculative_view(self):
        workload, source = fresh_stream(seed=5)
        driver = PipelinedValidator(
            "hook", workload.db.fork(), DMVCCExecutor(), threads=2,
            packer=Packer(max_txs=TXS_PER_BLOCK, order="fee"),
            max_inflight=2,
        )
        seen = []
        try:
            driver.run(
                source, 3,
                on_block=lambda h, view, txs, execution: seen.append(
                    (h, view.height, len(txs), execution is not None),
                ),
            )
        finally:
            driver.close()
        assert [entry[0] for entry in seen] == [1, 2, 3]
        for height, view_height, n_txs, has_execution in seen:
            assert view_height == height - 1
            assert n_txs > 0 and has_execution
