"""PendingView: speculative reads over sealed base + in-flight batches."""

from repro.core import Address, StateKey
from repro.pipeline import PendingView
from repro.state import StateDB

ALICE = Address.derive("alice")
BOB = Address.derive("bob")

K_A = StateKey.balance(ALICE)
K_B = StateKey.balance(BOB)


def seeded_db():
    db = StateDB()
    db.commit({K_A: 100, K_B: 50})
    return db


class TestPendingView:
    def test_base_passthrough_when_no_batches(self):
        db = seeded_db()
        view = PendingView(db.latest)
        assert view.get(K_A) == 100
        assert view.height == db.latest.height
        assert view.root_hash == db.latest.root_hash

    def test_overlay_wins_over_base(self):
        db = seeded_db()
        view = PendingView(db.latest, [(2, {K_A: 70})])
        assert view.get(K_A) == 70
        assert view.get(K_B) == 50       # untouched key falls through
        assert view.height == 2
        assert view.pending_writes == 1

    def test_later_batch_wins_over_earlier(self):
        db = seeded_db()
        view = PendingView(db.latest, [(2, {K_A: 70}), (3, {K_A: 60})])
        assert view.get(K_A) == 60
        assert view.height == 3

    def test_batch_at_or_below_base_height_is_benign(self):
        # The seal-lands-mid-capture race: the batch re-asserts exactly
        # what the base already contains.
        db = seeded_db()
        sealed_height = db.latest.height
        view = PendingView(db.latest, [(sealed_height, {K_A: 100})])
        assert view.get(K_A) == 100
        assert view.height == sealed_height

    def test_counters_and_uncached_reads(self):
        db = seeded_db()
        view = PendingView(db.latest, [(2, {K_A: 70})])
        view.get(K_A)
        view.get(K_B)
        assert view.flat_hits == 1
        assert view.get_uncached(K_A) == 70
        assert view.balance_of(ALICE) == 70
        assert view.nonce_of(ALICE) == 0

    def test_zero_value_write_shadows_base(self):
        db = seeded_db()
        view = PendingView(db.latest, [(2, {K_A: 0})])
        assert view.get(K_A) == 0
