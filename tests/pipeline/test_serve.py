"""Soak-style serve runs: the CI-sized version of ``python -m repro serve``.

The acceptance run streams 500 blocks with the serializability oracle and
a root-parity twin online; here we keep the same moving parts — durable
backend, fee-ordered packing, backpressure, per-block oracle checks,
sealed-root parity, JSON report — at a size a test suite can afford.
"""

import json

import pytest

from repro.__main__ import main
from repro.pipeline import ServeReport, run_serve

SMALL = dict(users=48, erc20_tokens=2, dex_pools=2, nft_collections=2, icos=1)
BLOCKS = 12
TXS_PER_BLOCK = 12


@pytest.fixture(scope="module")
def serve_report(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "serve.json"
    report = run_serve(
        blocks=BLOCKS,
        txs_per_block=TXS_PER_BLOCK,
        scenario="mix",
        scheduler="dmvcc",
        threads=4,
        seed=91,
        backend="durable",
        max_inflight=2,
        check=True,
        workload_overrides=SMALL,
        report_path=str(path),
    )
    return report, path


class TestServeInvariants:
    def test_run_is_clean(self, serve_report):
        report, _ = serve_report
        assert isinstance(report, ServeReport)
        assert report.ok, report.render()
        assert report.oracle_violations == []
        assert report.root_mismatches == []

    def test_every_block_checked(self, serve_report):
        report, _ = serve_report
        assert report.pipeline.blocks == BLOCKS
        assert report.oracle_checks == BLOCKS
        # Every sealed header is compared against the twin's root.
        assert report.root_parity_checks == BLOCKS

    def test_backpressure_engaged_during_the_run(self, serve_report):
        # The serve defaults are tuned so the stream genuinely outruns
        # consumption — a run that never throttles is not exercising the
        # flow-control path the subsystem exists for.
        report, _ = serve_report
        assert report.pipeline.backpressure_engagements >= 1
        assert report.pipeline.throttled_pulls >= 1

    def test_report_json_round_trips(self, serve_report):
        report, path = serve_report
        payload = json.loads(path.read_text())
        results = payload.get("results", payload)
        assert results["ok"] is True
        assert results["totals"]["blocks"] == BLOCKS
        assert results["invariants"]["oracle_checks"] == BLOCKS
        assert results["config"]["scenario"] == "mix"
        assert set(results["stages"]) == {
            "ingest", "analyse", "pack", "execute", "seal", "persist",
        }

    def test_render_mentions_invariants(self, serve_report):
        report, _ = serve_report
        rendered = report.render()
        assert "oracle" in rendered
        assert "root parity" in rendered
        assert "OK" in rendered


class TestServeModes:
    def test_memory_backend_and_sequential_mode(self):
        report = run_serve(
            blocks=4, txs_per_block=8, scenario="mint_storm",
            scheduler="dmvcc", threads=2, seed=17, backend="memory",
            max_inflight=0, check=True, workload_overrides=SMALL,
        )
        assert report.ok, report.render()
        assert not report.pipeline.pipelined
        assert report.pipeline.blocks == 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_serve(blocks=1, backend="floppy")


class TestProfileDB:
    def test_profile_db_persists_and_reloads(self, tmp_path):
        """Two serve runs against the same --profile-db: the first writes
        the learned store, the second boots from it and keeps learning
        (restart continuity for the lane planner)."""
        import json as _json

        from repro.scheduling import ConflictProfileStore

        path = tmp_path / "profiles.json"
        run_serve(
            blocks=4, txs_per_block=8, scenario="abort_storm",
            scheduler="dmvcc", threads=4, seed=23, backend="memory",
            workload_overrides=SMALL, profile_db=str(path),
        )
        assert path.exists()
        first = ConflictProfileStore.load(path)
        assert first.blocks_observed == 4

        run_serve(
            blocks=4, txs_per_block=8, scenario="abort_storm",
            scheduler="dmvcc", threads=4, seed=24, backend="memory",
            workload_overrides=SMALL, profile_db=str(path),
        )
        second = ConflictProfileStore.load(path)
        assert second.blocks_observed == 8  # resumed, not restarted
        payload = _json.loads(path.read_text())
        assert "keys" in payload

    def test_profile_db_with_oracle_check(self, tmp_path):
        """--check wraps the executor in the trace recorder; the planner's
        abort capture must still reach the inner executor's obs slot."""
        from repro.scheduling import ConflictProfileStore

        path = tmp_path / "checked-profiles.json"
        report = run_serve(
            blocks=3, txs_per_block=8, scenario="abort_storm",
            scheduler="dmvcc", threads=4, seed=29, backend="memory",
            check=True, workload_overrides=SMALL, profile_db=str(path),
        )
        assert report.ok, report.render()
        assert ConflictProfileStore.load(path).blocks_observed == 3

    def test_cli_profile_db_flag(self, tmp_path):
        path = tmp_path / "cli-profiles.json"
        code = main([
            "serve", "--blocks", "3", "--txs", "6", "--scenario", "mix",
            "--workers", "2", "--seed", "5", "--backend", "memory",
            "--users", "48", "--profile-db", str(path),
        ])
        assert code == 0
        assert path.exists()


class TestServeCLI:
    def test_cli_smoke(self, tmp_path, capsys):
        path = tmp_path / "serve-cli.json"
        code = main([
            "serve",
            "--blocks", "4",
            "--txs", "8",
            "--scenario", "mix",
            "--scheduler", "dmvcc",
            "--workers", "2",
            "--seed", "3",
            "--backend", "memory",
            "--users", "48",
            "--check",
            "--report", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline" in out
        assert path.exists()

    def test_cli_rejects_unknown_scenario(self, capsys):
        code = main(["serve", "--scenario", "nope"])
        assert code != 0
        assert "unknown scenario" in capsys.readouterr().err
