"""Backpressure and flow control: watermarks throttle, they never drop.

A mempool crossing its high watermark must make the ingest stage *skip*
pull cycles (hysteresis: resume only below the low watermark), not evict
streamed work — every transaction the source hands over must eventually be
sealed into a block.  The bounded seal queue is the other half of the
story: a slow commit lane pushes back on the stream lane, which shows up
as counted (and timed) queue stalls rather than unbounded memory growth.
"""

import pytest

from repro.chain import Packer, TransactionPool
from repro.executors import DMVCCExecutor
from repro.obs import EventBus
from repro.pipeline import PipelinedValidator, WorkloadStream
from repro.workload import Workload, scenario_config

SMALL = dict(users=32, erc20_tokens=2, dex_pools=1, nft_collections=1, icos=1)
TXS_PER_BLOCK = 8


def make_driver(
    workload, *, pool_size, max_inflight=2, obs=None, high=0.75, low=0.5,
    db=None,
):
    db = db if db is not None else workload.db.fork()
    pool = TransactionPool(
        max_size=pool_size,
        nonce_tracking=True,
        base_nonce=lambda a: db.latest.nonce_of(a),
        high_watermark=high,
        low_watermark=low,
        obs=obs,
    )
    return PipelinedValidator(
        "bp", db, DMVCCExecutor(), threads=4,
        pool=pool, packer=Packer(max_txs=TXS_PER_BLOCK, order="fee"),
        max_inflight=max_inflight, ingest_rate=TXS_PER_BLOCK * 2, obs=obs,
    )


@pytest.fixture(scope="module")
def throttled_run():
    # Ingest outruns packing two-to-one against a six-block pool, so the
    # high watermark is crossed within a few cycles; draining back under
    # the low watermark takes several packed blocks.
    workload = Workload(scenario_config("mix", seed=23, **SMALL))
    bus = EventBus()
    source = WorkloadStream(workload, limit=20 * TXS_PER_BLOCK)
    driver = make_driver(
        workload, pool_size=TXS_PER_BLOCK * 6, obs=bus,
    )
    try:
        report = driver.run(source, 64)
    finally:
        driver.close()
    return driver, source, report, bus


class TestWatermarkThrottling:
    def test_backpressure_engages_and_skips_pulls(self, throttled_run):
        _, _, report, _ = throttled_run
        assert report.backpressure_engagements >= 1
        assert report.throttled_pulls >= 1

    def test_pool_never_overfills(self, throttled_run):
        driver, _, report, _ = throttled_run
        assert report.pool_peak <= driver.pool.max_size

    def test_events_mirror_the_engagement_count(self, throttled_run):
        _, _, report, bus = throttled_run
        flips = [
            e for e in bus.events
            if type(e).__name__ == "BackpressureChanged"
        ]
        engages = [e for e in flips if e.engaged]
        assert len(engages) == report.backpressure_engagements
        # Hysteresis means strict alternation: engage, release, engage...
        assert flips[0].engaged
        for prev, cur in zip(flips, flips[1:]):
            assert prev.engaged != cur.engaged
        for event in engages:
            assert event.pool_size >= 1
            assert event.capacity == TXS_PER_BLOCK * 6


class TestConservation:
    def test_every_streamed_tx_is_sealed(self, throttled_run):
        # Throttling must never lose work: the stream drains fully and
        # every pulled transaction lands in exactly one sealed block.
        driver, source, report, _ = throttled_run
        assert source.exhausted
        assert len(driver.pool) == 0
        assert report.txs == source.pulled == 20 * TXS_PER_BLOCK
        sealed = [
            t.tx_hash for b in driver.blocks for t in b.transactions
        ]
        assert len(sealed) == len(set(sealed)) == source.pulled
        assert driver.pool.stats.evictions == 0
        assert driver.pool.stats.rejected_total == 0


class TestQueueStalls:
    def test_slow_commit_lane_stalls_the_stream_lane(self, tmp_path):
        # A deliberately slow fsync (50ms emulated) against a one-deep
        # seal queue: the stream lane finishes executing block N+1 before
        # block N has persisted and must block on submit.
        workload = Workload(scenario_config("mix", seed=29, **SMALL))
        db = workload.db.mirror_durable(
            str(tmp_path / "chain"), fsync_delay=0.05,
        )
        source = WorkloadStream(workload, limit=6 * TXS_PER_BLOCK)
        driver = make_driver(
            workload, pool_size=TXS_PER_BLOCK * 6, max_inflight=1, db=db,
        )
        try:
            report = driver.run(source, 6)
        finally:
            driver.close()
            db.close()
        assert report.blocks == 6
        assert report.queue_stalls >= 1
        assert report.stall_time > 0.0
        # The stall is the price of genuine overlap: execute and
        # seal/persist ran concurrently for a measurable interval.
        assert report.overlap_seconds > 0.0
        persist = report.stages["persist"]
        assert persist.max_latency >= 0.05
