"""CFG construction tests."""

import pytest

from repro.analysis import build_cfg
from repro.evm import Op, assemble


class TestBasicBlocks:
    def test_single_block(self):
        cfg = build_cfg(assemble("PUSH 1\nPUSH 2\nADD\nSTOP"))
        assert len(cfg.blocks) == 1
        block = cfg.blocks[0]
        assert block.terminator == Op.STOP
        assert block.successors == []

    def test_jump_splits_blocks(self):
        cfg = build_cfg(assemble("""
            PUSH :end
            JUMP
        end:
            JUMPDEST
            STOP
        """))
        assert len(cfg.blocks) == 2
        entry = cfg.blocks[0]
        assert len(entry.successors) == 1
        target = entry.successors[0]
        assert cfg.blocks[target].instructions[0].op == Op.JUMPDEST

    def test_jumpi_has_two_successors(self):
        cfg = build_cfg(assemble("""
            PUSH 1
            PUSH :yes
            JUMPI
            STOP
        yes:
            JUMPDEST
            STOP
        """))
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2

    def test_fallthrough_edge(self):
        cfg = build_cfg(assemble("""
            PUSH 1
            POP
        next:
            JUMPDEST
            STOP
        """))
        entry = cfg.blocks[0]
        assert entry.successors == [cfg.blocks[entry.successors[0]].start]

    def test_predecessors_populated(self):
        cfg = build_cfg(assemble("""
            PUSH 1
            PUSH :a
            JUMPI
        a:
            JUMPDEST
            STOP
        """))
        target_start = max(cfg.blocks)
        preds = cfg.blocks[target_start].predecessors
        assert 0 in preds

    def test_terminators_end_blocks(self):
        cfg = build_cfg(assemble("PUSH 0\nPUSH 0\nREVERT\nJUMPDEST\nSTOP"))
        assert len(cfg.blocks) == 2
        assert cfg.blocks[0].terminator == Op.REVERT
        assert cfg.blocks[0].successors == []  # REVERT never falls through

    def test_block_of_lookup(self):
        code = assemble("PUSH 1\nPOP\nJUMPDEST\nSTOP")
        cfg = build_cfg(code)
        assert cfg.block_of(0).start == 0
        assert cfg.block_of(1).start == 0  # inside the PUSH
        last = max(cfg.blocks)
        assert cfg.block_of(last).start == last
        with pytest.raises(KeyError):
            cfg.block_of(10_000)

    def test_empty_code(self):
        cfg = build_cfg(b"")
        assert cfg.blocks == {}


class TestDynamicJumps:
    def test_dynamic_jump_targets_all_jumpdests(self):
        # Jump target comes from a DUP, not a literal PUSH.
        code = assemble("""
            PUSH :a
            DUP1
            JUMP
        a:
            JUMPDEST
            STOP
        """)
        # Replace the literal pattern: after PUSH, DUP1 precedes JUMP so the
        # target is not syntactically a push.
        cfg = build_cfg(code)
        entry = cfg.blocks[0]
        assert entry.has_dynamic_jump
        assert entry.successors  # conservatively wired to every JUMPDEST


class TestLoops:
    LOOP_SRC = """
        PUSH 5
    loop:
        JUMPDEST
        PUSH 1
        SWAP1
        SUB
        DUP1
        PUSH :loop
        JUMPI
        STOP
    """

    def test_back_edge_detected(self):
        cfg = build_cfg(assemble(self.LOOP_SRC))
        assert cfg.back_edges()

    def test_loop_header_identified(self):
        cfg = build_cfg(assemble(self.LOOP_SRC))
        headers = cfg.loop_headers()
        assert len(headers) == 1
        header = next(iter(headers))
        assert cfg.blocks[header].instructions[0].op == Op.JUMPDEST

    def test_straight_line_has_no_loops(self):
        cfg = build_cfg(assemble("PUSH 1\nPOP\nSTOP"))
        assert not cfg.back_edges()
        assert not cfg.loop_headers()


class TestGas:
    def test_static_gas_sums_instructions(self):
        cfg = build_cfg(assemble("PUSH 1\nPUSH 2\nADD\nSTOP"))
        assert cfg.blocks[0].static_gas() == 3 + 3 + 3 + 0

    def test_sstore_dynamic_charge_included(self):
        cfg = build_cfg(assemble("PUSH 1\nPUSH 0\nSSTORE\nSTOP"))
        assert cfg.blocks[0].static_gas() >= 5_000


class TestCompiledContracts:
    def test_compiled_contract_cfg_is_connected(self, token_contract):
        cfg = build_cfg(token_contract.code)
        reachable = set()
        stack = [cfg.entry]
        while stack:
            start = stack.pop()
            if start in reachable:
                continue
            reachable.add(start)
            stack.extend(cfg.blocks[start].successors)
        # Anything unreachable must be true dead code: no predecessors
        # (e.g. an unused panic tail or a trailing implicit STOP).
        for start in set(cfg.blocks) - reachable:
            assert not cfg.blocks[start].predecessors
