"""C-SAG refinement tests: key resolution, commutativity, staleness."""

import pytest

from repro.analysis import AccessType, CSAGBuilder
from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.state import StateDB

ALICE = Address.derive("alice")
BOB = Address.derive("bob")
TOKEN = Address.derive("token")


@pytest.fixture
def token_db(token_contract):
    db = StateDB()
    db.deploy_contract(TOKEN, token_contract.code, "Token")
    bal = token_contract.slot_of("balanceOf")
    db.seed_genesis(
        {ALICE: 10**18, BOB: 10**18},
        {
            StateKey(TOKEN, mapping_slot(ALICE.to_word(), bal)): 1_000,
            StateKey(TOKEN, mapping_slot(BOB.to_word(), bal)): 1_000,
        },
    )
    return db


def build(db, tx):
    return CSAGBuilder(db.codes.code_of).build(tx, db.latest)


class TestTransferCSAG:
    def test_plain_transfer_exact(self, token_db):
        tx = Transaction(ALICE, BOB, 500)
        csag = build(token_db, tx)
        assert not csag.speculative
        assert csag.predicted_success
        per_key = csag.per_key
        assert per_key[StateKey.balance(ALICE)] is AccessType.READ_WRITE
        assert per_key[StateKey.balance(BOB)] is AccessType.COMMUTATIVE

    def test_underfunded_transfer_predicts_failure(self, token_db):
        tx = Transaction(ALICE, BOB, 10**19)
        csag = build(token_db, tx)
        assert not csag.predicted_success
        assert StateKey.balance(BOB) not in csag.per_key

    def test_commutative_delta_is_value(self, token_db):
        tx = Transaction(ALICE, BOB, 500)
        csag = build(token_db, tx)
        credit = [a for a in csag.accesses if a.commutative and a.kind == "write"]
        assert credit[0].delta == 500


class TestContractCallCSAG:
    def test_transfer_call_keys(self, token_db, token_contract):
        bal = token_contract.slot_of("balanceOf")
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("transfer", BOB, 10))
        csag = build(token_db, tx)
        alice_key = StateKey(TOKEN, mapping_slot(ALICE.to_word(), bal))
        bob_key = StateKey(TOKEN, mapping_slot(BOB.to_word(), bal))
        assert csag.per_key[alice_key] is AccessType.READ_WRITE
        assert csag.per_key[bob_key] is AccessType.COMMUTATIVE
        assert csag.predicted_success

    def test_mint_fully_commutative(self, token_db, token_contract):
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("mint", BOB, 10))
        csag = build(token_db, tx)
        assert set(csag.per_key.values()) == {AccessType.COMMUTATIVE}

    def test_predicted_failure_keeps_reads(self, token_db, token_contract):
        bal = token_contract.slot_of("balanceOf")
        tx = Transaction(
            ALICE, TOKEN, 0, token_contract.encode_call("transfer", BOB, 10**9)
        )
        csag = build(token_db, tx)
        assert not csag.predicted_success
        alice_key = StateKey(TOKEN, mapping_slot(ALICE.to_word(), bal))
        assert csag.per_key.get(alice_key) is AccessType.READ
        # No writes predicted on the failure path...
        assert not csag.write_keys
        # ...but the static sets still know the success branch's writes.
        assert alice_key in csag.static_write_keys

    def test_release_offsets_monotonic(self, token_db, token_contract):
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("transfer", BOB, 10))
        csag = build(token_db, tx)
        offsets = [r.gas_offset for r in csag.release_offsets]
        assert offsets == sorted(offsets)
        assert all(r.remaining_gas_bound >= 0 for r in csag.release_offsets)

    def test_gas_offsets_increase_along_trace(self, token_db, token_contract):
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("transfer", BOB, 10))
        csag = build(token_db, tx)
        offsets = [a.gas_offset for a in csag.accesses]
        assert offsets == sorted(offsets)
        assert csag.predicted_gas >= offsets[-1]

    def test_static_sets_resolved(self, token_db, token_contract):
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("transfer", BOB, 10))
        csag = build(token_db, tx)
        bal = token_contract.slot_of("balanceOf")
        assert StateKey(TOKEN, mapping_slot(ALICE.to_word(), bal)) in csag.static_read_keys
        assert StateKey(TOKEN, mapping_slot(BOB.to_word(), bal)) in csag.static_write_keys

    def test_coarse_units_variable_level(self, token_db, token_contract):
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("transfer", BOB, 10))
        csag = build(token_db, tx)
        bal = token_contract.slot_of("balanceOf")
        assert (TOKEN, bal) in csag.coarse_read_units
        assert (TOKEN, bal) in csag.coarse_write_units

    def test_missing_analysis_csag(self, token_db, token_contract):
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("mint", BOB, 1))
        csag = CSAGBuilder(token_db.codes.code_of).build_missing(tx, token_db.latest)
        assert csag.missing
        assert not csag.accesses

    def test_self_transfer_not_commutative(self, token_db, token_contract):
        """Sender == recipient: the same key is read (require) and blindly
        incremented; the read demotes commutativity."""
        tx = Transaction(ALICE, TOKEN, 0, token_contract.encode_call("transfer", ALICE, 10))
        csag = build(token_db, tx)
        bal = token_contract.slot_of("balanceOf")
        key = StateKey(TOKEN, mapping_slot(ALICE.to_word(), bal))
        assert csag.per_key[key] is AccessType.READ_WRITE


class TestStateDependentRefinement:
    def test_paper_example_loop_unrolled(self, example_contract):
        """Fig. 1/3 of the paper: the loop bound comes from A[x]; the C-SAG
        must contain the concrete unrolled B accesses."""
        db = StateDB()
        contract = Address.derive("example")
        db.deploy_contract(contract, example_contract.code, "Example")
        a_slot = example_contract.slot_of("A")
        b_slot = example_contract.slot_of("B")
        from repro.core import array_element_slot

        db.seed_genesis(
            {ALICE: 10**18},
            {
                StateKey(contract, mapping_slot(ALICE.to_word(), a_slot)): 3,  # idx = 3
                StateKey(contract, b_slot): 6,  # B.length = 6
            },
        )
        tx = Transaction(
            ALICE, contract, 0, example_contract.encode_call("UpdateB", ALICE, 5)
        )
        csag = build(db, tx)
        assert csag.predicted_success
        written_slots = {a.key.slot for a in csag.accesses if a.kind == "write"}
        # idx=3: loop writes B[3] and B[2] (i from 3 down to 2).
        assert array_element_slot(b_slot, 3) in written_slots
        assert array_element_slot(b_slot, 2) in written_slots
        assert array_element_slot(b_slot, 1) not in written_slots

    def test_snapshot_changes_refinement(self, example_contract):
        """Same transaction, different snapshot value for A[x] — the C-SAG
        changes shape (else-branch instead of the loop)."""
        db = StateDB()
        contract = Address.derive("example2")
        db.deploy_contract(contract, example_contract.code, "Example")
        a_slot = example_contract.slot_of("A")
        b_slot = example_contract.slot_of("B")
        db.seed_genesis(
            {ALICE: 10**18},
            {StateKey(contract, b_slot): 6},  # A[ALICE] = 0 -> else branch
        )
        tx = Transaction(
            ALICE, contract, 0, example_contract.encode_call("UpdateB", ALICE, 5)
        )
        csag = build(db, tx)
        from repro.core import array_element_slot

        written_slots = {a.key.slot for a in csag.accesses if a.kind == "write"}
        assert array_element_slot(b_slot, 0) in written_slots
        assert array_element_slot(b_slot, 1) in written_slots
        assert array_element_slot(b_slot, 3) not in written_slots
