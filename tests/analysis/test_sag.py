"""P-SAG structure tests (nodes, edges, cache, selector reachability)."""

from repro.analysis import PSAGCache, SAGNodeKind, build_psag
from repro.analysis.sag import END_PC, START_PC
from repro.evm import assemble
from repro.lang import compile_source, selector_of


class TestStructure:
    def test_start_and_end_nodes(self, token_contract):
        psag = build_psag(token_contract.code)
        assert psag.start.kind is SAGNodeKind.START
        assert psag.end.kind is SAGNodeKind.END
        assert psag.start.successors

    def test_access_nodes_match_analysis(self, token_contract):
        psag = build_psag(token_contract.code)
        access_pcs = {n.pc for n in psag.access_nodes()}
        assert access_pcs == set(psag.analysis.access_sites)

    def test_release_flags(self, token_contract):
        psag = build_psag(token_contract.code)
        assert psag.release_pcs() == psag.release.pcs

    def test_commutative_write_nodes_marked(self, erc20_contract):
        psag = build_psag(erc20_contract.code)
        commutative = [n for n in psag.access_nodes() if n.commutative]
        assert commutative
        assert all(n.kind is SAGNodeKind.WRITE for n in commutative)

    def test_loop_nodes(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint n) public {
                    for (uint i = 0; i < n; i++) { x += 1; }
                }
            }
        """)
        psag = build_psag(compiled.code)
        assert any(n.kind is SAGNodeKind.LOOP for n in psag.nodes.values())

    def test_edges_reach_end(self, token_contract):
        psag = build_psag(token_contract.code)
        seen = set()
        stack = [START_PC]
        while stack:
            pc = stack.pop()
            if pc in seen:
                continue
            seen.add(pc)
            stack.extend(psag.nodes[pc].successors)
        assert END_PC in seen

    def test_state_dependency_sets(self):
        compiled = compile_source("""
            contract T {
                mapping(address => uint) A;
                mapping(uint => uint) B;
                function f(address x) public {
                    B[A[x]] = 1;
                }
            }
        """)
        psag = build_psag(compiled.code)
        assert psag.snapshot_dependent_nodes()

    def test_no_accesses_contract(self):
        code = assemble("PUSH 1\nPOP\nSTOP")
        psag = build_psag(code)
        assert not psag.access_nodes()
        assert psag.start.successors  # start wired through to something


class TestSelectorReachability:
    def test_selectors_discovered(self, token_contract):
        psag = build_psag(token_contract.code)
        expected = {abi.selector for abi in token_contract.functions.values()}
        assert set(psag.selector_reach) == expected

    def test_per_function_sites_disjoint_from_other_functions(self, token_contract):
        psag = build_psag(token_contract.code)
        mint_sel = token_contract.abi("mint").selector
        transfer_sel = token_contract.abi("transfer").selector
        mint_sites = {s.pc for s in psag.sites_for_selector(mint_sel)}
        transfer_sites = {s.pc for s in psag.sites_for_selector(transfer_sel)}
        assert mint_sites and transfer_sites
        assert mint_sites != transfer_sites

    def test_unknown_selector_returns_all_sites(self, token_contract):
        psag = build_psag(token_contract.code)
        all_sites = psag.sites_for_selector(0xDEADBEEF)
        assert len(all_sites) == len(psag.analysis.access_sites)


class TestCache:
    def test_cache_reuses_analysis(self, token_contract):
        cache = PSAGCache()
        first = cache.get(token_contract.code)
        second = cache.get(token_contract.code)
        assert first is second
        assert len(cache) == 1

    def test_cache_distinguishes_code(self, token_contract, counter_contract):
        cache = PSAGCache()
        cache.get(token_contract.code)
        cache.get(counter_contract.code)
        assert len(cache) == 2
