"""Abstract interpretation tests: key expressions and increment detection."""

from repro.analysis import analyze_contract
from repro.analysis.symexpr import (
    Calldata,
    Caller,
    Const,
    Sha3,
    contains_unknown,
)
from repro.lang import compile_source


def sites_by_kind(analysis):
    reads = {str(s.key) for s in analysis.access_sites.values() if s.kind == "read"}
    writes = {str(s.key) for s in analysis.access_sites.values() if s.kind == "write"}
    return reads, writes


class TestKeyResolution:
    def test_scalar_slots(self):
        compiled = compile_source("""
            contract T {
                uint a;
                uint b;
                function f() public { b = a; }
            }
        """)
        analysis = analyze_contract(compiled.code)
        reads, writes = sites_by_kind(analysis)
        assert "0" in reads
        assert "1" in writes

    def test_mapping_key_from_calldata(self):
        compiled = compile_source("""
            contract T {
                mapping(address => uint) m;
                function f(address who) public { m[who] = 1; }
            }
        """)
        analysis = analyze_contract(compiled.code)
        write_keys = [s.key for s in analysis.access_sites.values() if s.kind == "write"]
        assert any(
            isinstance(k, Sha3) and k.parts == (Calldata(4), Const(0))
            for k in write_keys
        )

    def test_mapping_key_from_caller(self):
        compiled = compile_source("""
            contract T {
                mapping(address => uint) m;
                function f() public { m[msg.sender] = 1; }
            }
        """)
        analysis = analyze_contract(compiled.code)
        write_keys = [s.key for s in analysis.access_sites.values() if s.kind == "write"]
        assert any(
            isinstance(k, Sha3) and k.parts == (Caller(), Const(0))
            for k in write_keys
        )

    def test_nested_mapping_key(self):
        compiled = compile_source("""
            contract T {
                mapping(address => mapping(address => uint)) allowance;
                function f(address spender) public {
                    allowance[msg.sender][spender] = 5;
                }
            }
        """)
        analysis = analyze_contract(compiled.code)
        write_keys = [s.key for s in analysis.access_sites.values() if s.kind == "write"]
        nested = [
            k for k in write_keys
            if isinstance(k, Sha3) and isinstance(k.parts[-1], Sha3)
        ]
        assert nested

    def test_state_dependent_key_references_sload(self):
        # The paper's Fig. 1 pattern: B[idx] where idx = A[x].
        compiled = compile_source("""
            contract T {
                mapping(address => uint) A;
                mapping(uint => uint) B;
                function f(address x) public {
                    uint idx = A[x];
                    B[idx] = 1;
                }
            }
        """)
        analysis = analyze_contract(compiled.code)
        write_sites = [s for s in analysis.access_sites.values() if s.kind == "write"]
        assert any("sload" in str(s.key) for s in write_sites)

    def test_all_keys_resolved_for_simple_contract(self, token_contract):
        analysis = analyze_contract(token_contract.code)
        unresolved = [
            s for s in analysis.access_sites.values() if contains_unknown(s.key)
        ]
        assert not unresolved


class TestIncrementDetection:
    def test_blind_increment_detected(self):
        compiled = compile_source("""
            contract T {
                uint total;
                function bump(uint amount) public { total += amount; }
            }
        """)
        analysis = analyze_contract(compiled.code)
        assert len(analysis.increment_sites) == 1

    def test_mapping_increment_detected(self):
        compiled = compile_source("""
            contract T {
                mapping(address => uint) m;
                function credit(address who, uint v) public { m[who] += v; }
            }
        """)
        analysis = analyze_contract(compiled.code)
        assert len(analysis.increment_sites) == 1

    def test_read_in_branch_disqualifies(self):
        compiled = compile_source("""
            contract T {
                uint total;
                function bump(uint v) public {
                    require(total + v >= total);
                    total += v;
                }
            }
        """)
        analysis = analyze_contract(compiled.code)
        # The require reads `total` at separate sites; only the += load may
        # qualify — and it does, because its own load has a single use.
        for write_pc, read_pc in analysis.increment_sites.items():
            write_site = analysis.access_sites[write_pc]
            assert write_site.kind == "write"

    def test_flag_pattern_not_commutative(self):
        compiled = compile_source("""
            contract T {
                uint flag;
                function set() public {
                    if (flag == 0) { flag = 1; }
                }
            }
        """)
        analysis = analyze_contract(compiled.code)
        assert not analysis.increment_sites

    def test_multiplicative_update_not_commutative(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint v) public { x = x * v; }
            }
        """)
        analysis = analyze_contract(compiled.code)
        assert not analysis.increment_sites

    def test_value_used_twice_not_commutative(self):
        compiled = compile_source("""
            contract T {
                uint x;
                uint y;
                function f(uint v) public {
                    uint old = x;
                    x = old + v;
                    y = old;
                }
            }
        """)
        analysis = analyze_contract(compiled.code)
        # `old` flows into both writes; the load has two uses.
        x_writes = [
            pc for pc, site in analysis.access_sites.items()
            if site.kind == "write" and str(site.key) == "0"
        ]
        assert all(pc not in analysis.increment_sites for pc in x_writes)

    def test_erc20_transfer_sites(self, erc20_contract):
        """The canonical case: recipient credit commutes, sender debit does
        not (its value feeds the require)."""
        analysis = analyze_contract(erc20_contract.code)
        # transfer() writes balanceOf[msg.sender] (debit) and
        # balanceOf[to] (credit).  Find them by key shape.
        debit_pcs = []
        credit_pcs = []
        for pc, site in analysis.access_sites.items():
            if site.kind != "write":
                continue
            key = str(site.key)
            if "keccak(msg.sender, 1)" in key:
                debit_pcs.append(pc)
            elif "keccak(arg0, 1)" in key:
                credit_pcs.append(pc)
        assert any(pc in analysis.increment_sites for pc in credit_pcs)
        assert all(pc not in analysis.increment_sites for pc in debit_pcs)


class TestBranchConditions:
    def test_jumpi_conditions_recorded(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a) public { if (a > 3) { x = 1; } }
            }
        """)
        analysis = analyze_contract(compiled.code)
        assert analysis.branch_conditions  # dispatcher + the if
