"""Release-point analysis tests."""

from repro.analysis import analyze_release_points, build_cfg
from repro.evm import Op, assemble
from repro.lang import compile_source


def analyse(code):
    cfg = build_cfg(code)
    return cfg, analyze_release_points(cfg)


class TestStraightLine:
    def test_no_aborts_releases_at_entry(self):
        cfg, release = analyse(assemble("PUSH 1\nPUSH 0\nSSTORE\nSTOP"))
        assert release.pcs == {0}

    def test_release_after_last_revert(self):
        code = assemble("""
            PUSH 1
            PUSH :ok
            JUMPI
            PUSH 0
            PUSH 0
            REVERT
        ok:
            JUMPDEST
            PUSH 5
            PUSH 0
            SSTORE
            STOP
        """)
        cfg, release = analyse(code)
        # The ok-block is abort-free and its predecessor can abort.
        (point,) = release.release_points
        block = cfg.block_of(point.pc)
        assert block.instructions[0].op == Op.JUMPDEST

    def test_revert_block_itself_never_releases(self):
        code = assemble("PUSH 0\nPUSH 0\nREVERT")
        _cfg, release = analyse(code)
        assert not release.release_points


class TestAbortReachability:
    def test_reachability_propagates_backwards(self):
        code = assemble("""
            PUSH 1
            POP
            PUSH 1
            PUSH :maybe
            JUMPI
            STOP
        maybe:
            JUMPDEST
            INVALID
        """)
        cfg, release = analyse(code)
        assert release.abort_reachable[0]

    def test_post_abort_suffix_is_safe(self):
        code = assemble("""
            PUSH 1
            PUSH :go
            JUMPI
            INVALID
        go:
            JUMPDEST
            PUSH 1
            PUSH 0
            SSTORE
            STOP
        """)
        cfg, release = analyse(code)
        go_block = max(cfg.blocks)
        assert not release.abort_reachable[go_block]


class TestGasBounds:
    def test_acyclic_bound_is_finite(self):
        code = assemble("""
            PUSH 1
            PUSH :ok
            JUMPI
            PUSH 0
            PUSH 0
            REVERT
        ok:
            JUMPDEST
            PUSH 5
            PUSH 0
            SSTORE
            STOP
        """)
        _cfg, release = analyse(code)
        (point,) = release.release_points
        assert point.gas_bound is not None
        # JUMPDEST(1) + 2 pushes (6) + SSTORE (5000) >= bound >= SSTORE
        assert 5_000 <= point.gas_bound <= 6_000

    def test_loop_makes_bound_unbounded(self):
        code = assemble("""
            PUSH 1
            PUSH :body
            JUMPI
            PUSH 0
            PUSH 0
            REVERT
        body:
            JUMPDEST
            PUSH 1
        loop:
            JUMPDEST
            PUSH 1
            SWAP1
            SUB
            DUP1
            PUSH :loop
            JUMPI
            STOP
        """)
        _cfg, release = analyse(code)
        assert release.release_points
        assert all(p.gas_bound is None for p in release.release_points)


class TestCompiledContracts:
    def test_token_release_points_after_requires(self, token_contract):
        from repro.analysis import build_psag

        psag = build_psag(token_contract.code)
        release_pcs = psag.release_pcs()
        assert release_pcs
        # Every release point must not be able to reach a REVERT/INVALID.
        cfg = psag.analysis.cfg
        for pc in release_pcs:
            block = cfg.block_of(pc)
            assert not any(
                release_has_abort_beyond(cfg, block, pc)
                for _ in [0]
            )

    def test_call_counts_as_abortable(self):
        # A contract whose tail performs a CALL must not release before it.
        code = assemble("""
            PUSH 1
            PUSH 0
            SSTORE
            PUSH 0
            PUSH 0
            PUSH 0
            PUSH 0
            PUSH 0
            PUSH 0x1234
            PUSH 100
            CALL
            POP
            STOP
        """)
        _cfg, release = analyse(code)
        if release.release_points:
            # any release point must come after the CALL
            call_pc = [i.pc for i in _iter_ops(code) if i.op == Op.CALL][0]
            assert all(p.pc > call_pc for p in release.release_points)


def release_has_abort_beyond(cfg, block, pc):
    """Is any REVERT/INVALID/CALL reachable at-or-after pc?"""
    abortable = (Op.REVERT, Op.INVALID, Op.CALL)
    for instr in block.instructions:
        if instr.pc >= pc and instr.op in abortable:
            return True
    seen = set()
    stack = list(block.successors)
    while stack:
        start = stack.pop()
        if start in seen:
            continue
        seen.add(start)
        for instr in cfg.blocks[start].instructions:
            if instr.op in abortable:
                return True
        stack.extend(cfg.blocks[start].successors)
    return False


def _iter_ops(code):
    from repro.evm import disassemble

    return list(disassemble(code))
