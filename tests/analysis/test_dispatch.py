"""Selector-dispatch recognition tests."""

from repro.analysis import build_cfg
from repro.analysis.dispatch import (
    reachable_pcs,
    selector_entries,
    selector_reachability,
)
from repro.evm import Op, assemble
from repro.lang import compile_source


class TestSelectorEntries:
    def test_compiled_dispatcher_recognised(self, token_contract):
        cfg = build_cfg(token_contract.code)
        entries = selector_entries(cfg)
        expected = {abi.selector for abi in token_contract.functions.values()}
        assert set(entries) == expected

    def test_entries_are_jumpdests(self, token_contract):
        cfg = build_cfg(token_contract.code)
        for entry in selector_entries(cfg).values():
            assert cfg.blocks[entry].instructions[0].op == Op.JUMPDEST

    def test_hand_written_code_without_dispatcher(self):
        cfg = build_cfg(assemble("PUSH 1\nPUSH 0\nSSTORE\nSTOP"))
        assert selector_entries(cfg) == {}


class TestReachability:
    def test_reachable_pcs_cover_block(self):
        code = assemble("""
            PUSH 1
            PUSH :a
            JUMPI
            STOP
        a:
            JUMPDEST
            PUSH 2
            POP
            STOP
        """)
        cfg = build_cfg(code)
        target = max(cfg.blocks)
        pcs = reachable_pcs(cfg, target)
        assert target in pcs
        assert 0 not in pcs  # entry block not reachable from the target

    def test_functions_have_disjoint_bodies(self):
        compiled = compile_source("""
            contract T {
                uint a;
                uint b;
                function setA(uint v) public { a = v; }
                function setB(uint v) public { b = v; }
            }
        """)
        cfg = build_cfg(compiled.code)
        reach = selector_reachability(cfg)
        set_a = reach[compiled.abi("setA").selector]
        set_b = reach[compiled.abi("setB").selector]
        # The bodies differ even if shared tails (revert/panic) overlap.
        assert set_a != set_b
        only_a = set_a - set_b
        only_b = set_b - set_a
        assert only_a and only_b

    def test_reachability_drives_static_sets(self, token_contract):
        """A mint transaction's static sets must not contain transfer's
        msg.sender-keyed slots."""
        from repro.analysis import CSAGBuilder
        from repro.chain.transaction import Transaction
        from repro.core import Address, StateKey, mapping_slot
        from repro.state import StateDB

        db = StateDB()
        token = Address.derive("dispatch-token")
        alice = Address.derive("dispatch-alice")
        bob = Address.derive("dispatch-bob")
        db.deploy_contract(token, token_contract.code, "Token")
        db.seed_genesis({alice: 10**18})
        builder = CSAGBuilder(db.codes.code_of)
        tx = Transaction(alice, token, 0, token_contract.encode_call("mint", bob, 5))
        csag = builder.build(tx, db.latest)
        bal = token_contract.slot_of("balanceOf")
        sender_key = StateKey(token, mapping_slot(alice.to_word(), bal))
        # transfer() would read balanceOf[msg.sender]; mint() must not.
        assert sender_key not in csag.static_read_keys
