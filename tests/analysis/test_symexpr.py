"""Symbolic expression tests: folding, evaluation, classification."""

import pytest

from repro.core import hash_words
from repro.analysis.symexpr import (
    BinOp,
    Calldata,
    Caller,
    CallValue,
    Const,
    SLoadVal,
    Sha3,
    Timestamp,
    TxEnvironment,
    Unknown,
    Unresolvable,
    contains_unknown,
    depends_on_state,
    evaluate,
    make_binop,
    simplify,
)

ENV = TxEnvironment(
    calldata=bytes([0xAA]) * 4 + (7).to_bytes(32, "big") + (9).to_bytes(32, "big"),
    caller=0x1234,
    call_value=55,
    block_number=10,
    timestamp=999,
)


def no_storage(_key):
    raise AssertionError("storage should not be consulted")


class TestSimplify:
    def test_const_fold_add(self):
        assert make_binop("+", Const(2), Const(3)) == Const(5)

    def test_const_fold_wraps(self):
        assert make_binop("+", Const(2**256 - 1), Const(1)) == Const(0)

    def test_sha3_fold(self):
        folded = simplify(Sha3((Const(5), Const(1))))
        assert folded == Const(hash_words(5, 1))

    def test_no_fold_with_symbol(self):
        expr = make_binop("+", Caller(), Const(1))
        assert isinstance(expr, BinOp)

    def test_all_operators_fold(self):
        cases = {
            "-": (10, 3, 7), "*": (4, 5, 20), "/": (9, 2, 4), "%": (9, 2, 1),
            "and": (0b1100, 0b1010, 0b1000), "or": (0b1100, 0b1010, 0b1110),
            "xor": (0b1100, 0b1010, 0b0110), "shl": (3, 1, 8), "shr": (3, 8, 1),
            "lt": (1, 2, 1), "gt": (1, 2, 0), "eq": (4, 4, 1),
        }
        for op, (a, b, expected) in cases.items():
            if op in ("shl", "shr"):
                # shift amount is the left operand (EVM order)
                assert make_binop(op, Const(a), Const(b)) == Const(expected)
            else:
                assert make_binop(op, Const(a), Const(b)) == Const(expected)


class TestEvaluate:
    def test_const(self):
        assert evaluate(Const(5), ENV, no_storage) == 5

    def test_calldata(self):
        assert evaluate(Calldata(4), ENV, no_storage) == 7
        assert evaluate(Calldata(36), ENV, no_storage) == 9

    def test_calldata_padding(self):
        # Offset 60 overlaps arg1's tail: 8 real bytes then zero padding.
        assert evaluate(Calldata(60), ENV, no_storage) == 9 << (8 * 24)

    def test_environment_values(self):
        assert evaluate(Caller(), ENV, no_storage) == 0x1234
        assert evaluate(CallValue(), ENV, no_storage) == 55
        assert evaluate(Timestamp(), ENV, no_storage) == 999

    def test_sha3(self):
        expr = Sha3((Caller(), Const(1)))
        assert evaluate(expr, ENV, no_storage) == hash_words(0x1234, 1)

    def test_binop(self):
        expr = BinOp("+", Calldata(4), Const(10))
        assert evaluate(expr, ENV, no_storage) == 17

    def test_sload_consults_reader(self):
        expr = SLoadVal(Const(3), site=77)
        value = evaluate(expr, ENV, lambda key: 42 if key == Const(3) else 0)
        assert value == 42

    def test_unknown_raises(self):
        with pytest.raises(Unresolvable):
            evaluate(Unknown(1), ENV, no_storage)

    def test_nested_unknown_raises(self):
        with pytest.raises(Unresolvable):
            evaluate(BinOp("+", Const(1), Unknown(2)), ENV, no_storage)


class TestClassification:
    def test_contains_unknown(self):
        assert contains_unknown(Unknown(1))
        assert contains_unknown(Sha3((Unknown(1), Const(2))))
        assert contains_unknown(SLoadVal(Unknown(3), 0))
        assert not contains_unknown(Sha3((Caller(), Const(1))))

    def test_depends_on_state(self):
        assert depends_on_state(SLoadVal(Const(0), 1))
        assert depends_on_state(BinOp("+", SLoadVal(Const(0), 1), Const(2)))
        assert depends_on_state(Sha3((SLoadVal(Const(0), 1), Const(5))))
        assert not depends_on_state(Sha3((Caller(), Const(1))))

    def test_str_forms(self):
        assert str(Calldata(4)) == "arg0"
        assert str(Calldata(36)) == "arg1"
        assert str(Calldata(2)) == "calldata[2]"
        assert str(Unknown(9)) == "–"
        assert "keccak" in str(Sha3((Caller(), Const(1))))
