"""DMVCC abort / re-execute paths (Algorithm 4).

The block below forces a deterministic intra-block misprediction:

* tx 0 ``openGate()``   — sets ``gate`` (snapshot has 0).
* tx 1 ``sneakyWrite``  — loops, then writes ``item`` only if ``gate > 0``.
  Pre-execution predicts from the snapshot, so the write is a surprise.
* tx 2 ``readItem()``   — no predicted writer of ``item``: dispatched
  immediately, reads the snapshot, and is aborted when tx 1's surprise
  write lands.
* tx 3 ``readSink()``   — consumes tx 2's early-visible ``sink`` write,
  so tx 2's abort must retract that version and cascade into tx 3.

Every test asserts the protocol's recovery obligation: aborted attempts'
writes and the reads that consumed them must not survive into the
committed outcome.
"""

from __future__ import annotations

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.lang import compile_source
from repro.state import StateDB
from repro.verify import TraceRecorder, check_block
from repro.verify.trace import (
    AbortEvent,
    PublishEvent,
    ReadEvent,
    RetractEvent,
)

SNEAK_SOURCE = """
contract Sneak {
    uint gate;
    uint item;
    uint sink;
    uint out2;

    function openGate() public { gate = 1; }

    function sneakyWrite(uint v) public {
        uint i = 0;
        while (i < 40) { i += 1; }
        if (gate > 0) { item = v; }
    }

    function readItem() public { sink = item; }
    function readSink() public { out2 = sink; }
}
"""

SNEAK = Address.derive("sneak")
USERS = [Address.derive(f"abort-u{i}") for i in range(4)]


@pytest.fixture(scope="module")
def sneak():
    return compile_source(SNEAK_SOURCE)


def sneak_db(compiled):
    db = StateDB()
    db.deploy_contract(SNEAK, compiled.code, "Sneak")
    db.seed_genesis({u: 10**18 for u in USERS})
    return db


def sneak_block(compiled):
    calls = [
        ("openGate",),
        ("sneakyWrite", 7),
        ("readItem",),
        ("readSink",),
    ]
    return [
        Transaction(USERS[i], SNEAK, 0, compiled.encode_call(*call))
        for i, call in enumerate(calls)
    ]


def slot_key(compiled, name):
    from repro.core import StateKey

    return StateKey(SNEAK, compiled.slot_of(name))


def run_traced(compiled, threads=4):
    db = sneak_db(compiled)
    recorder = TraceRecorder()
    executor = DMVCCExecutor().attach_recorder(recorder)
    execution = executor.execute_block(
        sneak_block(compiled), db.latest, db.codes.code_of, threads=threads
    )
    return recorder, execution, db


class TestAbortAndReExecute:
    def test_surprise_write_aborts_the_stale_reader(self, sneak):
        recorder, execution, _ = run_traced(sneak)
        aborted = {e.tx for e in recorder.events_of_type(AbortEvent)}
        assert 2 in aborted  # the stale reader re-executes
        finals = recorder.final_attempts()
        assert finals[2] >= 2
        assert execution.metrics.aborts == len(
            recorder.events_of_type(AbortEvent)
        )

    def test_committed_read_observes_the_surprise_write(self, sneak):
        recorder, _, _ = run_traced(sneak)
        item = slot_key(sneak, "item")
        committed = [
            e for e in recorder.committed_reads() if e.key == item
        ]
        assert committed, "re-executed reader must re-read item"
        for event in committed:
            assert event.version == 1  # tx 1's surprise write
            assert event.value == 7
        # The aborted first attempt read the snapshot instead.
        first_attempts = [
            e for e in recorder.events_of_type(ReadEvent)
            if e.key == item and e.attempt == 1
        ]
        assert first_attempts[0].version == -1
        assert first_attempts[0].value == 0

    @pytest.mark.sim_clock
    def test_abort_retracts_early_visible_writes(self, sneak):
        """tx 2 published ``sink`` early; its abort must retract that
        version (naming its reader as a victim) before re-execution."""
        recorder, _, _ = run_traced(sneak)
        sink = slot_key(sneak, "sink")
        assert any(
            e.tx == 2 and e.key == sink and e.early
            for e in recorder.events_of_type(PublishEvent)
        )
        retractions = [
            e for e in recorder.events_of_type(RetractEvent)
            if e.tx == 2 and e.key == sink
        ]
        assert retractions
        assert 3 in retractions[0].victims  # the cascade reaches tx 3

    def test_retraction_cascades_to_transitive_readers(self, sneak):
        recorder, _, _ = run_traced(sneak)
        aborted = {e.tx for e in recorder.events_of_type(AbortEvent)}
        assert 3 in aborted
        sink = slot_key(sneak, "sink")
        committed = [e for e in recorder.committed_reads() if e.key == sink]
        assert committed
        # After repair, tx 3 sees tx 2's re-published (correct) version.
        for event in committed:
            assert event.version == 2
            assert event.value == 7

    def test_aborted_attempt_values_do_not_leak_into_state(self, sneak):
        """The doomed first-attempt values (item=0 propagated into sink and
        out2) must be absent from the committed writes."""
        db = sneak_db(sneak)
        txs = sneak_block(sneak)
        execution = DMVCCExecutor().execute_block(
            txs, db.latest, db.codes.code_of, threads=4
        )
        serial = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        assert execution.writes == serial.writes
        assert execution.writes[slot_key(sneak, "sink")] == 7
        assert execution.writes[slot_key(sneak, "out2")] == 7

    @pytest.mark.sim_clock
    def test_oracle_classifies_the_leak_as_repaired(self, sneak):
        db = sneak_db(sneak)
        report, _ = check_block(
            DMVCCExecutor(), sneak_block(sneak), db.latest, db.codes.code_of,
            threads=4,
        )
        assert report.ok, report.render()
        assert report.flagged_early_visibility
        assert report.repaired_reads >= 1
        assert report.stats.unrepaired_violations == 0

    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    def test_recovery_correct_at_any_thread_count(self, sneak, threads):
        db = sneak_db(sneak)
        txs = sneak_block(sneak)
        execution = DMVCCExecutor().execute_block(
            txs, db.latest, db.codes.code_of, threads=threads
        )
        serial = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        assert execution.writes == serial.writes
        assert [r.result.success for r in execution.receipts] == [
            r.result.success for r in serial.receipts
        ]
