"""DMVCC protocol-path tests: the specific state transitions of
Algorithms 1–4 that the coarse workload tests may not isolate."""

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.state import StateDB

from .helpers import TOKEN, USERS, assert_serializable, token_db


class TestEtherOnlyBlocks:
    @pytest.mark.sim_clock
    def test_disjoint_transfers_fully_parallel(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[2 * i], USERS[2 * i + 1], 100 + i)
            for i in range(6)
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 6)
        assert execution.metrics.speedup > 5.5  # essentially perfect
        assert execution.metrics.aborts == 0

    @pytest.mark.sim_clock
    def test_fan_in_credits_commute(self, token_contract):
        """Everyone pays the same account: credits are ω̄, so the block
        still parallelises perfectly."""
        db = token_db(token_contract)
        sink = USERS[0]
        txs = [Transaction(USERS[i], sink, 10 + i) for i in range(1, 9)]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 8)
        assert execution.metrics.speedup > 7.0
        sink_key = StateKey.balance(sink)
        expected = 10**18 + sum(10 + i for i in range(1, 9))
        assert execution.writes[sink_key] == expected

    def test_fan_out_then_spend(self, token_contract):
        """The sink immediately spends the credits: its debit reads the
        merged deltas."""
        db = token_db(token_contract)
        sink, spender_target = USERS[0], USERS[9]
        txs = [Transaction(USERS[i], sink, 1_000) for i in range(1, 5)]
        txs.append(Transaction(sink, spender_target, 10**18 + 3_500))
        execution = assert_serializable(DMVCCExecutor(), txs, db, 5)
        assert execution.receipts[-1].result.success

    def test_insufficient_funds_deterministic(self, token_contract):
        db = token_db(token_contract)
        whale_drain = Transaction(USERS[0], USERS[1], 10**18)  # exact balance
        then_broke = Transaction(USERS[0], USERS[2], 1)        # now empty
        execution = assert_serializable(
            DMVCCExecutor(), [whale_drain, then_broke], db, 2
        )
        assert execution.receipts[0].result.success
        assert not execution.receipts[1].result.success


class TestMultiBlockChains:
    def test_serializability_across_committed_blocks(self, token_contract):
        """Blocks commit one after another; every block's parallel result
        must match serial given the previous block's commits."""
        db_parallel = token_db(token_contract)
        db_serial = token_db(token_contract)
        executor = DMVCCExecutor()
        serial = SerialExecutor()
        for round_ in range(4):
            txs = [
                Transaction(
                    USERS[(round_ + i) % 12], TOKEN, 0,
                    token_contract.encode_call(
                        "transfer", USERS[(round_ + i + 5) % 12], 20 + i
                    ),
                )
                for i in range(8)
            ]
            parallel_out = executor.execute_block(
                txs, db_parallel.latest, db_parallel.codes.code_of, threads=4
            )
            serial_out = serial.execute_block(
                txs, db_serial.latest, db_serial.codes.code_of
            )
            root_parallel = db_parallel.commit(parallel_out.writes).root_hash
            root_serial = db_serial.commit(serial_out.writes).root_hash
            assert root_parallel == root_serial, f"diverged at block {round_}"


class TestThreadLimits:
    def test_more_threads_than_txs(self, token_contract):
        db = token_db(token_contract)
        txs = [Transaction(USERS[0], USERS[1], 5)]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 64)
        assert execution.metrics.utilisation <= 1.0

    @pytest.mark.sim_clock
    def test_single_thread_equals_serial_time(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[i], USERS[i + 1], 100) for i in range(6)
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 1)
        assert execution.metrics.makespan == pytest.approx(
            execution.metrics.serial_time
        )

    @pytest.mark.parametrize("threads", [1, 2, 3, 5, 7, 13, 32])
    def test_any_thread_count_correct(self, token_contract, threads):
        db = token_db(token_contract)
        txs = [
            Transaction(
                USERS[i % 12], TOKEN, 0,
                token_contract.encode_call("transfer", USERS[(i + 1) % 12], 15),
            )
            for i in range(10)
        ]
        assert_serializable(DMVCCExecutor(), txs, db, threads)


class TestMakespanSanity:
    @pytest.mark.sim_clock
    def test_makespan_bounded_below_by_critical_tx(self, token_contract):
        db = token_db(token_contract)
        txs = [Transaction(USERS[i], USERS[i + 1], 10) for i in range(0, 8, 2)]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 8)
        longest = max(t.gas_used for t in execution.metrics.per_tx)
        assert execution.metrics.makespan >= longest

    def test_makespan_bounded_above_by_serial(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(
                USERS[i % 12], TOKEN, 0,
                token_contract.encode_call("transfer", USERS[(i + 3) % 12], 5),
            )
            for i in range(12)
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 4)
        # With zero aborts, parallel cannot be slower than serial.
        if execution.metrics.aborts == 0:
            assert execution.metrics.makespan <= execution.metrics.serial_time * 1.001

    def test_gantt_lanes_within_thread_budget(self, token_contract):
        """No more transactions may overlap in time than there are
        threads."""
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[2 * i], USERS[2 * i + 1], 50) for i in range(6)
        ]
        threads = 3
        execution = assert_serializable(DMVCCExecutor(), txs, db, threads)
        events = []
        for tx in execution.metrics.per_tx:
            events.append((tx.start_time, 1))
            events.append((tx.end_time, -1))
        live = peak = 0
        # Ends sort before starts at the same instant (a freed thread can
        # be reused immediately).
        for _time, delta in sorted(events, key=lambda e: (e[0], e[1])):
            live += delta
            peak = max(peak, live)
        assert peak <= threads
