"""Serial executor tests: the correctness oracle itself."""

from repro.chain.transaction import Transaction
from repro.core import StateKey, mapping_slot
from repro.executors import SerialExecutor, TxStatus

from .helpers import TOKEN, USERS, token_db


class TestSerialExecution:
    def test_sequential_visibility(self, token_contract):
        db = token_db(token_contract)
        a, b, c = USERS[0], USERS[1], USERS[2]
        txs = [
            Transaction(a, TOKEN, 0, token_contract.encode_call("transfer", b, 1_000)),
            # b now has 2000; forward 1500 (only possible if it saw tx 0)
            Transaction(b, TOKEN, 0, token_contract.encode_call("transfer", c, 1_500)),
        ]
        execution = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        assert all(r.result.success for r in execution.receipts)
        bal = token_contract.slot_of("balanceOf")
        assert execution.writes[StateKey(TOKEN, mapping_slot(c.to_word(), bal))] == 2_500

    def test_failed_tx_leaves_no_writes(self, token_contract):
        db = token_db(token_contract)
        a, b = USERS[0], USERS[1]
        txs = [
            Transaction(a, TOKEN, 0, token_contract.encode_call("transfer", b, 10**9)),
        ]
        execution = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        assert execution.receipts[0].result.status is TxStatus.REVERTED
        assert not execution.writes

    def test_ether_transfer(self, token_contract):
        db = token_db(token_contract)
        a, b = USERS[0], USERS[1]
        txs = [Transaction(a, b, 12345)]
        execution = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        assert execution.writes[StateKey.balance(b)] == 10**18 + 12345

    def test_metrics(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], USERS[1], 5),
            Transaction(USERS[1], USERS[2], 5),
        ]
        execution = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        metrics = execution.metrics
        assert metrics.scheduler == "serial"
        assert metrics.tx_count == 2
        assert metrics.speedup == 1.0
        assert metrics.makespan == metrics.serial_time
        assert metrics.aborts == 0
        assert metrics.utilisation == 1.0

    def test_failure_counted(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(
                USERS[0], TOKEN, 0,
                token_contract.encode_call("transfer", USERS[1], 10**9),
            ),
            Transaction(USERS[0], USERS[1], 5),
        ]
        execution = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        assert execution.metrics.deterministic_failures == 1
        assert execution.success_count == 1

    def test_commit_roundtrip_root(self, token_contract):
        """Serial execution then commit produces a reproducible root."""
        db1 = token_db(token_contract)
        db2 = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[1], 10)),
            Transaction(USERS[2], USERS[3], 999),
        ]
        ex1 = SerialExecutor().execute_block(txs, db1.latest, db1.codes.code_of)
        ex2 = SerialExecutor().execute_block(txs, db2.latest, db2.codes.code_of)
        assert db1.commit(ex1.writes).root_hash == db2.commit(ex2.writes).root_hash
