"""Shared executor-test scaffolding."""

from __future__ import annotations

from typing import List

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.executors import SerialExecutor
from repro.state import StateDB

USERS = [Address.derive(f"xuser{i}") for i in range(12)]
TOKEN = Address.derive("xtoken")
COUNTER = Address.derive("xcounter")


def token_db(token_contract, counter_contract=None, token_balances=1_000):
    """A StateDB with a deployed token, funded users, and token balances."""
    db = StateDB()
    db.deploy_contract(TOKEN, token_contract.code, "Token")
    if counter_contract is not None:
        db.deploy_contract(COUNTER, counter_contract.code, "Counter")
    bal_slot = token_contract.slot_of("balanceOf")
    storage = {
        StateKey(TOKEN, mapping_slot(u.to_word(), bal_slot)): token_balances
        for u in USERS
    }
    db.seed_genesis({u: 10**18 for u in USERS}, storage)
    return db


def reference_run(txs: List[Transaction], db: StateDB):
    """Serial write set for the given block (does not commit)."""
    return SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)


def assert_serializable(executor, txs, db, threads, **kwargs):
    """Execute with ``executor`` and assert serial equivalence; returns the
    BlockExecution."""
    reference = reference_run(txs, db)
    execution = executor.execute_block(
        txs, db.latest, db.codes.code_of, threads=threads, **kwargs
    )
    assert execution.writes == reference.writes, (
        f"{executor.name} diverged from serial at {threads} threads"
    )
    statuses = [r.result.status for r in execution.receipts]
    reference_statuses = [r.result.status for r in reference.receipts]
    assert statuses == reference_statuses
    return execution
