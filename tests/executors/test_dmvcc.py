"""DMVCC executor tests: serializability, aborts, early writes,
commutativity, and the protocol corner cases."""

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.executors import DMVCCExecutor, SerialExecutor

from .helpers import TOKEN, USERS, assert_serializable, token_db


class TestSerializability:
    @pytest.mark.parametrize("threads", [1, 2, 4, 16])
    def test_transfer_chain(self, token_contract, threads):
        """A dependent chain a->b->c->d must produce serial results."""
        db = token_db(token_contract)
        a, b, c, d = USERS[:4]
        txs = [
            Transaction(a, TOKEN, 0, token_contract.encode_call("transfer", b, 900)),
            Transaction(b, TOKEN, 0, token_contract.encode_call("transfer", c, 1_800)),
            Transaction(c, TOKEN, 0, token_contract.encode_call("transfer", d, 2_700)),
        ]
        assert_serializable(DMVCCExecutor(), txs, db, threads)

    @pytest.mark.parametrize("threads", [1, 4])
    def test_mixed_block(self, token_contract, threads):
        db = token_db(token_contract)
        txs = []
        for i in range(8):
            sender, recipient = USERS[i], USERS[(i + 3) % len(USERS)]
            txs.append(Transaction(
                sender, TOKEN, 0,
                token_contract.encode_call("transfer", recipient, 50 + i),
            ))
            txs.append(Transaction(sender, recipient, 10 + i))
        execution = assert_serializable(DMVCCExecutor(), txs, db, threads)
        assert execution.metrics.rescues == 0

    def test_branch_flip_recovered(self, token_contract):
        """T2's pre-execution predicts a revert (no funds), but T1 funds it
        in the same block — the success path's writes are unpredicted and
        must be recovered via the abort protocol."""
        db = token_db(token_contract)
        poor = Address.derive("pauper")
        rich = USERS[0]
        # poor has no token balance at the snapshot.
        txs = [
            Transaction(rich, TOKEN, 0, token_contract.encode_call("transfer", poor, 500)),
            Transaction(poor, TOKEN, 0, token_contract.encode_call("transfer", rich, 400)),
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 4)
        assert all(r.result.success for r in execution.receipts)

    def test_write_write_no_conflict(self, token_contract):
        """Two mints to different users write totalSupply — write versioning
        must let them run in parallel and still sum correctly."""
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0, token_contract.encode_call("mint", USERS[0], 100)),
            Transaction(USERS[1], TOKEN, 0, token_contract.encode_call("mint", USERS[1], 200)),
            Transaction(USERS[2], TOKEN, 0, token_contract.encode_call("mint", USERS[2], 300)),
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 3)
        supply = token_contract.slot_of("totalSupply")
        assert execution.writes[StateKey(TOKEN, supply)] == 600

    def test_deterministic_failures_preserved(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[1], 10**9)),
            Transaction(USERS[0], USERS[1], 7),
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 2)
        assert execution.metrics.deterministic_failures == 1

    def test_empty_block(self, token_contract):
        db = token_db(token_contract)
        execution = DMVCCExecutor().execute_block([], db.latest, db.codes.code_of, threads=4)
        assert execution.writes == {}
        assert execution.receipts == []

    def test_single_tx(self, token_contract):
        db = token_db(token_contract)
        txs = [Transaction(USERS[0], USERS[1], 1)]
        assert_serializable(DMVCCExecutor(), txs, db, 8)

    def test_self_transfer(self, token_contract):
        """Sender == recipient exercises the mixed blind/registered access
        path on one key."""
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[0], 10)),
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[1], 10)),
        ]
        assert_serializable(DMVCCExecutor(), txs, db, 2)


class TestCommutativeWrites:
    def test_parallel_commutative_increments(self, counter_contract):
        from repro.state import StateDB

        db = StateDB()
        counter = Address.derive("ctr")
        db.deploy_contract(counter, counter_contract.code, "Counter")
        db.seed_genesis({u: 10**18 for u in USERS})
        txs = [
            Transaction(u, counter, 0, counter_contract.encode_call("increment", i + 1))
            for i, u in enumerate(USERS[:8])
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 8)
        assert execution.writes[StateKey(counter, 0)] == sum(range(1, 9))
        assert execution.metrics.aborts == 0

    @pytest.mark.sim_clock
    def test_commutative_increments_fully_parallel(self, counter_contract):
        """With commutativity, 8 blind increments on one counter must run
        with (near-)perfect parallelism; without it, they serialise."""
        from repro.state import StateDB

        def run(enable):
            db = StateDB()
            counter = Address.derive("ctr2")
            db.deploy_contract(counter, counter_contract.code, "Counter")
            db.seed_genesis({u: 10**18 for u in USERS})
            txs = [
                Transaction(u, counter, 0, counter_contract.encode_call("increment", 5))
                for u in USERS[:8]
            ]
            return DMVCCExecutor(enable_commutative=enable).execute_block(
                txs, db.latest, db.codes.code_of, threads=8
            )

        with_cw = run(True)
        without_cw = run(False)
        assert with_cw.writes == without_cw.writes
        assert with_cw.metrics.makespan < without_cw.metrics.makespan

    def test_checked_increment_not_commutative(self, counter_contract):
        """incrementChecked reads the counter in a require, so DMVCC must
        serialise it — and still be correct."""
        from repro.state import StateDB

        db = StateDB()
        counter = Address.derive("ctr3")
        db.deploy_contract(counter, counter_contract.code, "Counter")
        db.seed_genesis({u: 10**18 for u in USERS})
        txs = [
            Transaction(u, counter, 0,
                        counter_contract.encode_call("incrementChecked", 3))
            for u in USERS[:6]
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 6)
        assert execution.writes[StateKey(counter, 0)] == 18


class TestEarlyWriteVisibility:
    @pytest.mark.sim_clock
    def test_early_write_shortens_chains(self, nft_contract):
        """NFT mints chain on nextTokenId; the counter write happens well
        before transaction end, so early visibility must compress the
        chain's makespan."""
        from repro.state import StateDB

        def run(enable):
            db = StateDB()
            nft = Address.derive("nft-ew")
            db.deploy_contract(nft, nft_contract.code, "NFT")
            db.seed_genesis({u: 10**18 for u in USERS})
            txs = [
                Transaction(u, nft, 0, nft_contract.encode_call("mint"))
                for u in USERS[:8]
            ]
            reference = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
            execution = DMVCCExecutor(enable_early_write=enable).execute_block(
                txs, db.latest, db.codes.code_of, threads=8
            )
            assert execution.writes == reference.writes
            return execution

        with_ew = run(True)
        without_ew = run(False)
        assert with_ew.metrics.makespan < without_ew.metrics.makespan

    def test_gas_insufficient_blocks_release(self, token_contract):
        """A transaction given barely enough gas must not publish early (the
        Algorithm 2 gas check) yet still complete correctly."""
        db = token_db(token_contract)
        data = token_contract.encode_call("transfer", USERS[1], 10)
        # Find the exact gas needed, then give exactly that (no slack).
        probe = SerialExecutor().execute_block(
            [Transaction(USERS[0], TOKEN, 0, data)], db.latest, db.codes.code_of
        )
        exact = probe.receipts[0].result.gas_used
        txs = [Transaction(USERS[0], TOKEN, 0, data, gas_limit=exact)]
        assert_serializable(DMVCCExecutor(), txs, db, 2)


class TestAbortProtocol:
    def test_abort_metrics_exposed(self, token_contract):
        db = token_db(token_contract)
        poor = Address.derive("pauper2")
        txs = [
            Transaction(USERS[0], TOKEN, 0, token_contract.encode_call("transfer", poor, 500)),
            Transaction(poor, TOKEN, 0, token_contract.encode_call("transfer", USERS[0], 400)),
        ]
        execution = assert_serializable(DMVCCExecutor(), txs, db, 2)
        metrics = execution.metrics
        assert metrics.executions >= metrics.tx_count
        assert metrics.aborts == metrics.executions - metrics.tx_count

    def test_cascading_abort_converges(self, token_contract):
        """A chain of dependent transfers all predicted-revert: each level's
        re-execution invalidates the next."""
        db = token_db(token_contract)
        paupers = [Address.derive(f"chainp{i}") for i in range(4)]
        txs = [Transaction(
            USERS[0], TOKEN, 0, token_contract.encode_call("transfer", paupers[0], 1_000)
        )]
        for i in range(3):
            txs.append(Transaction(
                paupers[i], TOKEN, 0,
                token_contract.encode_call("transfer", paupers[i + 1], 1_000 - i),
            ))
        execution = assert_serializable(DMVCCExecutor(), txs, db, 4)
        assert all(r.result.success for r in execution.receipts)

    def test_determinism_across_runs(self, token_contract):
        """Identical inputs produce identical metrics and writes."""
        def run():
            db = token_db(token_contract)
            txs = [
                Transaction(USERS[i], TOKEN, 0,
                            token_contract.encode_call("transfer", USERS[(i + 1) % 6], 25))
                for i in range(6)
            ]
            ex = DMVCCExecutor().execute_block(txs, db.latest, db.codes.code_of, threads=4)
            return ex.writes, ex.metrics.makespan, ex.metrics.aborts

        assert run() == run()


class TestFeatureFlagNames:
    def test_names(self):
        assert DMVCCExecutor().name == "dmvcc"
        assert DMVCCExecutor(enable_early_write=False).name == "dmvcc-noEW"
        assert DMVCCExecutor(enable_commutative=False).name == "dmvcc-noCW"
        assert DMVCCExecutor(
            enable_early_write=False, enable_commutative=False
        ).name == "dmvcc-wv"
