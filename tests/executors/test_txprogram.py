"""Transaction-program tests: the uniform event stream."""

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.evm.events import StorageRead, StorageWrite
from repro.evm.opcodes import intrinsic_gas
from repro.executors.txprogram import (
    StorageIncrement,
    TxStatus,
    transaction_program,
)

ALICE = Address.derive("alice")
BOB = Address.derive("bob")


def drain(tx, code_resolver=lambda a: b"", state=None):
    """Run a program answering reads from ``state``; collect events."""
    state = state or {}
    events = []
    program = transaction_program(tx, code_resolver)
    to_send = None
    while True:
        try:
            event = program.send(to_send)
        except StopIteration as stop:
            return stop.value, events
        events.append(event)
        to_send = None
        if isinstance(event, StorageRead):
            to_send = state.get(event.key, 0)


class TestPlainTransfer:
    def test_successful_transfer_events(self):
        tx = Transaction(ALICE, BOB, 100)
        state = {StateKey.balance(ALICE): 500}
        result, events = drain(tx, state=state)
        assert result.status is TxStatus.SUCCESS
        assert result.gas_used == intrinsic_gas(b"")
        kinds = [type(e).__name__ for e in events]
        assert kinds == ["StorageRead", "StorageWrite", "StorageIncrement"]
        write = events[1]
        assert write.key == StateKey.balance(ALICE)
        assert write.value == 400
        increment = events[2]
        assert increment.key == StateKey.balance(BOB)
        assert increment.delta == 100

    def test_insufficient_funds(self):
        tx = Transaction(ALICE, BOB, 100)
        result, events = drain(tx, state={StateKey.balance(ALICE): 50})
        assert result.status is TxStatus.INSUFFICIENT_FUNDS
        assert len(events) == 1  # only the balance check read

    def test_zero_value_no_balance_access(self):
        # With value == 0 the funding check cannot fire, so the program
        # must touch no balance at all (a snapshot read here would be a
        # state access no analysis predicts).
        tx = Transaction(ALICE, BOB, 0)
        result, events = drain(tx)
        assert result.status is TxStatus.SUCCESS
        assert events == []

    def test_gas_offsets_cumulative(self):
        tx = Transaction(ALICE, BOB, 100)
        _, events = drain(tx, state={StateKey.balance(ALICE): 500})
        assert events[0].gas_used == 0
        assert events[1].gas_used == intrinsic_gas(b"")


class TestContractCall:
    def test_events_rebased_by_intrinsic_gas(self, counter_contract):
        contract = Address.derive("counter-prog")
        data = counter_contract.encode_call("increment", 5)
        tx = Transaction(ALICE, contract, 0, data)
        resolver = lambda a: counter_contract.code if a == contract else b""
        result, events = drain(tx, code_resolver=resolver,
                               state={StateKey.balance(ALICE): 10**18})
        assert result.status is TxStatus.SUCCESS
        base = intrinsic_gas(data)
        storage_events = [e for e in events if isinstance(e, (StorageRead, StorageWrite))]
        contract_events = [e for e in storage_events if e.key.address == contract]
        assert contract_events
        assert all(e.gas_used >= base for e in contract_events)
        assert result.gas_used > base

    def test_reverted_call_status(self, token_contract):
        contract = Address.derive("token-prog")
        data = token_contract.encode_call("transfer", BOB, 10**9)
        tx = Transaction(ALICE, contract, 0, data)
        resolver = lambda a: token_contract.code if a == contract else b""
        result, _ = drain(tx, code_resolver=resolver,
                          state={StateKey.balance(ALICE): 10**18})
        assert result.status is TxStatus.REVERTED

    def test_intrinsic_gas_exceeding_limit(self):
        tx = Transaction(ALICE, BOB, 0, b"\x01" * 100, gas_limit=21_100)
        result, events = drain(tx)
        assert result.status is TxStatus.OUT_OF_GAS
        assert not events

    def test_out_of_gas_in_contract(self, counter_contract):
        contract = Address.derive("counter-oog")
        data = counter_contract.encode_call("increment", 5)
        tx = Transaction(ALICE, contract, 0, data, gas_limit=intrinsic_gas(data) + 50)
        resolver = lambda a: counter_contract.code if a == contract else b""
        result, _ = drain(tx, code_resolver=resolver,
                          state={StateKey.balance(ALICE): 10**18})
        assert result.status is TxStatus.OUT_OF_GAS
        assert result.gas_used == tx.gas_limit
