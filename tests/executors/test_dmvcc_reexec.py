"""Incremental re-execution: revalidation, checkpoint resume, C-SAG cache.

Three deterministic scenarios exercise the abort-recovery fast paths that
``docs/REEXECUTION.md`` describes:

* **Revalidation** — a surprise write lands the *same value* the aborted
  reader already observed, so the completed result is reinstated without
  executing a single instruction.
* **Resume** — a reader's second read is invalidated while its first still
  holds; recovery restarts from the checkpoint before the invalidated
  read instead of from scratch.
* **C-SAG caching** — re-running an identical block against the same
  snapshot reuses the refined C-SAGs instead of re-pre-executing.

A workload-level test then confirms the features pay off (and stay
serializable) on an abort-heavy block.
"""

from __future__ import annotations

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.lang import compile_source
from repro.state import StateDB
from repro.verify import TraceRecorder, check_block
from repro.verify.trace import AbortEvent, ReadEvent, RetractEvent
from repro.workload import Workload, WorkloadConfig

CONTRACT = Address.derive("reexec")
USERS = [Address.derive(f"reexec-u{i}") for i in range(4)]

REEXEC_SOURCE = """
contract Reexec {
    uint gate;
    uint item;
    uint stable;
    uint out;

    function openGate() public { gate = 1; }

    function sneakyWrite(uint v) public {
        uint i = 0;
        while (i < 40) { i += 1; }
        if (gate > 0) { item = v; }
    }

    function readItem() public { out = item; }

    function readBoth() public {
        uint acc = stable;
        uint j = 0;
        while (j < 10) { j += 1; }
        out = acc + item;
    }
}
"""


@pytest.fixture(scope="module")
def compiled():
    return compile_source(REEXEC_SOURCE)


def slot_key(compiled, name):
    return StateKey(CONTRACT, compiled.slot_of(name))


def make_db(compiled, storage=None):
    db = StateDB()
    db.deploy_contract(CONTRACT, compiled.code, "Reexec")
    db.seed_genesis({u: 10**18 for u in USERS})
    if storage:
        db.commit({slot_key(compiled, name): value
                   for name, value in storage.items()})
    return db


def make_block(compiled, calls):
    return [
        Transaction(USERS[i], CONTRACT, 0, compiled.encode_call(*call))
        for i, call in enumerate(calls)
    ]


def run_traced(compiled, db, txs, threads=4, **executor_kwargs):
    recorder = TraceRecorder()
    executor = DMVCCExecutor(**executor_kwargs).attach_recorder(recorder)
    execution = executor.execute_block(
        txs, db.latest, db.codes.code_of, threads=threads)
    return recorder, execution


class TestRevalidationFastPath:
    """tx 1's surprise write stores the value ``item`` already held, so the
    aborted reader's read set re-resolves identically: zero re-execution."""

    CALLS = [("openGate",), ("sneakyWrite", 7), ("readItem",)]

    def test_same_value_write_revalidates_without_reexecution(self, compiled):
        db = make_db(compiled, storage={"item": 7})
        txs = make_block(compiled, self.CALLS)
        recorder, execution = run_traced(compiled, db, txs)

        aborted = {e.tx for e in recorder.events_of_type(AbortEvent)}
        assert 2 in aborted, "the surprise write must still abort the reader"
        assert execution.metrics.revalidation_hits >= 1
        assert execution.metrics.per_tx[2].revalidation_hits >= 1
        # The reinstated result skipped the whole second execution.
        assert execution.metrics.per_tx[2].resumes == 0
        assert execution.metrics.instructions_skipped > 0

        serial = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of)
        assert execution.writes == serial.writes
        assert execution.writes[slot_key(compiled, "out")] == 7

    def test_revalidated_reads_reanchor_to_the_new_version(self, compiled):
        """The kept read set is re-emitted under the new attempt, anchored
        to the surprise writer's version (the oracle's dependency view)."""
        db = make_db(compiled, storage={"item": 7})
        txs = make_block(compiled, self.CALLS)
        recorder, _execution = run_traced(compiled, db, txs)

        item = slot_key(compiled, "item")
        committed = [e for e in recorder.committed_reads() if e.key == item]
        assert committed
        for event in committed:
            assert event.version == 1  # tx 1's (same-value) write
            assert event.value == 7
        # The first attempt read the snapshot; the reinstated attempt is a
        # re-emission, not a re-execution, yet carries a higher attempt no.
        attempts = {e.attempt for e in recorder.events_of_type(ReadEvent)
                    if e.tx == 2 and e.key == item}
        assert len(attempts) >= 2

    def test_revalidation_keeps_published_writes(self, compiled):
        """No retraction happens on the revalidation path: the completed
        attempt's writes stay valid as-published."""
        db = make_db(compiled, storage={"item": 7})
        txs = make_block(compiled, self.CALLS)
        recorder, _execution = run_traced(compiled, db, txs)
        retracted = [e for e in recorder.events_of_type(RetractEvent)
                     if e.tx == 2]
        assert retracted == []

    def test_oracle_accepts_the_revalidated_schedule(self, compiled):
        db = make_db(compiled, storage={"item": 7})
        report, _ = check_block(
            DMVCCExecutor(), make_block(compiled, self.CALLS),
            db.latest, db.codes.code_of, threads=4)
        assert report.ok, report.render()

    def test_disabled_revalidation_falls_back_to_reexecution(self, compiled):
        db = make_db(compiled, storage={"item": 7})
        txs = make_block(compiled, self.CALLS)
        _recorder, execution = run_traced(
            compiled, db, txs, enable_revalidation=False)
        assert execution.metrics.revalidation_hits == 0
        serial = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of)
        assert execution.writes == serial.writes


class TestCheckpointResumePath:
    """tx 2 reads ``stable`` (still valid) then ``item`` (invalidated by the
    surprise write): recovery resumes from the checkpoint before the
    ``item`` read instead of restarting."""

    CALLS = [("openGate",), ("sneakyWrite", 7), ("readBoth",)]

    @pytest.mark.sim_clock
    def test_aborted_reader_resumes_from_checkpoint(self, compiled):
        db = make_db(compiled, storage={"stable": 100})
        txs = make_block(compiled, self.CALLS)
        recorder, execution = run_traced(compiled, db, txs)

        aborted = {e.tx for e in recorder.events_of_type(AbortEvent)}
        assert 2 in aborted
        assert execution.metrics.resumes >= 1
        assert execution.metrics.per_tx[2].resumes >= 1
        assert execution.metrics.instructions_skipped > 0
        # Resume replays strictly less than a full restart would have.
        per = execution.metrics.per_tx[2]
        assert per.replayed_instructions < per.instructions_final

        serial = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of)
        assert execution.writes == serial.writes
        assert execution.writes[slot_key(compiled, "out")] == 107

    def test_resumed_attempt_rereads_only_the_invalidated_suffix(
            self, compiled):
        """The final attempt's read of ``item`` observes the surprise write;
        its read of ``stable`` is the re-emitted (still valid) prefix."""
        db = make_db(compiled, storage={"stable": 100})
        txs = make_block(compiled, self.CALLS)
        recorder, _execution = run_traced(compiled, db, txs)

        item = slot_key(compiled, "item")
        stable = slot_key(compiled, "stable")
        committed_item = [
            e for e in recorder.committed_reads() if e.key == item]
        assert committed_item
        for event in committed_item:
            assert event.version == 1
            assert event.value == 7
        committed_stable = [
            e for e in recorder.committed_reads() if e.key == stable]
        assert committed_stable
        for event in committed_stable:
            assert event.value == 100

    def test_oracle_accepts_the_resumed_schedule(self, compiled):
        db = make_db(compiled, storage={"stable": 100})
        report, _ = check_block(
            DMVCCExecutor(), make_block(compiled, self.CALLS),
            db.latest, db.codes.code_of, threads=4)
        assert report.ok, report.render()

    @pytest.mark.parametrize("threads", [2, 4, 8])
    def test_recovery_correct_at_any_thread_count(self, compiled, threads):
        db = make_db(compiled, storage={"stable": 100})
        txs = make_block(compiled, self.CALLS)
        execution = DMVCCExecutor().execute_block(
            txs, db.latest, db.codes.code_of, threads=threads)
        serial = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of)
        assert execution.writes == serial.writes


class TestCSAGCache:
    def test_repeat_block_reuses_cached_csags(self, compiled):
        db = make_db(compiled)
        txs = make_block(
            compiled, [("openGate",), ("sneakyWrite", 7), ("readItem",)])
        executor = DMVCCExecutor()
        first = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=4)
        misses_after_first = executor._csag_cache.misses
        assert misses_after_first >= len(txs)

        second = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=4)
        assert executor._csag_cache.hits >= len(txs)
        assert executor._csag_cache.misses == misses_after_first
        assert second.writes == first.writes

    def test_committed_state_change_invalidates_cache(self, compiled):
        """The cache key carries the snapshot root: executing against a new
        snapshot must re-refine, never reuse stale predictions."""
        db = make_db(compiled)
        txs = make_block(
            compiled, [("openGate",), ("sneakyWrite", 7), ("readItem",)])
        executor = DMVCCExecutor()
        first = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=4)
        db.commit(first.writes)
        hits_after_first = executor._csag_cache.hits
        second = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=4)
        assert executor._csag_cache.hits == hits_after_first
        serial = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of)
        assert second.writes == serial.writes


def abort_heavy_workload():
    """Scarce funds + hot keys: the same recipe benchmarks/bench_reexec.py
    uses to provoke data-dependent aborts."""
    return Workload(WorkloadConfig(
        users=6,
        erc20_tokens=2,
        dex_pools=1,
        nft_collections=1,
        icos=1,
        contract_fraction=0.9,
        hot_access_prob=0.8,
        hot_contract_count=1,
        capped_ico=True,
        exchange_deposit_prob=0.8,
        liquidity_prob=0.8,
        nft_mint_prob=0.5,
        zipf_alpha=1.1,
        token_funds=300,
        seed=1,
    ))


class TestAbortHeavyWorkload:
    @pytest.mark.sim_clock
    def test_features_cut_replay_and_stay_serializable(self):
        workload = abort_heavy_workload()
        txs = workload.transactions(120)
        snapshot = workload.db.latest
        resolver = workload.db.codes.code_of
        reference = SerialExecutor().execute_block(txs, snapshot, resolver)

        restart = DMVCCExecutor(
            enable_checkpoint_resume=False, enable_revalidation=False,
        ).execute_block(txs, snapshot, resolver, threads=32)
        resume = DMVCCExecutor().execute_block(
            txs, snapshot, resolver, threads=32)

        assert restart.writes == reference.writes
        assert resume.writes == reference.writes
        assert restart.metrics.aborts > 0, "workload must provoke aborts"
        assert resume.metrics.resumes > 0
        assert (resume.metrics.replayed_instructions
                < restart.metrics.replayed_instructions)
