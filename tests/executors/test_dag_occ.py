"""DAG and OCC baseline executor tests."""

import pytest

from repro.analysis import CSAGBuilder
from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.executors import DAGExecutor, OCCExecutor
from repro.executors.dag import build_conflict_dag

from .helpers import TOKEN, USERS, assert_serializable, token_db


class TestConflictDAG:
    def _csags(self, token_contract, txs, db):
        builder = CSAGBuilder(db.codes.code_of)
        return [builder.build(tx, db.latest) for tx in txs]

    def test_variable_granularity_conflicts_within_token(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[1], 1)),
            Transaction(USERS[2], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[3], 1)),
        ]
        deps = build_conflict_dag(self._csags(token_contract, txs, db), "variable")
        # Coarse analysis: both touch the balanceOf mapping -> conflict.
        assert deps[1] == {0}

    def test_slot_granularity_no_conflict_for_disjoint_users(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[1], 1)),
            Transaction(USERS[2], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[3], 1)),
        ]
        deps = build_conflict_dag(self._csags(token_contract, txs, db), "slot")
        assert deps[1] == set()

    def test_write_write_is_a_conflict(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("mint", USERS[0], 1)),
            Transaction(USERS[1], TOKEN, 0,
                        token_contract.encode_call("mint", USERS[1], 1)),
        ]
        # Both write totalSupply: w-w conflict at both granularities.
        for granularity in ("variable", "slot"):
            deps = build_conflict_dag(
                self._csags(token_contract, txs, db), granularity
            )
            assert deps[1] == {0}

    def test_ether_transfers_disjoint(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], USERS[1], 5),
            Transaction(USERS[2], USERS[3], 5),
        ]
        deps = build_conflict_dag(self._csags(token_contract, txs, db), "variable")
        assert deps[1] == set()


class TestDAGExecutor:
    @pytest.mark.parametrize("threads", [1, 4, 16])
    def test_serializable(self, token_contract, threads):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[i], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[(i + 1) % 8], 10 + i))
            for i in range(8)
        ] + [Transaction(USERS[i], USERS[i + 1], 100) for i in range(4)]
        execution = assert_serializable(DAGExecutor(), txs, db, threads)
        assert execution.metrics.aborts == 0  # DAG never aborts

    def test_slot_granularity_faster(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[i], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[(i + 6) % 12], 1))
            for i in range(6)
        ]
        coarse = assert_serializable(DAGExecutor(), txs, db, 6)
        fine = assert_serializable(DAGExecutor(granularity="slot"), txs, db, 6)
        assert fine.metrics.makespan <= coarse.metrics.makespan

    def test_failed_tx_publishes_nothing(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[0], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[1], 10**9)),
        ]
        execution = DAGExecutor().execute_block(txs, db.latest, db.codes.code_of, threads=2)
        assert not execution.writes


class TestOCCExecutor:
    @pytest.mark.parametrize("threads", [1, 4, 16])
    def test_serializable(self, token_contract, threads):
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[i], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[(i + 1) % 8], 10 + i))
            for i in range(8)
        ]
        assert_serializable(OCCExecutor(), txs, db, threads)

    def test_single_thread_never_aborts(self, token_contract):
        """One thread means fully sequential optimistic execution: every
        transaction sees its predecessors' writes."""
        db = token_db(token_contract)
        txs = [
            Transaction(USERS[i], TOKEN, 0,
                        token_contract.encode_call("transfer", USERS[(i + 1) % 8], 10))
            for i in range(8)
        ]
        execution = assert_serializable(OCCExecutor(), txs, db, 1)
        assert execution.metrics.aborts == 0

    def test_contention_causes_aborts(self, counter_contract):
        """Checked increments on one counter conflict pairwise: concurrent
        optimistic execution must abort and re-execute."""
        from repro.state import StateDB

        db = StateDB()
        counter = Address.derive("occ-ctr")
        db.deploy_contract(counter, counter_contract.code, "Counter")
        db.seed_genesis({u: 10**18 for u in USERS})
        txs = [
            Transaction(u, counter, 0,
                        counter_contract.encode_call("incrementChecked", 1))
            for u in USERS[:8]
        ]
        execution = assert_serializable(OCCExecutor(), txs, db, 8)
        assert execution.metrics.aborts > 0
        assert execution.writes[StateKey(counter, 0)] == 8

    def test_branch_flip_handled(self, token_contract):
        db = token_db(token_contract)
        poor = Address.derive("occ-pauper")
        txs = [
            Transaction(USERS[0], TOKEN, 0, token_contract.encode_call("transfer", poor, 500)),
            Transaction(poor, TOKEN, 0, token_contract.encode_call("transfer", USERS[0], 400)),
        ]
        execution = assert_serializable(OCCExecutor(), txs, db, 2)
        assert all(r.result.success for r in execution.receipts)

    def test_determinism(self, token_contract):
        def run():
            db = token_db(token_contract)
            txs = [
                Transaction(USERS[i], TOKEN, 0,
                            token_contract.encode_call("transfer", USERS[(i + 1) % 6], 25))
                for i in range(6)
            ]
            ex = OCCExecutor().execute_block(txs, db.latest, db.codes.code_of, threads=4)
            return ex.writes, ex.metrics.makespan, ex.metrics.aborts

        assert run() == run()
