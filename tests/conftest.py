"""Shared fixtures: compiled contracts, funded chains, tx helpers."""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(config, items):
    """Skip ``sim_clock``-marked tests when the environment routes every
    executor onto a real backend (threads/processes).  Those tests assert
    discrete-event-clock internals — makespan, early-write visibility,
    mid-flight checkpoint resume — that real workers, which run each
    transaction to completion off the simulated timeline, legitimately do
    not reproduce.  The parity contract on real backends is receipts,
    write sets, and roots, which the substrate suites cover."""
    backend = os.environ.get("REPRO_SUBSTRATE", "sim")
    if backend not in ("threads", "processes"):
        return
    skip = pytest.mark.skip(
        reason=f"simulated-clock assertion; default substrate is {backend}")
    for item in items:
        if "sim_clock" in item.keywords:
            item.add_marker(skip)

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.executors.serial import SerialExecutor, run_tx_serially
from repro.lang import compile_source
from repro.state import StateDB
from repro.workload.contracts import (
    COUNTER_SOURCE,
    DEX_POOL_SOURCE,
    ERC20_SOURCE,
    ICO_SOURCE,
    NFT_SOURCE,
    PAPER_EXAMPLE_SOURCE,
)

TOKEN_SOURCE = """
contract Token {
    uint totalSupply;
    mapping(address => uint) balanceOf;

    function mint(address to, uint amount) public {
        totalSupply += amount;
        balanceOf[to] += amount;
    }

    function transfer(address to, uint amount) public {
        require(balanceOf[msg.sender] >= amount);
        balanceOf[msg.sender] -= amount;
        balanceOf[to] += amount;
    }

    function balanceOfUser(address who) public view returns (uint) {
        return balanceOf[who];
    }
}
"""


@pytest.fixture(scope="session")
def token_contract():
    return compile_source(TOKEN_SOURCE)


@pytest.fixture(scope="session")
def erc20_contract():
    return compile_source(ERC20_SOURCE)


@pytest.fixture(scope="session")
def counter_contract():
    return compile_source(COUNTER_SOURCE)


@pytest.fixture(scope="session")
def pool_contract():
    return compile_source(DEX_POOL_SOURCE)


@pytest.fixture(scope="session")
def nft_contract():
    return compile_source(NFT_SOURCE)


@pytest.fixture(scope="session")
def ico_contract():
    return compile_source(ICO_SOURCE)


@pytest.fixture(scope="session")
def example_contract():
    return compile_source(PAPER_EXAMPLE_SOURCE)


class ChainHarness:
    """A tiny single-node chain for tests: deploy, fund, call, commit."""

    def __init__(self) -> None:
        self.db = StateDB()
        self._balances = {}
        self._sealed = False

    def fund(self, address: Address, amount: int) -> None:
        assert not self._sealed, "fund before first use"
        self._balances[address] = amount

    def user(self, label: str, funds: int = 10**18) -> Address:
        address = Address.derive(label)
        if not self._sealed:
            self._balances.setdefault(address, funds)
        return address

    def deploy(self, label: str, compiled) -> Address:
        address = Address.derive(label)
        self.db.deploy_contract(address, compiled.code, compiled.name)
        return address

    def _seal(self) -> None:
        if not self._sealed:
            self.db.seed_genesis(self._balances)
            self._sealed = True

    def execute(self, txs) -> "tuple":
        """Run txs serially as one block and commit; returns (execution, snapshot)."""
        self._seal()
        execution = SerialExecutor().execute_block(
            txs, self.db.latest, self.db.codes.code_of
        )
        snapshot = self.db.commit(execution.writes)
        return execution, snapshot

    def call(self, sender: Address, to: Address, compiled, fn: str, *args,
             value: int = 0):
        """Execute a single call transaction; returns (result, snapshot)."""
        tx = Transaction(sender, to, value, compiled.encode_call(fn, *args))
        execution, snapshot = self.execute([tx])
        return execution.receipts[0].result, snapshot

    def storage(self, address: Address, slot: int) -> int:
        self._seal()
        return self.db.latest.get(StateKey(address, slot))

    def mapping_value(self, address: Address, compiled, var: str, key) -> int:
        self._seal()
        key_word = key.to_word() if isinstance(key, Address) else int(key)
        slot = mapping_slot(key_word, compiled.slot_of(var))
        return self.db.latest.get(StateKey(address, slot))


@pytest.fixture
def chain():
    return ChainHarness()
