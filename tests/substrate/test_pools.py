"""Mechanics of the real worker pools: batching, collection, crash
respawn, timeouts — independent of any executor."""

import time

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.core.errors import SchedulingError
from repro.evm.environment import BlockContext
from repro.lang import compile_source
from repro.substrate import TxTask, execute_tx_task, make_pool
from repro.workload import ERC20_SOURCE


@pytest.fixture(scope="module")
def tasks():
    """Eight independent ERC20 transfers, pre-resolved views."""
    erc20 = compile_source(ERC20_SOURCE)
    token = Address.derive("pool-token")
    balance_of = erc20.slot_of("balanceOf")
    built = []
    for i in range(8):
        sender = Address.derive(f"pool-sender-{i}")
        receiver = Address.derive(f"pool-receiver-{i}")
        sender_key = StateKey(token, mapping_slot(sender.to_word(), balance_of))
        receiver_key = StateKey(
            token, mapping_slot(receiver.to_word(), balance_of))
        tx = Transaction(sender, token, 0,
                         erc20.encode_call("transfer", receiver, 1 + i))
        built.append(TxTask(
            index=i, attempt=1, ticket=0, tx=tx,
            view={sender_key: 100, receiver_key: 0},
            block=BlockContext(), codes={token: erc20.code},
        ))
    return built


def _collect_all(pool, expected):
    outcomes = {}
    deadline = time.monotonic() + 30.0
    while len(outcomes) < expected:
        assert time.monotonic() < deadline, "pool did not drain"
        for event in pool.collect():
            assert event.kind != "error", event.message
            if event.kind == "outcome":
                outcomes[event.outcome.index] = event.outcome
    return outcomes


@pytest.mark.parametrize("kind", ["threads", "processes"])
def test_pool_round_trip_matches_direct_execution(kind, tasks):
    """Outcomes collected through a pool equal running the task driver
    directly — the transport adds nothing and loses nothing."""
    with make_pool(kind, 3) as pool:
        for task in tasks:
            pool.submit(task.index % pool.size, task)
        outcomes = _collect_all(pool, len(tasks))
    assert sorted(outcomes) == [t.index for t in tasks]
    for task in tasks:
        direct = execute_tx_task(task, {})
        outcome = outcomes[task.index]
        assert outcome.ok and outcome.result.success
        assert outcome.writes_abs == direct.writes_abs
        assert outcome.reads == direct.reads
        assert outcome.result.gas_used == direct.result.gas_used


def test_submit_buffers_until_collect(tasks):
    """submit() alone sends nothing; the batch goes out on collect()."""
    with make_pool("threads", 2) as pool:
        pool.submit(0, tasks[0])
        assert pool.inflight_count == 1
        outcomes = _collect_all(pool, 1)
    assert outcomes[0].ok


@pytest.mark.slow
def test_process_crash_is_reported_and_worker_respawns(tasks):
    """SIGKILL mid-task: the pool reports the crash with the lost tasks,
    respawns the worker, and the re-dispatched tasks complete."""
    with make_pool("processes", 2, worker_delay=0.2) as pool:
        victim_pid = pool.pid_of(0)
        for task in tasks[:4]:
            pool.submit(task.index % 2, task)
        pool.flush()
        time.sleep(0.05)  # let the batch land before the kill
        pool.kill_worker(0)

        outcomes = {}
        lost = []
        deadline = time.monotonic() + 30.0
        while len(outcomes) + len(lost) < 4:
            assert time.monotonic() < deadline, "crash never surfaced"
            for event in pool.collect():
                if event.kind == "crash":
                    assert event.worker == 0
                    lost.extend(event.lost)
                elif event.kind == "outcome":
                    outcomes[event.outcome.index] = event.outcome
        assert pool.crashes == 1
        assert lost, "no tasks reported lost"
        assert pool.pid_of(0) != victim_pid, "worker was not respawned"

        # Re-dispatch the lost tasks; the fresh worker (empty code cache)
        # must either run them (code travels in the task) and succeed.
        for task in lost:
            pool.submit(0, task)
        outcomes.update(_collect_all(pool, 4 - len(outcomes)))
    assert sorted(outcomes) == [0, 1, 2, 3]
    assert all(o.ok and o.result.success for o in outcomes.values())


@pytest.mark.slow
def test_hung_worker_times_out_as_crash(tasks):
    """A task that outlives task_timeout gets its worker killed and
    reported as a crash (hung-worker recovery)."""
    with make_pool("processes", 1, worker_delay=5.0,
                   task_timeout=0.3) as pool:
        pool.submit(0, tasks[0])
        crashed = False
        deadline = time.monotonic() + 30.0
        while not crashed:
            assert time.monotonic() < deadline, "timeout never fired"
            for event in pool.collect():
                if event.kind == "crash":
                    crashed = True
                    assert tasks[0] in event.lost
        assert pool.crashes == 1


def test_unknown_pool_kind_rejected():
    with pytest.raises(SchedulingError):
        make_pool("fibers", 2)
