"""Unit tests of the worker-side task driver (``execute_tx_task``).

The driver is a pure function of (task, code cache); these tests pin the
protocol the coordinators rely on: the NeedKeys loop for view misses, code
misses, ticket echo, and empty write sets on failed transactions.
"""

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.evm.environment import BlockContext
from repro.lang import compile_source
from repro.substrate import (
    READ_BLIND,
    READ_LOWERED,
    READ_REGISTERED,
    TxTask,
    execute_tx_task,
)
from repro.workload import ERC20_SOURCE


@pytest.fixture(scope="module")
def erc20():
    return compile_source(ERC20_SOURCE)


@pytest.fixture(scope="module")
def setup(erc20):
    token = Address.derive("task-token")
    alice = Address.derive("task-alice")
    bob = Address.derive("task-bob")
    balance_of = erc20.slot_of("balanceOf")
    alice_key = StateKey(token, mapping_slot(alice.to_word(), balance_of))
    bob_key = StateKey(token, mapping_slot(bob.to_word(), balance_of))
    return token, alice, bob, alice_key, bob_key


def _transfer_task(erc20, setup, view, amount=5, ticket=0, codes=None):
    token, alice, bob, _, _ = setup
    tx = Transaction(alice, token, 0, erc20.encode_call("transfer", bob, amount))
    return TxTask(
        index=3, attempt=2, ticket=ticket, tx=tx, view=dict(view),
        block=BlockContext(), commutative=True,
        codes=codes if codes is not None else {token: erc20.code},
    )


def test_need_loop_converges_to_success(erc20, setup):
    """An empty view produces need outcomes naming the missing keys; the
    coordinator's augment-and-retry loop must converge to a success."""
    _, _, _, alice_key, bob_key = setup
    state = {alice_key: 100}
    view = {}
    for _ in range(10):
        outcome = execute_tx_task(_transfer_task(erc20, setup, view), {})
        if outcome.ok:
            break
        assert outcome.missing_keys, outcome
        for key in outcome.missing_keys:
            view[key] = state.get(key, 0)
    else:
        pytest.fail("NeedKeys loop did not converge")
    assert outcome.result.success
    writes = dict(outcome.writes_abs)
    assert writes[alice_key] == 95
    assert writes[bob_key] == 5
    read_keys = [key for key, _base, _kind in outcome.reads]
    assert alice_key in read_keys and bob_key in read_keys
    assert all(kind in (READ_REGISTERED, READ_BLIND, READ_LOWERED)
               for _k, _b, kind in outcome.reads)


def test_missing_code_reported(erc20, setup):
    """No cached code and none shipped: the worker must ask for it, not
    crash — contract addresses come back in ``missing_codes``."""
    token = setup[0]
    outcome = execute_tx_task(_transfer_task(erc20, setup, {}, codes={}), {})
    assert not outcome.ok
    assert outcome.missing_codes == (token,)


def test_code_cache_persists_across_tasks(erc20, setup):
    """Shipping code once warms the worker cache; later tasks for the same
    contract need no code attached."""
    _, _, _, alice_key, bob_key = setup
    view = {alice_key: 100, bob_key: 0}
    cache = {}
    first = execute_tx_task(_transfer_task(erc20, setup, view), cache)
    assert first.ok and first.result.success
    second = execute_tx_task(
        _transfer_task(erc20, setup, view, codes={}), cache)
    assert second.ok and second.result.success


def test_failed_transaction_has_empty_writes(erc20, setup):
    """A reverted transfer (insufficient balance) must surface its result
    but buffer no writes — the coordinator commits nothing for it."""
    _, _, _, alice_key, bob_key = setup
    view = {alice_key: 1, bob_key: 0}
    outcome = execute_tx_task(
        _transfer_task(erc20, setup, view, amount=1_000), {})
    assert outcome.ok
    assert not outcome.result.success
    assert outcome.writes_abs == () and outcome.writes_delta == ()


def test_outcome_echoes_dispatch_identity(erc20, setup):
    """index/attempt/ticket ride through unchanged — the coordinator's
    staleness guard depends on the echo."""
    _, _, _, alice_key, bob_key = setup
    view = {alice_key: 100, bob_key: 0}
    outcome = execute_tx_task(
        _transfer_task(erc20, setup, view, ticket=17), {}, worker=5)
    assert (outcome.index, outcome.attempt, outcome.ticket) == (3, 2, 17)
    assert outcome.worker == 5


def test_lowered_increments_without_commutativity(erc20, setup):
    """With ``commutative=False`` every increment must lower to a
    validated read-modify-write: no blind reads, no delta writes."""
    _, _, _, alice_key, bob_key = setup
    task = _transfer_task(erc20, setup, {alice_key: 100, bob_key: 0})
    task = TxTask(
        index=task.index, attempt=task.attempt, ticket=task.ticket,
        tx=task.tx, view=task.view, block=task.block, commutative=False,
        codes=task.codes,
    )
    outcome = execute_tx_task(task, {})
    assert outcome.ok and outcome.result.success
    assert outcome.writes_delta == ()
    assert all(kind != READ_BLIND for _k, _b, kind in outcome.reads)
