"""Backend parity: real threads and real processes must be byte-identical
to the discrete-event simulator on every scenario preset and scheduler —
receipts, write sets, sealed Merkle roots — and the PR-1 serializability
oracle must hold over traces recorded on the real backends."""

import pytest

from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.verify import check_block
from repro.workload.scenarios import SCENARIO_NAMES

from .conftest import receipt_digest, scenario_case

FACTORIES = {
    "serial": SerialExecutor,
    "occ": OCCExecutor,
    "dag": DAGExecutor,
    "dmvcc": DMVCCExecutor,
}


@pytest.mark.parametrize("scheduler", sorted(FACTORIES))
@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_backends_byte_identical_to_sim(scenario, scheduler,
                                        threads_substrate,
                                        processes_substrate):
    """The tentpole acceptance check: same receipts, writes, and root on
    sim, threads, and processes for every preset × scheduler."""
    workload, txs = scenario_case(scenario)
    snapshot = workload.db.latest
    resolver = workload.db.codes.code_of
    base = FACTORIES[scheduler]().execute_block(
        txs, snapshot, resolver, threads=4)
    base_root = workload.db.fork().commit(base.writes).root_hash
    for substrate in (threads_substrate, processes_substrate):
        execution = FACTORIES[scheduler]().attach_substrate(
            substrate).execute_block(txs, snapshot, resolver, threads=4)
        label = f"{scenario}/{scheduler}/{substrate.kind}"
        assert receipt_digest(execution) == receipt_digest(base), label
        assert execution.writes == base.writes, label
        root = workload.db.fork().commit(execution.writes).root_hash
        assert root == base_root, label
        assert execution.metrics.backend == substrate.kind


@pytest.mark.parametrize("scheduler", ["occ", "dag", "dmvcc"])
def test_oracle_holds_on_processes_backend(scheduler, processes_substrate):
    """Traces recorded while running on real multiprocessing workers must
    satisfy the serializability oracle (conflict-graph acyclicity, state
    and receipt equivalence, visibility hygiene)."""
    workload, txs = scenario_case("abort_storm")
    executor = FACTORIES[scheduler]().attach_substrate(processes_substrate)
    report, _trace = check_block(
        executor, txs, workload.db.latest, workload.db.codes.code_of,
        threads=3)
    assert report.ok, report.render()


def test_serial_on_real_backend_stays_serial(processes_substrate):
    """Serial never ships work to workers; it only stamps the backend so
    wall-vs-gas tables line up."""
    workload, txs = scenario_case("mint_storm")
    execution = SerialExecutor().attach_substrate(
        processes_substrate).execute_block(
            txs, workload.db.latest, workload.db.codes.code_of)
    assert execution.metrics.backend == "processes"
    assert execution.metrics.workers == 1
    assert execution.metrics.view_misses == 0
