"""Fault injection: a worker SIGKILLed mid-block must not corrupt the
block — the coordinator re-dispatches the lost work and the output stays
byte-identical to the simulator."""

import threading
import time

import pytest

from repro.executors import DMVCCExecutor
from repro.obs import EventBus
from repro.obs.events import WorkerCrashed
from repro.substrate import get_substrate

from .conftest import receipt_digest, scenario_case


@pytest.mark.slow
def test_sigkill_mid_block_recovers_and_matches_sim():
    workload, txs = scenario_case("airdrop_flood", txs=24)
    args = (txs, workload.db.latest, workload.db.codes.code_of)
    reference = DMVCCExecutor().execute_block(*args, threads=3)

    # worker_delay widens the in-flight window so the kill lands while
    # tasks are genuinely outstanding instead of racing an empty pool.
    substrate = get_substrate("processes", workers=3, worker_delay=0.01,
                              task_timeout=30.0)
    try:
        pool = substrate.acquire(3)
        victim_pid = pool.pid_of(1)
        bus = EventBus()
        executor = DMVCCExecutor().attach_substrate(substrate).attach_obs(bus)

        def killer():
            time.sleep(0.05)
            pool.kill_worker(1)

        thread = threading.Thread(target=killer)
        thread.start()
        execution = executor.execute_block(*args, threads=3)
        thread.join()

        crashes = [e for e in bus.events if isinstance(e, WorkerCrashed)]
        assert crashes, "SIGKILL produced no WorkerCrashed event"
        assert execution.metrics.worker_crashes >= 1
        assert pool.pid_of(1) != victim_pid, "victim was not respawned"

        assert receipt_digest(execution) == receipt_digest(reference)
        assert execution.writes == reference.writes
        root = workload.db.fork().commit(execution.writes).root_hash
        ref_root = workload.db.fork().commit(reference.writes).root_hash
        assert root == ref_root
    finally:
        substrate.close()


@pytest.mark.slow
def test_block_survives_repeated_kills():
    """Kill two different workers during one block; output still exact."""
    workload, txs = scenario_case("mint_storm", txs=24)
    args = (txs, workload.db.latest, workload.db.codes.code_of)
    reference = DMVCCExecutor().execute_block(*args, threads=3)

    substrate = get_substrate("processes", workers=3, worker_delay=0.01,
                              task_timeout=30.0)
    try:
        pool = substrate.acquire(3)
        executor = DMVCCExecutor().attach_substrate(substrate)

        def killer():
            for victim in (0, 2):
                time.sleep(0.04)
                pool.kill_worker(victim)

        thread = threading.Thread(target=killer)
        thread.start()
        execution = executor.execute_block(*args, threads=3)
        thread.join()

        assert execution.writes == reference.writes
        assert receipt_digest(execution) == receipt_digest(reference)
    finally:
        substrate.close()
