"""Worker determinism: fixed seed + stable tx→worker assignment must make
real-backend runs reproducible, run to run and pool to pool."""

import os

from repro.executors import DMVCCExecutor, OCCExecutor
from repro.substrate import ENV_SUBSTRATE, ENV_WORKERS, get_substrate

from .conftest import receipt_digest, scenario_case


def _full_digest(execution):
    return (receipt_digest(execution), sorted(execution.writes.items()))


def test_two_runs_identical_on_shared_pool(processes_substrate):
    """Same substrate, same block, twice: identical receipts and writes.
    (The regression this pins: unseeded worker state or unstable task
    assignment would make physical timing leak into the output.)"""
    workload, txs = scenario_case("defi_composition")
    args = (txs, workload.db.latest, workload.db.codes.code_of)
    first = DMVCCExecutor().attach_substrate(
        processes_substrate).execute_block(*args, threads=3)
    second = DMVCCExecutor().attach_substrate(
        processes_substrate).execute_block(*args, threads=3)
    assert _full_digest(first) == _full_digest(second)


def test_fresh_pools_with_same_seed_agree():
    """Two independently spawned pools (same seed) produce the same
    output — per-worker RNG seeding is (seed, worker_id)-derived, not
    spawn-order- or pid-derived."""
    workload, txs = scenario_case("reentrancy")
    args = (txs, workload.db.latest, workload.db.codes.code_of)
    digests = []
    for _ in range(2):
        substrate = get_substrate("processes", workers=3, seed=99)
        try:
            execution = OCCExecutor().attach_substrate(
                substrate).execute_block(*args, threads=3)
        finally:
            substrate.close()
        digests.append(_full_digest(execution))
    assert digests[0] == digests[1]


def test_env_default_substrate_applies(monkeypatch):
    """REPRO_SUBSTRATE/REPRO_SUBSTRATE_WORKERS route every executor onto
    the selected backend with no call-site changes (the CI hook)."""
    import repro.substrate.base as base

    monkeypatch.setenv(ENV_SUBSTRATE, "threads")
    monkeypatch.setenv(ENV_WORKERS, "2")
    monkeypatch.setattr(base, "_default", None, raising=False)
    try:
        workload, txs = scenario_case("mint_storm")
        execution = DMVCCExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=3)
        assert execution.metrics.backend == "threads"
        assert execution.metrics.workers == 2
    finally:
        if base._default is not None:
            base._default.close()
        monkeypatch.setattr(base, "_default", None, raising=False)
