"""Parser tests: declarations, statements, expressions, errors."""

import pytest

from repro.core.errors import ParseError
from repro.lang import ast, parse_contract


def parse_fn_body(body_src, decls=""):
    contract = parse_contract(f"""
        contract T {{
            {decls}
            function f() public {{ {body_src} }}
        }}
    """)
    return contract.function("f").body


class TestDeclarations:
    def test_state_variables(self):
        contract = parse_contract("""
            contract T {
                uint a;
                address owner;
                mapping(address => uint) balances;
                mapping(address => mapping(address => uint)) allowance;
                uint[] items;
            }
        """)
        types = [type(v.type).__name__ for v in contract.state_vars]
        assert types == [
            "UIntType", "AddressType", "MappingType", "MappingType", "ArrayType",
        ]
        nested = contract.state_vars[3].type
        assert isinstance(nested.value, ast.MappingType)

    def test_function_signature(self):
        contract = parse_contract("""
            contract T {
                function pay(address to, uint amount) public payable returns (uint) {
                    return amount;
                }
            }
        """)
        fn = contract.function("pay")
        assert [p.name for p in fn.params] == ["to", "amount"]
        assert fn.payable
        assert fn.returns_value

    def test_event_declaration_skipped(self):
        contract = parse_contract("""
            contract T {
                event Transfer(address indexed a, uint b);
                uint x;
            }
        """)
        assert len(contract.state_vars) == 1

    def test_modifiers_ignored(self):
        contract = parse_contract("""
            contract T {
                uint public x;
                function f() external view returns (uint) { return x; }
            }
        """)
        assert contract.function("f").returns_value

    def test_unknown_function_lookup(self):
        contract = parse_contract("contract T { uint x; }")
        with pytest.raises(KeyError):
            contract.function("nope")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_fn_body("uint x = 5;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.init.value == 5

    def test_plain_assignment(self):
        (stmt,) = parse_fn_body("x = 1;", decls="uint x;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == ""

    def test_compound_assignment(self):
        (stmt,) = parse_fn_body("x += 2;", decls="uint x;")
        assert stmt.op == "+"

    def test_increment_decrement(self):
        body = parse_fn_body("x++; x--;", decls="uint x;")
        assert body[0].op == "+" and body[0].value.value == 1
        assert body[1].op == "-"

    def test_indexed_assignment(self):
        (stmt,) = parse_fn_body(
            "m[msg.sender] = 1;", decls="mapping(address => uint) m;"
        )
        assert isinstance(stmt.target, ast.Index)

    def test_require_assert_revert(self):
        body = parse_fn_body("require(x > 0); assert(x < 10); revert();",
                             decls="uint x;")
        assert isinstance(body[0], ast.Require)
        assert isinstance(body[1], ast.AssertStmt)
        assert isinstance(body[2], ast.RevertStmt)

    def test_if_else_chain(self):
        (stmt,) = parse_fn_body("""
            if (x > 1) { x = 1; } else if (x > 0) { x = 2; } else { x = 3; }
        """, decls="uint x;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)
        assert stmt.else_body[0].else_body

    def test_while(self):
        (stmt,) = parse_fn_body("while (x > 0) { x -= 1; }", decls="uint x;")
        assert isinstance(stmt, ast.While)

    def test_for_loop(self):
        (stmt,) = parse_fn_body(
            "for (uint i = 0; i < 10; i++) { x += i; }", decls="uint x;"
        )
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.post.op == "+"

    def test_for_loop_empty_sections(self):
        (stmt,) = parse_fn_body("for (;;) { x = 1; }", decls="uint x;")
        assert stmt.init is None and stmt.cond is None and stmt.post is None

    def test_array_push(self):
        (stmt,) = parse_fn_body("items.push(7);", decls="uint[] items;")
        assert isinstance(stmt, ast.ArrayPush)
        assert stmt.array == "items"

    def test_emit(self):
        (stmt,) = parse_fn_body("emit Fired(1, 2);")
        assert isinstance(stmt, ast.Emit)
        assert len(stmt.args) == 2

    def test_return_void(self):
        (stmt,) = parse_fn_body("return;")
        assert stmt.value is None


class TestExpressions:
    def expr(self, text, decls="uint a; uint b; uint c;"):
        (stmt,) = parse_fn_body(f"a = {text};", decls=decls)
        return stmt.value

    def test_precedence_mul_over_add(self):
        node = self.expr("b + c * 2")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_comparison_over_and(self):
        node = self.expr("b > 1 && c < 2")
        assert node.op == "&&"
        assert node.left.op == ">"

    def test_parentheses(self):
        node = self.expr("(b + c) * 2")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_unary_not(self):
        node = self.expr("!b")
        assert isinstance(node, ast.Unary) and node.op == "!"

    def test_msg_and_block(self):
        node = self.expr("msg.value")
        assert node.base == "msg" and node.member == "value"
        node = self.expr("block.timestamp")
        assert node.member == "timestamp"

    def test_nested_index(self):
        node = self.expr(
            "allowance[msg.sender][b]",
            decls="uint a; uint b; mapping(address => mapping(uint => uint)) allowance;",
        )
        assert isinstance(node, ast.Index)
        assert isinstance(node.base, ast.Index)

    def test_array_length(self):
        node = self.expr("items.length", decls="uint a; uint[] items;")
        assert isinstance(node, ast.Member) and node.member == "length"

    def test_balance_builtin(self):
        node = self.expr("balance(msg.sender)")
        assert isinstance(node, ast.BalanceOf)

    def test_bool_literals(self):
        assert self.expr("true").value is True
        assert self.expr("false").value is False


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_contract("contract T { function f() public { uint x = 1 } }")

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            parse_contract("contract T { function f() public { 5 = 1; } }")

    def test_unknown_msg_member(self):
        with pytest.raises(ParseError):
            parse_contract("contract T { function f() public { uint x = msg.gas; } }")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_contract("contract T { } extra")

    def test_mapping_param_rejected(self):
        with pytest.raises(ParseError):
            parse_contract(
                "contract T { function f(mapping(address => uint) m) public { } }"
            )

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as info:
            parse_contract("contract T {\n  uint x\n}")
        assert info.value.line >= 2
