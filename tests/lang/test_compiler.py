"""Compiler tests: layout, ABI, and compiled-code semantics.

Semantic tests compile Minisol and execute the bytecode on the real VM,
asserting on storage effects — the compiler's actual contract.
"""

import pytest

from repro.core import Address, StateKey, array_element_slot, mapping_slot
from repro.core.errors import TypeError_
from repro.evm import EVM, HaltReason, Message, drive
from repro.lang import compile_source
from repro.lang.compiler import function_signature, selector_of
from repro.lang.parser import parse_contract
from repro.state import WriteJournal

CONTRACT = Address.derive("compiled")
ALICE = Address.derive("alice")
BOB = Address.derive("bob")


def call(compiled, fn, *args, state=None, sender=ALICE, value=0, gas=5_000_000):
    state = state if state is not None else {}
    evm = EVM(lambda a: compiled.code if a == CONTRACT else b"")
    journal = WriteJournal(lambda key: state.get(key, 0))
    message = Message(sender, CONTRACT, value, compiled.encode_call(fn, *args), gas)
    outcome = drive(evm, message, journal)
    if outcome.result.success:
        state.update(outcome.write_set)
    return outcome


class TestLayout:
    def test_slots_in_declaration_order(self):
        compiled = compile_source("""
            contract T {
                uint a;
                mapping(address => uint) m;
                uint[] arr;
                uint b;
            }
        """)
        assert compiled.slot_of("a") == 0
        assert compiled.slot_of("m") == 1
        assert compiled.slot_of("arr") == 2
        assert compiled.slot_of("b") == 3

    def test_unknown_variable(self):
        compiled = compile_source("contract T { uint a; }")
        with pytest.raises(TypeError_):
            compiled.slot_of("zzz")

    def test_duplicate_state_var_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("contract T { uint a; uint a; }")

    def test_local_shadowing_state_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    uint a;
                    function f() public { uint a = 1; }
                }
            """)

    def test_duplicate_local_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    function f() public { uint x = 1; uint x = 2; }
                }
            """)


class TestABI:
    def test_selector_matches_signature(self):
        compiled = compile_source("""
            contract T { function f(address a, uint b) public { } }
        """)
        abi = compiled.abi("f")
        assert abi.signature == "f(address,uint256)"
        assert abi.selector == selector_of("f(address,uint256)")

    def test_encode_call_layout(self):
        compiled = compile_source("""
            contract T { function f(address a, uint b) public { } }
        """)
        data = compiled.encode_call("f", ALICE, 7)
        assert len(data) == 4 + 64
        assert int.from_bytes(data[4:36], "big") == ALICE.to_word()
        assert int.from_bytes(data[36:68], "big") == 7

    def test_encode_call_arity_checked(self):
        compiled = compile_source("contract T { function f(uint a) public { } }")
        with pytest.raises(TypeError_):
            compiled.encode_call("f")

    def test_unknown_function(self):
        compiled = compile_source("contract T { uint a; }")
        with pytest.raises(TypeError_):
            compiled.encode_call("nope")

    def test_function_signature_helper(self):
        contract = parse_contract(
            "contract T { function g(uint x, bool b) public { } }"
        )
        fn = contract.function("g")
        assert function_signature("g", fn.params) == "g(uint256,bool)"

    def test_unknown_selector_reverts(self):
        compiled = compile_source("contract T { function f() public { } }")
        evm = EVM(lambda a: compiled.code)
        journal = WriteJournal(lambda key: 0)
        out = drive(evm, Message(ALICE, CONTRACT, 0, b"\xde\xad\xbe\xef", 100_000), journal)
        assert out.result.status == HaltReason.REVERT


class TestScalarSemantics:
    def test_scalar_write(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function set(uint v) public { x = v; }
            }
        """)
        out = call(compiled, "set", 99)
        assert out.write_set[StateKey(CONTRACT, 0)] == 99

    def test_arithmetic_expression(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a, uint b) public { x = (a + b) * 2 - 1; }
            }
        """)
        out = call(compiled, "f", 3, 4)
        assert out.write_set[StateKey(CONTRACT, 0)] == 13

    def test_division_and_modulo(self):
        compiled = compile_source("""
            contract T {
                uint q; uint r;
                function f(uint a, uint b) public { q = a / b; r = a % b; }
            }
        """)
        out = call(compiled, "f", 17, 5)
        assert out.write_set[StateKey(CONTRACT, 0)] == 3
        assert out.write_set[StateKey(CONTRACT, 1)] == 2

    def test_unchecked_overflow(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a) public { x = a + 1; }
            }
        """)
        out = call(compiled, "f", 2**256 - 1)
        assert out.result.success  # Solidity 0.6 semantics: wraps
        assert out.write_set[StateKey(CONTRACT, 0)] == 0

    def test_return_value(self):
        compiled = compile_source("""
            contract T {
                function f(uint a) public returns (uint) { return a * 3; }
            }
        """)
        out = call(compiled, "f", 5)
        assert int.from_bytes(out.result.return_data, "big") == 15

    def test_locals_and_params(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a) public {
                    uint doubled = a * 2;
                    uint plus = doubled + a;
                    x = plus;
                }
            }
        """)
        out = call(compiled, "f", 10)
        assert out.write_set[StateKey(CONTRACT, 0)] == 30

    def test_uninitialised_local_is_zero(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f() public { uint y; x = y + 1; }
            }
        """)
        out = call(compiled, "f")
        assert out.write_set[StateKey(CONTRACT, 0)] == 1


class TestControlFlowSemantics:
    def test_if_else(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a) public {
                    if (a > 10) { x = 1; } else { x = 2; }
                }
            }
        """)
        assert call(compiled, "f", 11).write_set[StateKey(CONTRACT, 0)] == 1
        assert call(compiled, "f", 10).write_set[StateKey(CONTRACT, 0)] == 2

    def test_while_loop(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint n) public {
                    uint total = 0;
                    uint i = 0;
                    while (i < n) { total += i; i += 1; }
                    x = total;
                }
            }
        """)
        out = call(compiled, "f", 5)
        assert out.write_set[StateKey(CONTRACT, 0)] == 0 + 1 + 2 + 3 + 4

    def test_for_loop(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint n) public {
                    for (uint i = 0; i < n; i++) { x += 2; }
                }
            }
        """)
        out = call(compiled, "f", 4)
        assert out.write_set[StateKey(CONTRACT, 0)] == 8

    def test_short_circuit_and(self):
        # If && evaluated its right side, m[0] would be read; we check via
        # the read set that it is not.
        compiled = compile_source("""
            contract T {
                mapping(uint => uint) m;
                uint x;
                function f(uint a) public {
                    if (a > 0 && m[0] > 0) { x = 1; } else { x = 2; }
                }
            }
        """)
        out = call(compiled, "f", 0)
        read_keys = set(out.read_set)
        assert StateKey(CONTRACT, mapping_slot(0, 0)) not in read_keys
        assert out.write_set[StateKey(CONTRACT, 1)] == 2

    def test_short_circuit_or(self):
        compiled = compile_source("""
            contract T {
                mapping(uint => uint) m;
                uint x;
                function f(uint a) public {
                    if (a > 0 || m[0] > 0) { x = 1; } else { x = 2; }
                }
            }
        """)
        out = call(compiled, "f", 5)
        assert StateKey(CONTRACT, mapping_slot(0, 0)) not in set(out.read_set)
        assert out.write_set[StateKey(CONTRACT, 1)] == 1

    def test_logical_results_normalised(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a, uint b) public { x = (a > 0 && b > 0); }
            }
        """)
        assert call(compiled, "f", 7, 9).write_set[StateKey(CONTRACT, 0)] == 1

    def test_not_operator(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(bool b) public { if (!b) { x = 1; } else { x = 2; } }
            }
        """)
        assert call(compiled, "f", 0).write_set[StateKey(CONTRACT, 0)] == 1
        assert call(compiled, "f", 1).write_set[StateKey(CONTRACT, 0)] == 2


class TestAborts:
    def test_require_reverts(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a) public { require(a > 5); x = a; }
            }
        """)
        ok = call(compiled, "f", 6)
        assert ok.result.success
        bad = call(compiled, "f", 5)
        assert bad.result.status == HaltReason.REVERT
        assert not bad.write_set

    def test_assert_panics(self):
        compiled = compile_source("""
            contract T {
                function f(uint a) public { assert(a < 10); }
            }
        """)
        assert call(compiled, "f", 5).result.success
        assert call(compiled, "f", 50).result.status == HaltReason.ASSERT_FAIL

    def test_revert_statement(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f(uint a) public {
                    if (a == 0) { revert(); }
                    x = a;
                }
            }
        """)
        assert call(compiled, "f", 0).result.status == HaltReason.REVERT

    def test_nonpayable_rejects_value(self):
        compiled = compile_source("contract T { function f() public { } }")
        out = call(compiled, "f", value=5)
        assert out.result.status == HaltReason.REVERT

    def test_payable_accepts_value(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function f() public payable { x = msg.value; }
            }
        """)
        out = call(compiled, "f", value=5)
        assert out.result.success
        assert out.write_set[StateKey(CONTRACT, 0)] == 5


class TestMappingsAndArrays:
    def test_mapping_solidity_layout(self):
        compiled = compile_source("""
            contract T {
                mapping(address => uint) m;
                function set(address who, uint v) public { m[who] = v; }
            }
        """)
        out = call(compiled, "set", BOB, 77)
        expected_slot = mapping_slot(BOB.to_word(), 0)
        assert out.write_set[StateKey(CONTRACT, expected_slot)] == 77

    def test_nested_mapping_layout(self):
        compiled = compile_source("""
            contract T {
                mapping(address => mapping(address => uint)) allowance;
                function approve(address spender, uint v) public {
                    allowance[msg.sender][spender] = v;
                }
            }
        """)
        out = call(compiled, "approve", BOB, 5, sender=ALICE)
        inner_base = mapping_slot(ALICE.to_word(), 0)
        expected = mapping_slot(BOB.to_word(), inner_base)
        assert out.write_set[StateKey(CONTRACT, expected)] == 5

    def test_array_push_and_layout(self):
        compiled = compile_source("""
            contract T {
                uint[] arr;
                function add(uint v) public { arr.push(v); }
            }
        """)
        state = {}
        call(compiled, "add", 10, state=state)
        call(compiled, "add", 20, state=state)
        assert state[StateKey(CONTRACT, 0)] == 2  # length at base slot
        assert state[StateKey(CONTRACT, array_element_slot(0, 0))] == 10
        assert state[StateKey(CONTRACT, array_element_slot(0, 1))] == 20

    def test_array_read_write(self):
        compiled = compile_source("""
            contract T {
                uint[] arr;
                uint x;
                function add(uint v) public { arr.push(v); }
                function get(uint i) public { x = arr[i]; }
                function put(uint i, uint v) public { arr[i] = v; }
            }
        """)
        state = {}
        call(compiled, "add", 5, state=state)
        call(compiled, "put", 0, 55, state=state)
        call(compiled, "get", 0, state=state)
        assert state[StateKey(CONTRACT, 1)] == 55

    def test_array_bounds_checked(self):
        compiled = compile_source("""
            contract T {
                uint[] arr;
                uint x;
                function get(uint i) public { x = arr[i]; }
            }
        """)
        out = call(compiled, "get", 3)
        assert out.result.status == HaltReason.ASSERT_FAIL

    def test_array_length(self):
        compiled = compile_source("""
            contract T {
                uint[] arr;
                uint x;
                function add(uint v) public { arr.push(v); }
                function measure() public { x = arr.length; }
            }
        """)
        state = {}
        call(compiled, "add", 1, state=state)
        call(compiled, "add", 2, state=state)
        call(compiled, "measure", state=state)
        assert state[StateKey(CONTRACT, 1)] == 2

    def test_whole_mapping_read_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    mapping(uint => uint) m;
                    uint x;
                    function f() public { x = m; }
                }
            """)


class TestEvents:
    def test_emit_produces_log(self):
        compiled = compile_source("""
            contract T {
                event Ping(uint, uint);
                function f() public { emit Ping(1, 2); }
            }
        """)
        out = call(compiled, "f")
        assert out.result.success
        assert len(out.result.logs) == 1
        log = out.result.logs[0]
        assert int.from_bytes(log.data[:32], "big") == 1
        assert int.from_bytes(log.data[32:], "big") == 2
