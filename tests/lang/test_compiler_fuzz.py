"""Differential fuzzing of the Minisol compiler.

Hypothesis builds random expressions/statement sequences; we compile them,
run the bytecode on the EVM, and compare against a direct Python evaluation
of the same AST with 256-bit wrap-around semantics.  Any divergence is a
codegen or interpreter bug.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Address, StateKey
from repro.core.words import WORD_MOD
from repro.evm import EVM, Message, drive
from repro.lang import compile_source
from repro.state import WriteJournal

CONTRACT = Address.derive("fuzz")
SENDER = Address.derive("fuzz-sender")

LITERALS = st.integers(min_value=0, max_value=2**64)


@st.composite
def expressions(draw, depth=0):
    """A random arithmetic/comparison expression over two parameters."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.sampled_from(["lit", "a", "b"]))
        if choice == "lit":
            return str(draw(LITERALS))
        return choice
    op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


def evaluate_python(expr: str, a: int, b: int) -> int:
    """Reference evaluation with EVM semantics (wrapping, div/0 = 0)."""
    return _eval(expr, {"a": a, "b": b}) % WORD_MOD


def _eval(expr: str, env) -> int:
    expr = expr.strip()
    if expr in env:
        return env[expr]
    if expr.isdigit():
        return int(expr)
    assert expr[0] == "(" and expr[-1] == ")"
    inner = expr[1:-1]
    # Find the top-level operator (single space-delimited op per node).
    depth = 0
    for i, ch in enumerate(inner):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and ch in "+-*/%" and inner[i - 1] == " ":
            left = _eval(inner[: i - 1], env)
            right = _eval(inner[i + 2 :], env)
            op = ch
            if op == "+":
                return (left + right) % WORD_MOD
            if op == "-":
                return (left - right) % WORD_MOD
            if op == "*":
                return (left * right) % WORD_MOD
            if op == "/":
                return 0 if right == 0 else left // right
            return 0 if right == 0 else left % right
    raise AssertionError(f"unparsable {expr!r}")


def run_compiled(expr: str, a: int, b: int) -> int:
    source = f"""
        contract F {{
            uint out;
            function f(uint a, uint b) public {{ out = {expr}; }}
        }}
    """
    compiled = compile_source(source)
    evm = EVM(lambda addr: compiled.code)
    journal = WriteJournal(lambda key: 0)
    outcome = drive(
        evm,
        Message(SENDER, CONTRACT, 0, compiled.encode_call("f", a, b), 10**8),
        journal,
    )
    assert outcome.result.success, outcome.result
    return outcome.write_set.get(StateKey(CONTRACT, 0), 0)


class TestExpressionDifferential:
    @given(expressions(), LITERALS, LITERALS)
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_compiled_matches_reference(self, expr, a, b):
        assert run_compiled(expr, a, b) == evaluate_python(expr, a, b)


@st.composite
def statement_programs(draw):
    """A straight-line program of assignments over three locals."""
    lines = []
    env = {"x": 0, "y": 0, "z": 0}
    count = draw(st.integers(1, 6))
    for _ in range(count):
        target = draw(st.sampled_from(["x", "y", "z"]))
        source_var = draw(st.sampled_from(["x", "y", "z"]))
        literal = draw(st.integers(0, 1000))
        op = draw(st.sampled_from(["+", "*", "-"]))
        lines.append(f"{target} = {source_var} {op} {literal};")
        if op == "+":
            env[target] = (env[source_var] + literal) % WORD_MOD
        elif op == "*":
            env[target] = (env[source_var] * literal) % WORD_MOD
        else:
            env[target] = (env[source_var] - literal) % WORD_MOD
    return lines, env


class TestStatementDifferential:
    @given(statement_programs())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_straightline_programs(self, program):
        lines, expected = program
        body = "\n".join(lines)
        source = f"""
            contract P {{
                uint ox; uint oy; uint oz;
                function f() public {{
                    uint x = 0; uint y = 0; uint z = 0;
                    {body}
                    ox = x; oy = y; oz = z;
                }}
            }}
        """
        compiled = compile_source(source)
        evm = EVM(lambda addr: compiled.code)
        journal = WriteJournal(lambda key: 0)
        outcome = drive(
            evm, Message(SENDER, CONTRACT, 0, compiled.encode_call("f"), 10**8),
            journal,
        )
        assert outcome.result.success
        for slot, var in enumerate(["x", "y", "z"]):
            assert outcome.write_set.get(StateKey(CONTRACT, slot), 0) == expected[var]
