"""Tokeniser tests."""

import pytest

from repro.core.errors import LexError
from repro.lang.lexer import Token, parse_number, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_keywords_vs_identifiers(self):
        assert kinds("contract Foo") == [("keyword", "contract"), ("ident", "Foo")]

    def test_numbers(self):
        assert kinds("42 0xFF 1_000") == [
            ("number", "42"), ("number", "0xFF"), ("number", "1_000"),
        ]

    def test_parse_number(self):
        tokens = tokenize("0xFF 1_000")
        assert parse_number(tokens[0]) == 255
        assert parse_number(tokens[1]) == 1000

    def test_operators_maximal_munch(self):
        assert [t for _, t in kinds("a>=b")] == ["a", ">=", "b"]
        assert [t for _, t in kinds("a=>b")] == ["a", "=>", "b"]
        assert [t for _, t in kinds("x+=1")] == ["x", "+=", "1"]
        assert [t for _, t in kinds("i++")] == ["i", "++"]

    def test_compound_vs_simple(self):
        assert [t for _, t in kinds("a = = b")] == ["a", "=", "=", "b"]
        assert [t for _, t in kinds("a == b")] == ["a", "==", "b"]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nbb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_lex_error_reports_position(self):
        with pytest.raises(LexError) as info:
            tokenize("abc\n  $")
        assert "2" in str(info.value)


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("`")
