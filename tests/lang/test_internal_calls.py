"""Internal (same-contract) function calls, compiled by inlining."""

import pytest

from repro.core import Address, StateKey, mapping_slot
from repro.core.errors import TypeError_
from repro.evm import EVM, HaltReason, Message, drive
from repro.lang import compile_source
from repro.state import WriteJournal

CONTRACT = Address.derive("inline-tests")
ALICE = Address.derive("alice")


def call(compiled, fn, *args, state=None, gas=2_000_000):
    state = state if state is not None else {}
    evm = EVM(lambda a: compiled.code if a == CONTRACT else b"")
    journal = WriteJournal(lambda key: state.get(key, 0))
    outcome = drive(
        evm, Message(ALICE, CONTRACT, 0, compiled.encode_call(fn, *args), gas), journal
    )
    if outcome.result.success:
        state.update(outcome.write_set)
    return outcome


class TestValueReturningCalls:
    def test_simple_helper(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function double(uint v) internal returns (uint) { return v * 2; }
                function f(uint v) public { x = double(v); }
            }
        """)
        out = call(compiled, "f", 21)
        assert out.write_set[StateKey(CONTRACT, 0)] == 42

    def test_call_in_expression(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function inc(uint v) internal returns (uint) { return v + 1; }
                function f(uint v) public { x = inc(v) * inc(v + 1); }
            }
        """)
        out = call(compiled, "f", 3)
        assert out.write_set[StateKey(CONTRACT, 0)] == 4 * 5

    def test_nested_calls(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function a(uint v) internal returns (uint) { return v + 1; }
                function b(uint v) internal returns (uint) { return a(v) * 2; }
                function c(uint v) internal returns (uint) { return b(v) + a(v); }
                function f(uint v) public { x = c(v); }
            }
        """)
        out = call(compiled, "f", 5)
        # c(5) = b(5) + a(5) = (6*2) + 6 = 18
        assert out.write_set[StateKey(CONTRACT, 0)] == 18

    def test_early_return_in_branch(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function clamp(uint v, uint cap) internal returns (uint) {
                    if (v > cap) { return cap; }
                    return v;
                }
                function f(uint v) public { x = clamp(v, 100); }
            }
        """)
        assert call(compiled, "f", 50).write_set[StateKey(CONTRACT, 0)] == 50
        assert call(compiled, "f", 500).write_set[StateKey(CONTRACT, 0)] == 100

    def test_return_from_loop(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function firstMultiple(uint base, uint above) internal returns (uint) {
                    for (uint candidate = base; true; candidate += base) {
                        if (candidate > above) { return candidate; }
                    }
                    return 0;
                }
                function f() public { x = firstMultiple(7, 30); }
            }
        """)
        out = call(compiled, "f")
        assert out.write_set[StateKey(CONTRACT, 0)] == 35


class TestVoidCalls:
    def test_statement_call_with_effects(self):
        compiled = compile_source("""
            contract T {
                mapping(address => uint) balanceOf;
                uint totalSupply;
                function credit(address to, uint v) internal {
                    balanceOf[to] += v;
                    totalSupply += v;
                }
                function mintTwice(address to, uint v) public {
                    credit(to, v);
                    credit(to, v);
                }
            }
        """)
        out = call(compiled, "mintTwice", ALICE, 10)
        bal_key = StateKey(CONTRACT, mapping_slot(ALICE.to_word(), 0))
        assert out.write_set[bal_key] == 20
        assert out.write_set[StateKey(CONTRACT, 1)] == 20

    def test_void_early_return(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function maybeSet(uint v) internal {
                    if (v == 0) { return; }
                    x = v;
                }
                function f(uint v) public { maybeSet(v); }
            }
        """)
        assert StateKey(CONTRACT, 0) not in call(compiled, "f", 0).write_set
        assert call(compiled, "f", 9).write_set[StateKey(CONTRACT, 0)] == 9

    def test_locals_isolated_between_call_sites(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function helper(uint v) internal returns (uint) {
                    uint temp = v * 10;
                    return temp;
                }
                function f(uint v) public {
                    uint temp = 1;
                    x = helper(v) + helper(v + 1) + temp;
                }
            }
        """)
        out = call(compiled, "f", 2)
        assert out.write_set[StateKey(CONTRACT, 0)] == 20 + 30 + 1

    def test_require_inside_helper(self):
        compiled = compile_source("""
            contract T {
                uint x;
                function ensurePositive(uint v) internal { require(v > 0); }
                function f(uint v) public { ensurePositive(v); x = v; }
            }
        """)
        assert call(compiled, "f", 1).result.success
        assert call(compiled, "f", 0).result.status == HaltReason.REVERT


class TestErrors:
    def test_recursion_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    function f(uint x) public returns (uint) { return f(x); }
                }
            """)

    def test_mutual_recursion_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    function a(uint x) public returns (uint) { return b(x); }
                    function b(uint x) public returns (uint) { return a(x); }
                }
            """)

    def test_unknown_function(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    function f() public { ghost(); }
                }
            """)

    def test_arity_checked(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    function helper(uint a, uint b) internal { }
                    function f() public { helper(1); }
                }
            """)

    def test_void_call_as_value_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("""
                contract T {
                    uint x;
                    function nothing() internal { }
                    function f() public { x = nothing(); }
                }
            """)


class TestAnalysisThroughInlining:
    def test_commutativity_survives_helper(self):
        """A blind increment inside a helper must still be detected — the
        paper's analysis works on bytecode, and inlining keeps it flat."""
        from repro.analysis import analyze_contract

        compiled = compile_source("""
            contract T {
                mapping(address => uint) balanceOf;
                function credit(address to, uint v) internal {
                    balanceOf[to] += v;
                }
                function deposit(address to, uint v) public { credit(to, v); }
                function depositTwice(address to, uint v) public {
                    credit(to, v);
                    credit(to, v);
                }
            }
        """)
        analysis = analyze_contract(compiled.code)
        assert analysis.increment_sites  # the inlined credit(s) qualify

    def test_dmvcc_parallelises_inlined_increments(self, chain=None):
        """End-to-end: deposits through a helper commute across txs."""
        from repro.chain.transaction import Transaction
        from repro.executors import DMVCCExecutor, SerialExecutor
        from repro.state import StateDB

        compiled = compile_source("""
            contract T {
                mapping(address => uint) balanceOf;
                function credit(address to, uint v) internal {
                    balanceOf[to] += v;
                }
                function deposit(address to, uint v) public { credit(to, v); }
            }
        """)
        db = StateDB()
        target = Address.derive("inline-dmvcc")
        users = [Address.derive(f"iu{i}") for i in range(8)]
        db.deploy_contract(target, compiled.code, "T")
        db.seed_genesis({u: 10**18 for u in users})
        sink = users[0]
        txs = [
            Transaction(u, target, 0, compiled.encode_call("deposit", sink, 5))
            for u in users
        ]
        reference = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        execution = DMVCCExecutor().execute_block(
            txs, db.latest, db.codes.code_of, threads=8
        )
        assert execution.writes == reference.writes
        assert execution.metrics.aborts == 0
        assert execution.metrics.speedup > 7.0  # commutative: near-perfect
