"""The README's code must actually run — docs-as-tests."""

import pathlib
import re


def test_quickstart_snippet_executes():
    source = pathlib.Path(__file__).parents[2].joinpath("README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", source, re.S)
    assert blocks, "README lost its quickstart snippet"
    exec(compile(blocks[0], "README-quickstart", "exec"), {})


def test_readme_mentions_all_examples():
    root = pathlib.Path(__file__).parents[2]
    readme = root.joinpath("README.md").read_text()
    for script in root.joinpath("examples").glob("*.py"):
        assert script.name in readme, f"{script.name} missing from README"
