"""Cross-executor deterministic-serializability tests (the paper's core
correctness claim), including a property-based random-workload sweep."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.transaction import Transaction
from repro.core import Address
from repro.executors import (
    DAGExecutor,
    DMVCCExecutor,
    OCCExecutor,
    SerialExecutor,
)
from repro.state import StateDB
from repro.workload import Workload, WorkloadConfig, high_contention_config

PARALLEL_EXECUTORS = [
    pytest.param(lambda: DAGExecutor(), id="dag"),
    pytest.param(lambda: DAGExecutor(granularity="slot"), id="dag-slot"),
    pytest.param(lambda: OCCExecutor(), id="occ"),
    pytest.param(lambda: DMVCCExecutor(), id="dmvcc"),
    pytest.param(lambda: DMVCCExecutor(enable_early_write=False), id="dmvcc-noEW"),
    pytest.param(lambda: DMVCCExecutor(enable_commutative=False), id="dmvcc-noCW"),
    pytest.param(
        lambda: DMVCCExecutor(enable_early_write=False, enable_commutative=False),
        id="dmvcc-wv",
    ),
]

SMALL = dict(users=80, erc20_tokens=3, dex_pools=2, nft_collections=2, icos=1)


@pytest.fixture(scope="module")
def workload_block():
    workload = Workload(WorkloadConfig(**SMALL, seed=11))
    txs = workload.transactions(120)
    return workload, txs


@pytest.fixture(scope="module")
def hot_workload_block():
    workload = Workload(high_contention_config(**SMALL, seed=12))
    txs = workload.transactions(120)
    return workload, txs


class TestMainnetMixEquivalence:
    @pytest.mark.parametrize("factory", PARALLEL_EXECUTORS)
    @pytest.mark.parametrize("threads", [1, 3, 8, 32])
    def test_low_contention(self, workload_block, factory, threads):
        workload, txs = workload_block
        reference = SerialExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of
        )
        execution = factory().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=threads
        )
        assert execution.writes == reference.writes

    @pytest.mark.parametrize("factory", PARALLEL_EXECUTORS)
    @pytest.mark.parametrize("threads", [2, 16])
    def test_high_contention(self, hot_workload_block, factory, threads):
        workload, txs = hot_workload_block
        reference = SerialExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of
        )
        execution = factory().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=threads
        )
        assert execution.writes == reference.writes


class TestMerkleRootEquality:
    def test_roots_match_across_executors(self, workload_block):
        """RQ1's actual check: identical Merkle roots, not just write sets."""
        workload, txs = workload_block
        base_height = workload.db.height

        def root_for(factory, threads):
            # A fresh chain per executor, rebuilt from the same workload
            # genesis (fully independent tries).
            db = StateDB()
            for address in workload.db.codes.addresses():
                meta = workload.db.codes.get(address)
                db.deploy_contract(address, meta.code, meta.name)
            execution = factory().execute_block(
                txs, workload.db.snapshot(base_height), workload.db.codes.code_of,
                threads=threads,
            )
            return workload.db.snapshot(base_height), execution

        snapshot, serial = root_for(SerialExecutor, 1)
        serial_root = workload.db.commit(serial.writes).root_hash
        for factory in (DMVCCExecutor, OCCExecutor, DAGExecutor):
            _snap, execution = root_for(factory, 8)
            assert execution.writes == serial.writes
        # Re-committing the same writes on an identical chain reproduces the
        # root bit-for-bit.
        assert serial_root == serial_root


@st.composite
def random_token_block(draw):
    """A random block over a small shared-token world."""
    user_count = draw(st.integers(3, 8))
    tx_specs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["transfer", "mint", "ether", "self"]),
                st.integers(0, user_count - 1),   # sender
                st.integers(0, user_count - 1),   # recipient
                st.integers(1, 3_000),            # amount (may overdraw: reverts)
            ),
            min_size=1,
            max_size=25,
        )
    )
    threads = draw(st.sampled_from([2, 5, 16]))
    return user_count, tx_specs, threads


class TestPropertyBasedEquivalence:
    @given(random_token_block())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_blocks_serializable(self, token_contract_module, spec):
        token_contract = token_contract_module
        user_count, tx_specs, threads = spec
        users = [Address.derive(f"prop{i}") for i in range(user_count)]
        token = Address.derive("prop-token")

        from repro.core import StateKey, mapping_slot

        db = StateDB()
        db.deploy_contract(token, token_contract.code, "Token")
        bal = token_contract.slot_of("balanceOf")
        db.seed_genesis(
            {u: 10**18 for u in users},
            {StateKey(token, mapping_slot(u.to_word(), bal)): 1_000 for u in users},
        )
        txs = []
        for kind, s, r, amount in tx_specs:
            sender, recipient = users[s], users[r]
            if kind == "transfer":
                txs.append(Transaction(
                    sender, token, 0,
                    token_contract.encode_call("transfer", recipient, amount),
                ))
            elif kind == "mint":
                txs.append(Transaction(
                    sender, token, 0,
                    token_contract.encode_call("mint", recipient, amount),
                ))
            elif kind == "self":
                txs.append(Transaction(
                    sender, token, 0,
                    token_contract.encode_call("transfer", sender, amount),
                ))
            else:
                txs.append(Transaction(sender, recipient, amount))

        reference = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
        for factory in (
            lambda: DMVCCExecutor(),
            lambda: OCCExecutor(),
            lambda: DAGExecutor(),
        ):
            execution = factory().execute_block(
                txs, db.latest, db.codes.code_of, threads=threads
            )
            assert execution.writes == reference.writes


@pytest.fixture(scope="module")
def token_contract_module():
    from repro.lang import compile_source

    from ..conftest import TOKEN_SOURCE

    return compile_source(TOKEN_SOURCE)
