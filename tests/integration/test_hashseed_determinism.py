"""Cross-process determinism: results must not depend on PYTHONHASHSEED.

Validators are independent OS processes; if any code path iterated a
salted-hash container (str/bytes keys) into an order-sensitive result, two
nodes could compute different roots for the same block.  This test runs the
same block in subprocesses with different hash seeds and compares roots and
makespans byte-for-byte.
"""

import os
import pathlib
import subprocess
import sys

import pytest

SRC_DIR = str(pathlib.Path(__file__).resolve().parents[2] / "src")

SCRIPT = """
import sys
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.workload import Workload, high_contention_config

workload = Workload(high_contention_config(
    users=100, erc20_tokens=3, dex_pools=2, nft_collections=2, icos=1, seed=77,
))
txs = workload.transactions(60)
execution = DMVCCExecutor().execute_block(
    txs, workload.db.latest, workload.db.codes.code_of, threads=8)
root = workload.db.commit(execution.writes).root_hash.hex()
print(root, execution.metrics.makespan, execution.metrics.aborts)
"""


def run_with_hashseed(seed: str) -> str:
    # A minimal env isolates the subprocess from ambient configuration, but
    # it must still find the package: propagate PYTHONPATH with the repo's
    # src/ directory prepended (the parent's PYTHONPATH may or may not
    # already carry it, depending on how pytest was launched).
    pythonpath = os.pathsep.join(
        [SRC_DIR] + [p for p in os.environ.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONPATH": pythonpath,
        },
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


@pytest.mark.slow
def test_results_identical_across_hash_seeds():
    outputs = {run_with_hashseed(seed) for seed in ("0", "42", "31337")}
    assert len(outputs) == 1, f"hash-seed-dependent results: {outputs}"
