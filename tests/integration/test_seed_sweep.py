"""Multi-seed robustness sweep: serializability must hold for any seed.

The single-seed tests could in principle pass by luck; this sweep runs the
full pipeline (workload generation → analysis → DMVCC/OCC/DAG → commit →
root compare) across several independent seeds and contention settings.
"""

import pytest

from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.workload import Workload, WorkloadConfig, high_contention_config

SMALL = dict(users=120, erc20_tokens=4, dex_pools=2, nft_collections=2, icos=1)


@pytest.mark.parametrize("seed", [101, 202, 303, 404, 505])
@pytest.mark.parametrize("hot", [False, True])
def test_seed_sweep(seed, hot):
    config = (
        high_contention_config(**SMALL, seed=seed)
        if hot else WorkloadConfig(**SMALL, seed=seed)
    )
    workload = Workload(config)
    serial = SerialExecutor()
    for _block in range(2):
        txs = workload.transactions(80)
        snapshot = workload.db.latest
        reference = serial.execute_block(txs, snapshot, workload.db.codes.code_of)
        for factory in (DMVCCExecutor, OCCExecutor, DAGExecutor):
            execution = factory().execute_block(
                txs, snapshot, workload.db.codes.code_of, threads=7
            )
            assert execution.writes == reference.writes, (seed, hot, factory)
        workload.db.commit(reference.writes)


def test_commit_serially_advances_chain(token_contract):
    """Workload.commit_serially chunks, executes, and commits."""
    from repro.chain.transaction import Transaction

    workload = Workload(WorkloadConfig(**SMALL, seed=9))
    start_height = workload.db.height
    token = workload.contracts.erc20[0]
    erc20 = workload.contracts.compiled["ERC20"]
    txs = [
        Transaction(
            workload.users[i], token, 0,
            erc20.encode_call("transfer", workload.users[i + 1], 1),
        )
        for i in range(6)
    ]
    workload.commit_serially(txs, chunk=2)
    assert workload.db.height == start_height + 3  # 6 txs / 2 per block

    # A failing setup transaction aborts loudly.
    bad = [Transaction(
        workload.users[0], token, 0,
        erc20.encode_call("transfer", workload.users[1], 10**30),
    )]
    with pytest.raises(RuntimeError):
        workload.commit_serially(bad)
