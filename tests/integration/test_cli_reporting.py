"""CLI and reporting tests."""

import pytest

from repro.__main__ import main as cli_main
from repro.bench.reporting import (
    render_gantt,
    render_speedup_curves,
    speedup_series_from_result,
)
from repro.sim.metrics import BlockMetrics, TxMetrics


class TestCLI:
    def test_analyze(self, tmp_path, capsys):
        source = tmp_path / "counter.msol"
        source.write_text("""
            contract Counter {
                uint value;
                function increment(uint amount) public { value += amount; }
            }
        """)
        assert cli_main(["analyze", str(source)]) == 0
        out = capsys.readouterr().out
        assert "Counter" in out
        assert "commutative" in out
        assert "release points" in out

    def test_rq1(self, capsys):
        code = cli_main([
            "--users", "80", "--tokens", "3", "--pools", "2", "--nfts", "2",
            "--blocks", "1", "--txs", "40", "rq1",
        ])
        assert code == 0
        assert "1/1 block roots match" in capsys.readouterr().out

    def test_fig7a_small(self, capsys):
        code = cli_main([
            "--users", "80", "--tokens", "3", "--pools", "2", "--nfts", "2",
            "--blocks", "1", "--txs", "40", "--threads", "2,4", "fig7a",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dmvcc" in out and "OK" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli_main([])


class TestGantt:
    def _metrics(self):
        metrics = BlockMetrics(scheduler="dmvcc", threads=2)
        metrics.tx_count = 3
        metrics.makespan = 100.0
        metrics.serial_time = 150.0
        metrics.per_tx = [
            TxMetrics(index=0, start_time=0.0, end_time=50.0),
            TxMetrics(index=1, start_time=0.0, end_time=100.0),
            TxMetrics(index=2, start_time=50.0, end_time=100.0),
        ]
        return metrics

    def test_lanes_reconstructed(self):
        chart = render_gantt(self._metrics(), width=40)
        lines = chart.splitlines()
        assert "dmvcc" in lines[0]
        # Two lanes: T0+T2 share one, T1 gets its own.
        lane_lines = [l for l in lines if l.strip().startswith("t")]
        assert len(lane_lines) == 2
        assert any("T0" in l and "T2" in l for l in lane_lines)

    def test_empty_schedule(self):
        assert "empty" in render_gantt(BlockMetrics(scheduler="x", threads=1))

    def test_respects_max_threads(self):
        metrics = BlockMetrics(scheduler="x", threads=8)
        metrics.tx_count = 8
        metrics.makespan = 10.0
        metrics.serial_time = 80.0
        metrics.per_tx = [
            TxMetrics(index=i, start_time=0.0, end_time=10.0) for i in range(8)
        ]
        chart = render_gantt(metrics, max_threads=3)
        assert "more lanes" in chart


class TestCurves:
    def test_renders_all_schedulers(self):
        series = {
            "dmvcc": [(1, 1.0), (8, 7.5), (32, 21.0)],
            "occ": [(1, 1.0), (8, 4.0), (32, 13.0)],
        }
        text = render_speedup_curves(series)
        assert "O=dmvcc" in text
        assert "32" in text

    def test_empty(self):
        assert "no data" in render_speedup_curves({})

    def test_series_adapter(self):
        from repro.bench.harness import SpeedupResult, SpeedupRow

        result = SpeedupResult("x")
        result.rows = [
            SpeedupRow("dmvcc", 8, 7.0, 0, 0.0, 10, 0.9),
            SpeedupRow("dmvcc", 2, 2.0, 0, 0.0, 10, 0.9),
        ]
        series = speedup_series_from_result(result)
        assert series == {"dmvcc": [(2, 2.0), (8, 7.0)]}


class TestStateDBFork:
    def test_forks_are_independent(self):
        from repro.core import Address, StateKey
        from repro.state import StateDB

        contract = Address.derive("fork-test")
        db = StateDB()
        db.seed_genesis({}, {StateKey(contract, 0): 7})
        fork_a = db.fork()
        fork_b = db.fork()
        fork_a.commit({StateKey(contract, 0): 100})
        fork_b.commit({StateKey(contract, 0): 200})
        assert fork_a.latest.get(StateKey(contract, 0)) == 100
        assert fork_b.latest.get(StateKey(contract, 0)) == 200
        assert db.height == 0  # the original is untouched
        assert fork_a.latest.root_hash != fork_b.latest.root_hash

    def test_fork_shares_history(self):
        from repro.core import Address, StateKey
        from repro.state import StateDB

        contract = Address.derive("fork-test2")
        db = StateDB()
        db.commit({StateKey(contract, 1): 5})
        fork = db.fork()
        assert fork.snapshot(1).get(StateKey(contract, 1)) == 5
        assert fork.root_at(1) == db.root_at(1)
