"""Benchmark-harness smoke tests (small scale; the real runs live in
benchmarks/)."""

import pytest

from repro.bench import (
    run_feature_ablation,
    run_fig7a,
    run_fig8a,
    run_rq1_correctness,
    run_speedup_experiment,
)
from repro.workload import high_contention_config

TINY = dict(users=100, erc20_tokens=3, dex_pools=2, nft_collections=2, icos=1)


class TestSpeedupHarness:
    def test_fig7a_structure(self):
        result = run_fig7a(blocks=1, txs_per_block=80, thread_counts=(2, 8), **TINY)
        assert result.correctness_ok
        assert {row.scheduler for row in result.rows} == {"dag", "occ", "dmvcc"}
        assert {row.threads for row in result.rows} == {2, 8}
        table = result.format_table()
        assert "dmvcc" in table and "OK" in table

    def test_series_and_at(self):
        result = run_fig7a(blocks=1, txs_per_block=60, thread_counts=(2, 8), **TINY)
        series = result.series("dmvcc")
        assert [row.threads for row in series] == [2, 8]
        assert result.at("dmvcc", 8).speedup >= result.at("dmvcc", 2).speedup * 0.8
        with pytest.raises(KeyError):
            result.at("nope", 2)

    def test_multi_block_accumulation(self):
        result = run_speedup_experiment(
            high_contention_config(**TINY),
            "mini",
            blocks=2,
            txs_per_block=50,
            thread_counts=(4,),
        )
        assert result.correctness_ok
        row = result.at("dmvcc", 4)
        assert row.executions >= 100  # two blocks of 50


class TestRQ1Harness:
    def test_all_roots_match(self):
        result = run_rq1_correctness(blocks=3, txs_per_block=60, threads=4, **TINY)
        assert result.all_match
        assert result.blocks_checked == 3
        assert result.txs_checked == 180

    def test_other_schedulers(self):
        for scheduler in ("dag", "occ"):
            result = run_rq1_correctness(
                blocks=2, txs_per_block=40, scheduler=scheduler, threads=4, **TINY
            )
            assert result.all_match


class TestFig8Harness:
    def test_throughput_table(self):
        result = run_fig8a(
            validators=2,
            blocks=2,
            txs_per_block=60,
            thread_counts=(4,),
            schedulers=("dmvcc",),
            gas_per_second=50_000.0,  # execution-bound regime
            config_overrides=TINY,
        )
        serial = result.at("serial", 1)
        dmvcc = result.at("dmvcc", 4)
        assert serial.roots_agree and dmvcc.roots_agree
        assert dmvcc.speedup > 1.5
        assert "TPS" in result.format_table()


class TestAblationHarness:
    def test_ablation_runs(self):
        result = run_feature_ablation(
            blocks=1,
            txs_per_block=60,
            thread_counts=(8,),
            config=high_contention_config(**TINY),
        )
        assert result.correctness_ok
        schedulers = {row.scheduler for row in result.rows}
        assert {"dmvcc", "dmvcc-noEW", "dmvcc-noCW", "dmvcc-wv", "dag", "dag-slot"} == schedulers
