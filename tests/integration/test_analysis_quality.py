"""Analysis-quality tests over the full workload contract suite.

The paper's speedups hinge on analysis precision: every workload contract
must have fully-resolved symbolic keys per function, sensible release
points, and the commutativity the scheduler exploits.  These tests pin that
quality so a regression in the analysis shows up as a test failure, not as
a silent benchmark slowdown.
"""

import pytest

from repro.analysis import build_psag
from repro.analysis.symexpr import contains_unknown
from repro.lang import compile_source
from repro.workload import ALL_SOURCES


@pytest.fixture(scope="module", params=sorted(ALL_SOURCES))
def contract(request):
    return request.param, compile_source(ALL_SOURCES[request.param])


class TestKeyResolution:
    def test_storage_keys_resolved(self, contract):
        """Every SLOAD/SSTORE key must be expressible symbolically —
        except the paper-example's loop-dependent array accesses, which are
        exactly the '–' placeholders the paper describes."""
        name, compiled = contract
        psag = build_psag(compiled.code)
        unresolved = [
            site for site in psag.analysis.access_sites.values()
            if contains_unknown(site.key)
        ]
        if name == "Example":
            assert unresolved, "the Fig. 1 loop must produce placeholders"
        else:
            assert not unresolved, [str(s.key) for s in unresolved]

    def test_every_function_reaches_sites(self, contract):
        name, compiled = contract
        psag = build_psag(compiled.code)
        for fn_name, abi in compiled.functions.items():
            sites = psag.sites_for_selector(abi.selector)
            # Every workload function touches storage somewhere.
            assert sites, f"{name}.{fn_name} has no reachable access sites"


class TestReleasePoints:
    def test_all_contracts_have_release_points(self, contract):
        _name, compiled = contract
        psag = build_psag(compiled.code)
        assert psag.release_pcs()

    def test_release_points_truly_abort_free(self, contract):
        """No REVERT/INVALID/CALL reachable from any release point."""
        from repro.evm.opcodes import Op

        _name, compiled = contract
        psag = build_psag(compiled.code)
        cfg = psag.analysis.cfg
        abortable = (Op.REVERT, Op.INVALID, Op.CALL)
        for pc in psag.release_pcs():
            block = cfg.block_of(pc)
            # Check the rest of this block...
            for instr in block.instructions:
                if instr.pc >= pc:
                    assert instr.op not in abortable, (pc, instr)
            # ...and everything reachable after it.
            seen, stack = set(), list(block.successors)
            while stack:
                start = stack.pop()
                if start in seen:
                    continue
                seen.add(start)
                for instr in cfg.blocks[start].instructions:
                    assert instr.op not in abortable, (pc, start, instr)
                stack.extend(cfg.blocks[start].successors)


class TestCommutativity:
    EXPECTED_COMMUTATIVE = {
        # contract -> substrings of keys that must include an increment site
        "ERC20": ["keccak(arg0, 1)"],        # balanceOf[to] in transfer/mint
        "Counter": ["0"],                    # value += amount
        "ICO": ["0"],                        # totalRaised += amount
        "DEXPool": ["0", "1"],               # reserveX/reserveY in addLiquidity
    }

    def test_expected_increment_sites_found(self, contract):
        name, compiled = contract
        if name not in self.EXPECTED_COMMUTATIVE:
            pytest.skip("no commutativity expectations for this contract")
        psag = build_psag(compiled.code)
        increment_keys = {
            str(psag.analysis.access_sites[pc].key)
            for pc in psag.analysis.increment_sites
        }
        for expected in self.EXPECTED_COMMUTATIVE[name]:
            assert any(expected == key or expected in key for key in increment_keys), (
                name, expected, increment_keys,
            )

    def test_nft_counter_not_commutative(self):
        """nextTokenId's value keys ownerOf[tokenId] — never commutative."""
        compiled = compile_source(ALL_SOURCES["NFT"])
        psag = build_psag(compiled.code)
        counter_slot = str(compiled.slot_of("nextTokenId"))
        for pc in psag.analysis.increment_sites:
            site = psag.analysis.access_sites[pc]
            assert str(site.key) != counter_slot

    def test_swap_reserves_not_commutative(self):
        """Swap updates read the reserves for pricing: not blind."""
        compiled = compile_source(ALL_SOURCES["DEXPool"])
        psag = build_psag(compiled.code)
        swap_selectors = [
            compiled.abi("swapXForY").selector,
            compiled.abi("swapYForX").selector,
        ]
        from repro.analysis.dispatch import selector_reachability

        reach = selector_reachability(psag.analysis.cfg)
        for selector in swap_selectors:
            pcs = reach[selector]
            swap_increments = [
                pc for pc in psag.analysis.increment_sites if pc in pcs
            ]
            reserve_slots = {"0", "1"}
            for pc in swap_increments:
                key = str(psag.analysis.access_sites[pc].key)
                assert key not in reserve_slots, (
                    f"swap reserve update at pc {pc} wrongly marked commutative"
                )
