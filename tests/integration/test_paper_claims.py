"""Integration tests pinning the paper's qualitative claims at test scale.

These are small (fast) versions of the benchmark experiments; absolute
numbers differ from the paper, but the *orderings* it reports must hold:

* DMVCC beats the DAG and OCC baselines under high contention;
* DMVCC's abort rate stays far below OCC's;
* with few threads, the three schedulers perform similarly;
* early-write visibility and commutative writes each contribute.
"""

import pytest

from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.workload import Workload, high_contention_config, low_contention_config

SMALL = dict(users=200, erc20_tokens=4, dex_pools=2, nft_collections=2, icos=1)


def run(workload, txs, factory, threads):
    execution = factory().execute_block(
        txs, workload.db.latest, workload.db.codes.code_of, threads=threads
    )
    return execution.metrics


@pytest.fixture(scope="module")
def hot():
    workload = Workload(high_contention_config(**SMALL, seed=21))
    return workload, workload.transactions(250)


@pytest.fixture(scope="module")
def cold():
    workload = Workload(low_contention_config(**SMALL, seed=22))
    return workload, workload.transactions(250)


@pytest.mark.sim_clock
class TestSpeedupOrderings:
    def test_dmvcc_wins_high_contention(self, hot):
        workload, txs = hot
        dmvcc = run(workload, txs, DMVCCExecutor, 16)
        dag = run(workload, txs, DAGExecutor, 16)
        occ = run(workload, txs, OCCExecutor, 16)
        assert dmvcc.speedup > dag.speedup
        assert dmvcc.speedup > occ.speedup

    def test_all_speed_up_low_contention(self, cold):
        workload, txs = cold
        for factory in (DMVCCExecutor, DAGExecutor, OCCExecutor):
            metrics = run(workload, txs, factory, 16)
            assert metrics.speedup > 2.0, factory

    def test_low_thread_parity(self, cold):
        """Paper: 'when the number of threads is small, the performance
        difference between the three approaches is not significant'."""
        workload, txs = cold
        speedups = [
            run(workload, txs, factory, 2).speedup
            for factory in (DMVCCExecutor, DAGExecutor)
        ]
        assert max(speedups) - min(speedups) < 0.4

    def test_speedup_monotone_in_threads(self, cold):
        workload, txs = cold
        s4 = run(workload, txs, DMVCCExecutor, 4).speedup
        s16 = run(workload, txs, DMVCCExecutor, 16).speedup
        assert s16 >= s4 * 1.2

    def test_serial_baseline_is_one(self, cold):
        workload, txs = cold
        metrics = run(workload, txs, SerialExecutor, 1)
        assert metrics.speedup == pytest.approx(1.0)


class TestAbortClaims:
    def test_dmvcc_abort_rate_under_two_percent(self, hot):
        """Paper: 'the abort rate of DMVCC is less than 2%'."""
        workload, txs = hot
        metrics = run(workload, txs, DMVCCExecutor, 16)
        assert metrics.abort_rate < 0.02

    def test_dmvcc_aborts_far_below_occ(self, hot):
        """Paper: DMVCC 'reduces 63% unnecessary transaction aborts'."""
        workload, txs = hot
        dmvcc = run(workload, txs, DMVCCExecutor, 16)
        occ = run(workload, txs, OCCExecutor, 16)
        assert occ.aborts > 0
        assert dmvcc.aborts <= occ.aborts * 0.37

    def test_dag_never_aborts(self, hot):
        workload, txs = hot
        assert run(workload, txs, DAGExecutor, 16).aborts == 0


@pytest.mark.sim_clock
class TestFeatureContributions:
    def test_features_help_under_contention(self, hot):
        workload, txs = hot
        full = run(workload, txs, DMVCCExecutor, 16)
        no_early = run(
            workload, txs, lambda: DMVCCExecutor(enable_early_write=False), 16
        )
        no_commutative = run(
            workload, txs, lambda: DMVCCExecutor(enable_commutative=False), 16
        )
        assert full.speedup >= no_early.speedup
        assert full.speedup >= no_commutative.speedup
        # At least one feature must contribute measurably.
        assert full.speedup > min(no_early.speedup, no_commutative.speedup) * 1.05

    def test_write_versioning_alone_still_beats_nothing(self, hot):
        workload, txs = hot
        stripped = run(
            workload, txs,
            lambda: DMVCCExecutor(enable_early_write=False, enable_commutative=False),
            16,
        )
        assert stripped.speedup > 1.5
