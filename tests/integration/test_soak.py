"""Scaled-down soak runs: the CI-sized version of ``python -m repro soak``.

The full acceptance run streams 1000 blocks; here we keep the same moving
parts — durable backend, mid-stream crash + recovery, continuous oracle and
root-parity checks, compaction, JSON report — at a size a test suite can
afford.
"""

import json

import pytest

from repro.soak import SoakReport, run_soak

SMALL = dict(users=48, erc20_tokens=2, dex_pools=2, nft_collections=2, icos=1)


@pytest.fixture(scope="module")
def soak_report(tmp_path_factory):
    path = tmp_path_factory.mktemp("soak") / "soak.json"
    report = run_soak(
        blocks=14,
        txs_per_block=16,
        crashes=1,
        backend="durable",
        scenario="mix",
        scheduler="dmvcc",
        threads=4,
        seed=77,
        compact_every=6,
        checkpoint_every=4,
        workload_overrides=SMALL,
        report_path=str(path),
    )
    return report, path


class TestSoakRun:
    def test_invariants_hold_throughout(self, soak_report):
        report, _ = soak_report
        assert report.ok, report.render()
        assert report.oracle_violations == []
        assert report.root_mismatches == []
        assert report.recovery_failures == []

    def test_every_block_checked(self, soak_report):
        report, _ = soak_report
        assert report.blocks == 14
        assert report.txs == 14 * 16
        # Every committed block gets both an oracle check and a root-parity
        # comparison; the crash block is re-executed after recovery, so the
        # counts may exceed the block count but never fall short.
        assert report.oracle_checks >= report.blocks
        assert report.root_parity_checks >= report.blocks

    def test_crash_was_injected_and_recovered(self, soak_report):
        report, _ = soak_report
        assert report.crashes_scheduled == 1
        # The fault either fired mid-append or the block squeaked through
        # the budget — both paths must reopen and verify the recovered db.
        assert report.crashes_fired + report.crash_survivals == 1
        assert report.recoveries_ok == 1

    def test_checkpoints_sampled(self, soak_report):
        report, _ = soak_report
        assert report.samples
        assert all(s.block > 0 for s in report.samples)
        assert report.db_bytes_appended > 0
        assert report.compactions >= 1

    def test_report_json_stamped(self, soak_report):
        report, path = soak_report
        payload = json.loads(path.read_text())
        assert payload["repro_meta"]["schema_version"] == 3
        assert payload["repro_meta"]["shards"] == 0
        assert payload["repro_meta"]["merge_ops"] == []
        assert payload["repro_meta"]["cpu_count"] >= 1
        assert payload["repro_meta"]["python"]
        assert payload["ok"] is True
        assert payload["config"]["blocks"] == report.blocks
        assert payload["config"]["backend"] == "durable"
        assert payload["totals"]["txs"] == report.txs
        assert payload["failures"]["oracle"] == []
        assert len(payload["samples"]) == len(report.samples)


class TestSoakValidation:
    def test_memory_backend_rejects_crashes(self):
        with pytest.raises(ValueError):
            run_soak(blocks=3, crashes=1, backend="memory",
                     workload_overrides=SMALL)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_soak(blocks=3, backend="papyrus", workload_overrides=SMALL)

    def test_memory_backend_runs_without_crashes(self):
        report = run_soak(
            blocks=4, txs_per_block=8, crashes=0, backend="memory",
            scenario="abort_storm", scheduler="dmvcc", threads=2, seed=5,
            checkpoint_every=2, workload_overrides=SMALL,
        )
        assert isinstance(report, SoakReport)
        assert report.ok, report.render()
        assert report.crashes_scheduled == 0

    def test_deterministic_reports(self, tmp_path):
        kwargs = dict(
            blocks=5, txs_per_block=8, crashes=0, backend="durable",
            scenario="flash_loan", scheduler="serial", seed=9,
            checkpoint_every=2, workload_overrides=SMALL,
        )
        a = run_soak(durable_dir=str(tmp_path / "a"), **kwargs)
        b = run_soak(durable_dir=str(tmp_path / "b"), **kwargs)
        assert a.ok and b.ok
        assert a.aborts == b.aborts
        assert a.txs == b.txs
        assert a.db_bytes_appended == b.db_bytes_appended
