"""Failure injection: DMVCC must stay serializable even when its inputs
(predictions) are adversarially wrong or withheld.

These tests attack the protocol where the paper says the abort mechanism is
the backstop: stale C-SAGs, missing C-SAGs, fabricated predictions, gas
exhaustion after a release point, and deterministic failures mid-block.
"""

import pytest

from repro.analysis.csag import (
    AccessType,
    CSAG,
    CSAGBuilder,
    PredictedAccess,
    ReleaseOffset,
)
from repro.chain.transaction import Transaction
from repro.core import Address, StateKey, mapping_slot
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.state import StateDB

USERS = [Address.derive(f"fiuser{i}") for i in range(10)]
TOKEN = Address.derive("fitoken")


@pytest.fixture
def db(token_contract):
    db = StateDB()
    db.deploy_contract(TOKEN, token_contract.code, "Token")
    bal = token_contract.slot_of("balanceOf")
    db.seed_genesis(
        {u: 10**18 for u in USERS},
        {StateKey(TOKEN, mapping_slot(u.to_word(), bal)): 1_000 for u in USERS},
    )
    return db


def transfer(token_contract, sender, recipient, amount):
    return Transaction(
        sender, TOKEN, 0, token_contract.encode_call("transfer", recipient, amount)
    )


def check(db, txs, csags=None, threads=4):
    reference = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
    execution = DMVCCExecutor().execute_block(
        txs, db.latest, db.codes.code_of, threads=threads, csags=csags
    )
    assert execution.writes == reference.writes
    return execution


class TestMissingAnalysis:
    def test_all_csags_missing(self, db, token_contract):
        """Every transaction runs in the OCC-fallback mode (empty C-SAG)."""
        txs = [
            transfer(token_contract, USERS[i], USERS[(i + 1) % 6], 50)
            for i in range(6)
        ]
        builder = CSAGBuilder(db.codes.code_of)
        csags = [builder.build_missing(tx, db.latest) for tx in txs]
        execution = check(db, txs, csags=csags)
        assert all(r.result.success for r in execution.receipts)

    def test_mixed_missing_and_present(self, db, token_contract):
        txs = [
            transfer(token_contract, USERS[i], USERS[(i + 1) % 6], 50)
            for i in range(6)
        ]
        builder = CSAGBuilder(db.codes.code_of)
        csags = [
            builder.build(tx, db.latest) if i % 2 == 0
            else builder.build_missing(tx, db.latest)
            for i, tx in enumerate(txs)
        ]
        check(db, txs, csags=csags)


class TestFabricatedPredictions:
    def test_empty_predictions_for_real_writers(self, db, token_contract):
        """C-SAGs that predict nothing at all (worse than missing: they
        claim the transaction touches no state)."""
        txs = [
            transfer(token_contract, USERS[0], USERS[1], 50),
            transfer(token_contract, USERS[1], USERS[2], 900),  # needs tx0's credit? no: has 1000
            transfer(token_contract, USERS[1], USERS[3], 200),  # now needs tx0's credit
        ]
        csags = [CSAG(accesses=[], predicted_gas=50_000) for _ in txs]
        check(db, txs, csags=csags)

    def test_wrong_key_predictions(self, db, token_contract):
        """C-SAGs predicting accesses to completely unrelated keys."""
        txs = [
            transfer(token_contract, USERS[0], USERS[1], 50),
            transfer(token_contract, USERS[1], USERS[2], 1_020),
        ]
        bogus_key = StateKey(TOKEN, 0xDEAD)
        csags = [
            CSAG(
                accesses=[
                    PredictedAccess("read", bogus_key, 0, 0),
                    PredictedAccess("write", bogus_key, 30_000, 1),
                ],
                predicted_gas=60_000,
            )
            for _ in txs
        ]
        execution = check(db, txs, csags=csags)
        # The bogus predicted writes are skip-marked; real accesses are
        # inserted on the fly and any staleness repaired by aborts.
        assert all(r.result.success for r in execution.receipts)

    def test_predicted_success_but_actually_reverts(self, db, token_contract):
        """Prediction says fine; execution reverts (amount too big)."""
        txs = [
            transfer(token_contract, USERS[0], USERS[1], 10**9),
            transfer(token_contract, USERS[1], USERS[2], 100),
        ]
        builder = CSAGBuilder(db.codes.code_of)
        # Lie: give tx0 the C-SAG of a *small* (successful) transfer.
        small = transfer(token_contract, USERS[0], USERS[1], 10)
        csags = [builder.build(small, db.latest), builder.build(txs[1], db.latest)]
        execution = check(db, txs, csags=csags)
        assert not execution.receipts[0].result.success
        assert execution.receipts[1].result.success

    def test_wildly_wrong_gas_estimates(self, db, token_contract):
        txs = [transfer(token_contract, USERS[0], USERS[1], 10)]
        builder = CSAGBuilder(db.codes.code_of)
        csag = builder.build(txs[0], db.latest)
        csag.predicted_gas = 1  # everything releases immediately
        check(db, txs, csags=[csag])
        csag2 = builder.build(txs[0], db.latest)
        csag2.predicted_gas = 10**9  # nothing ever passes the gas check
        check(db, txs, csags=[csag2])


class TestGasExhaustion:
    def test_oog_after_release_point_cascades(self, db, token_contract):
        """The paper's footnote 3: a transaction may still run out of gas
        after publishing early; its writes must be retracted and readers
        re-executed."""
        # Craft the gas limit to die between the release point and the end.
        tx_full = transfer(token_contract, USERS[0], USERS[1], 10)
        probe = SerialExecutor().execute_block([tx_full], db.latest, db.codes.code_of)
        exact = probe.receipts[0].result.gas_used
        for slack in (1, 2_000, 5_200, 10_400):
            short_tx = Transaction(
                tx_full.sender, tx_full.to, 0, tx_full.data,
                gas_limit=exact - slack,
            )
            reader_tx = transfer(token_contract, USERS[1], USERS[2], 1_005)
            check(db, [short_tx, reader_tx])

    def test_block_of_oog_transactions(self, db, token_contract):
        txs = [
            Transaction(
                USERS[i], TOKEN, 0,
                token_contract.encode_call("transfer", USERS[(i + 1) % 6], 10),
                gas_limit=22_000,  # dies early in execution
            )
            for i in range(6)
        ]
        execution = check(db, txs)
        assert all(not r.result.success for r in execution.receipts)


class TestStaleEverything:
    def test_csags_from_an_old_snapshot(self, db, token_contract):
        """Analysis ran against genesis; a committed block then rewrote the
        balances; the old C-SAGs' key sets are fine but values are stale."""
        builder = CSAGBuilder(db.codes.code_of)
        txs = [
            transfer(token_contract, USERS[i], USERS[(i + 1) % 6], 500)
            for i in range(6)
        ]
        old_csags = [builder.build(tx, db.latest) for tx in txs]
        # Commit a block that drains half of each sender's balance.
        drain = [
            transfer(token_contract, USERS[i], USERS[9], 600) for i in range(6)
        ]
        drain_exec = SerialExecutor().execute_block(drain, db.latest, db.codes.code_of)
        db.commit(drain_exec.writes)
        # Now senders have 400 + credits; the 500-transfers' outcomes flip.
        check(db, txs, csags=old_csags)

    def test_chained_paupers_with_stale_predictions(self, db, token_contract):
        paupers = [Address.derive(f"fip{i}") for i in range(5)]
        txs = [transfer(token_contract, USERS[0], paupers[0], 700)]
        txs += [
            Transaction(
                paupers[i], TOKEN, 0,
                token_contract.encode_call("transfer", paupers[i + 1], 700 - i),
            )
            for i in range(4)
        ]
        execution = check(db, txs, threads=5)
        assert all(r.result.success for r in execution.receipts)
