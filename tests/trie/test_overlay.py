"""Dirty-node overlay commit tests: root equivalence, hashing economy,
store-garbage elimination, and key-count accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trie import NodeStore, Overlay, Trie

KEYS = st.binary(min_size=1, max_size=6)
VALUES = st.binary(min_size=1, max_size=16)
# A batch staging inserts, overwrites, and deletions (empty value = delete).
BATCHES = st.dictionaries(KEYS, st.one_of(VALUES, st.just(b"")), max_size=40)


def apply_legacy(trie, batch):
    for key, value in sorted(batch.items()):
        trie.set(key, value)


class TestRootEquivalence:
    @given(st.dictionaries(KEYS, VALUES, max_size=40), BATCHES)
    @settings(max_examples=80, deadline=None)
    def test_overlay_matches_per_key_path(self, base, batch):
        legacy, overlay = Trie(), Trie()
        apply_legacy(legacy, base)
        apply_legacy(overlay, base)
        apply_legacy(legacy, batch)
        overlay.commit_batch(batch)
        assert overlay.root_hash == legacy.root_hash
        assert dict(overlay.items()) == dict(legacy.items())

    @given(st.lists(BATCHES, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_sequential_batches(self, batches):
        legacy, overlay = Trie(), Trie()
        for batch in batches:
            apply_legacy(legacy, batch)
            overlay.commit_batch(batch)
            assert overlay.root_hash == legacy.root_hash

    def test_batch_iteration_order_irrelevant(self):
        items = {bytes([i, 255 - i]): bytes([i]) for i in range(50)}
        forward, backward = Trie(), Trie()
        forward.commit_batch(items)
        backward.commit_batch(list(items.items())[::-1])
        assert forward.root_hash == backward.root_hash

    def test_empty_batch_preserves_root(self):
        trie = Trie()
        trie.set(b"key", b"value")
        before = trie.root_hash
        stats = trie.commit_batch({})
        assert trie.root_hash == before
        assert stats.nodes_sealed == 0

    def test_delete_everything_reaches_empty_root(self):
        trie = Trie()
        trie.commit_batch({b"a": b"1", b"ab": b"2", b"abc": b"3"})
        trie.commit_batch({b"a": b"", b"ab": b"", b"abc": b""})
        assert trie.root is None
        assert len(trie) == 0

    def test_delete_of_absent_key_is_noop(self):
        trie = Trie()
        trie.commit_batch({b"present": b"1"})
        before = trie.root_hash
        stats = trie.commit_batch({b"absent": b""})
        assert trie.root_hash == before
        assert stats.deleted == 0


class TestHashingEconomy:
    def _batch(self, n):
        return {
            i.to_bytes(4, "big") * 2: (i + 1).to_bytes(4, "big") for i in range(n)
        }

    def test_fewer_hashes_than_per_key(self):
        batch = self._batch(200)
        legacy_store, overlay_store = NodeStore(), NodeStore()
        legacy, overlay = Trie(legacy_store), Trie(overlay_store)
        apply_legacy(legacy, batch)
        stats = overlay.commit_batch(batch)
        assert overlay.root_hash == legacy.root_hash
        assert stats.hashes_computed * 3 <= legacy_store.hash_count

    def test_seal_hashes_each_dirty_node_once(self):
        batch = self._batch(100)
        store = NodeStore()
        trie = Trie(store)
        stats = trie.commit_batch(batch)
        # One store put per sealed node, and nothing else was persisted.
        assert stats.nodes_sealed == stats.hashes_computed == len(store)

    def test_no_intermediate_garbage(self):
        """Per-key inserts persist every intermediate root's path nodes;
        the overlay persists only nodes reachable from the sealed root."""
        batch = self._batch(150)
        legacy_store, overlay_store = NodeStore(), NodeStore()
        apply_legacy(Trie(legacy_store), batch)
        Trie(overlay_store).commit_batch(batch)
        assert len(overlay_store) < len(legacy_store) / 3


class TestOverlayDirect:
    def test_double_seal_rejected(self):
        overlay = Overlay(NodeStore(), None)
        overlay.set(b"k", b"v")
        overlay.seal()
        with pytest.raises(RuntimeError):
            overlay.seal()
        with pytest.raises(RuntimeError):
            overlay.set(b"k2", b"v")

    def test_stats_track_net_key_delta(self):
        trie = Trie()
        trie.commit_batch({b"a": b"1", b"b": b"2"})
        stats = trie.commit_batch({b"a": b"new", b"b": b"", b"c": b"3"})
        assert stats.inserted == 1      # c
        assert stats.deleted == 1       # b
        assert stats.writes == 2        # a, c
        assert stats.deletes == 1       # b
        assert len(trie) == 2
