"""Hex-prefix encoding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TrieError
from repro.trie.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
    nibbles_to_bytes,
)

NIBBLES = st.lists(st.integers(0, 15), max_size=20).map(tuple)


class TestConversion:
    def test_bytes_to_nibbles(self):
        assert bytes_to_nibbles(b"\xab\x0f") == (0xA, 0xB, 0x0, 0xF)

    def test_roundtrip(self):
        assert nibbles_to_bytes(bytes_to_nibbles(b"\x12\x34")) == b"\x12\x34"

    def test_odd_pack_rejected(self):
        with pytest.raises(TrieError):
            nibbles_to_bytes((1, 2, 3))


class TestCommonPrefix:
    def test_full_match(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 3)) == 3

    def test_partial(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 9)) == 2

    def test_empty(self):
        assert common_prefix_length((), (1,)) == 0

    def test_different_lengths(self):
        assert common_prefix_length((1, 2), (1, 2, 3)) == 2


class TestHexPrefix:
    def test_known_even_extension(self):
        # flag nibble 0, padding 0
        assert hp_encode((1, 2, 3, 4), is_leaf=False) == b"\x00\x12\x34"

    def test_known_odd_leaf(self):
        # flag 3 = leaf + odd
        assert hp_encode((1, 2, 3), is_leaf=True) == b"\x31\x23"

    def test_empty_decode_rejected(self):
        with pytest.raises(TrieError):
            hp_decode(b"")

    def test_bad_flag_rejected(self):
        with pytest.raises(TrieError):
            hp_decode(b"\x40")

    def test_nonzero_padding_rejected(self):
        with pytest.raises(TrieError):
            hp_decode(b"\x01\x23"[:1] + b"\x00")  # flag 0 needs zero pad; craft 0x0X with X!=0
        with pytest.raises(TrieError):
            hp_decode(b"\x05\x00")

    @given(NIBBLES, st.booleans())
    def test_roundtrip(self, nibbles, is_leaf):
        assert hp_decode(hp_encode(nibbles, is_leaf)) == (nibbles, is_leaf)

    @given(NIBBLES, NIBBLES)
    def test_injective_paths(self, a, b):
        if a != b:
            assert hp_encode(a, True) != hp_encode(b, True)

    @given(NIBBLES)
    def test_leaf_flag_distinguished(self, nibbles):
        assert hp_encode(nibbles, True) != hp_encode(nibbles, False)
