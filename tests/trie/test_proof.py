"""Merkle proof generation and verification tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trie import Trie, generate_proof, verify_proof
from repro.trie.proof import MerkleProof


def build_trie(items):
    trie = Trie()
    for key, value in items.items():
        trie.set(key, value)
    return trie


class TestInclusion:
    def test_present_key_verifies(self):
        trie = build_trie({b"alpha": b"1", b"beta": b"2", b"gamma": b"3"})
        proof = generate_proof(trie, b"beta")
        assert proof.value == b"2"
        assert verify_proof(trie.root_hash, proof)

    def test_absent_key_verifies_as_absent(self):
        trie = build_trie({b"alpha": b"1"})
        proof = generate_proof(trie, b"omega")
        assert proof.value is None
        assert verify_proof(trie.root_hash, proof)

    def test_empty_trie_absence(self):
        trie = Trie()
        proof = generate_proof(trie, b"anything")
        assert proof.value is None
        assert verify_proof(trie.root_hash, proof)


class TestTampering:
    def test_wrong_root_rejected(self):
        trie = build_trie({b"alpha": b"1", b"beta": b"2"})
        proof = generate_proof(trie, b"alpha")
        assert not verify_proof(b"\x13" * 32, proof)

    def test_forged_value_rejected(self):
        trie = build_trie({b"alpha": b"1", b"beta": b"2"})
        proof = generate_proof(trie, b"alpha")
        forged = MerkleProof(proof.key, b"666", proof.nodes)
        assert not verify_proof(trie.root_hash, forged)

    def test_forged_absence_rejected(self):
        trie = build_trie({b"alpha": b"1", b"beta": b"2"})
        proof = generate_proof(trie, b"alpha")
        forged = MerkleProof(proof.key, None, proof.nodes)
        assert not verify_proof(trie.root_hash, forged)

    def test_truncated_node_chain_rejected(self):
        trie = build_trie({bytes([i]): b"v" for i in range(20)})
        proof = generate_proof(trie, b"\x05")
        truncated = MerkleProof(proof.key, proof.value, proof.nodes[:-1])
        assert not verify_proof(trie.root_hash, truncated)

    def test_stale_proof_rejected_after_update(self):
        trie = build_trie({b"alpha": b"1", b"beta": b"2"})
        proof = generate_proof(trie, b"alpha")
        trie.set(b"alpha", b"changed")
        assert not verify_proof(trie.root_hash, proof)


KEYS = st.binary(min_size=1, max_size=5)


class TestProperties:
    @given(st.dictionaries(KEYS, st.binary(min_size=1, max_size=8), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_all_keys_provable(self, model):
        trie = build_trie(model)
        for key, value in model.items():
            proof = generate_proof(trie, key)
            assert proof.value == value
            assert verify_proof(trie.root_hash, proof)

    @given(
        st.dictionaries(KEYS, st.binary(min_size=1, max_size=8), max_size=20),
        KEYS,
    )
    @settings(max_examples=40, deadline=None)
    def test_absence_provable(self, model, probe):
        if probe in model:
            return
        trie = build_trie(model)
        proof = generate_proof(trie, probe)
        assert proof.value is None
        assert verify_proof(trie.root_hash, proof)
