"""Merkle Patricia Trie tests: functional, structural, and model-based."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, rule

from repro.core.errors import MissingNodeError
from repro.trie import EMPTY_ROOT, NodeStore, Trie, verify_consistency


class TestBasics:
    def test_empty_get(self):
        assert Trie().get(b"missing") is None

    def test_set_get(self):
        trie = Trie()
        trie.set(b"key", b"value")
        assert trie.get(b"key") == b"value"

    def test_overwrite(self):
        trie = Trie()
        trie.set(b"key", b"one")
        trie.set(b"key", b"two")
        assert trie.get(b"key") == b"two"

    def test_empty_value_deletes(self):
        trie = Trie()
        trie.set(b"key", b"value")
        trie.set(b"key", b"")
        assert trie.get(b"key") is None
        assert trie.root_hash == EMPTY_ROOT

    def test_delete_returns_presence(self):
        trie = Trie()
        trie.set(b"key", b"value")
        assert trie.delete(b"key") is True
        assert trie.delete(b"key") is False

    def test_contains(self):
        trie = Trie()
        trie.set(b"a", b"1")
        assert b"a" in trie
        assert b"b" not in trie

    def test_len(self):
        trie = Trie()
        for i in range(10):
            trie.set(bytes([i]), b"v")
        assert len(trie) == 10

    def test_prefix_keys_coexist(self):
        trie = Trie()
        trie.set(b"do", b"verb")
        trie.set(b"dog", b"animal")
        trie.set(b"doge", b"coin")
        assert trie.get(b"do") == b"verb"
        assert trie.get(b"dog") == b"animal"
        assert trie.get(b"doge") == b"coin"

    def test_delete_middle_of_prefix_chain(self):
        trie = Trie()
        trie.set(b"do", b"verb")
        trie.set(b"dog", b"animal")
        trie.set(b"doge", b"coin")
        trie.delete(b"dog")
        assert trie.get(b"dog") is None
        assert trie.get(b"do") == b"verb"
        assert trie.get(b"doge") == b"coin"

    def test_items_sorted(self):
        trie = Trie()
        keys = [b"zebra", b"apple", b"mango"]
        for key in keys:
            trie.set(key, key)
        assert [k for k, _ in trie.items()] == sorted(keys)


class TestRootHash:
    def test_empty_root_fixed(self):
        assert Trie().root_hash == EMPTY_ROOT

    def test_insertion_order_independent(self):
        items = {bytes([i, i * 2 % 256]): bytes([i]) for i in range(1, 60)}
        trie_a, trie_b = Trie(), Trie()
        for key in items:
            trie_a.set(key, items[key])
        for key in reversed(list(items)):
            trie_b.set(key, items[key])
        assert trie_a.root_hash == trie_b.root_hash

    def test_delete_restores_root(self):
        trie = Trie()
        trie.set(b"base", b"1")
        before = trie.root_hash
        trie.set(b"extra", b"2")
        trie.delete(b"extra")
        assert trie.root_hash == before

    def test_value_change_changes_root(self):
        trie = Trie()
        trie.set(b"k", b"1")
        first = trie.root_hash
        trie.set(b"k", b"2")
        assert trie.root_hash != first

    def test_copy_shares_history(self):
        trie = Trie()
        trie.set(b"k", b"1")
        fork = trie.copy()
        fork.set(b"k", b"2")
        assert trie.get(b"k") == b"1"
        assert fork.get(b"k") == b"2"
        assert trie.root_hash != fork.root_hash

    def test_old_roots_remain_readable(self):
        store = NodeStore()
        trie = Trie(store)
        trie.set(b"a", b"1")
        old_root = trie.root
        trie.set(b"b", b"2")
        historical = Trie(store, old_root)
        assert historical.get(b"a") == b"1"
        assert historical.get(b"b") is None


class TestNodeStore:
    def test_missing_node_error(self):
        store = NodeStore()
        with pytest.raises(MissingNodeError):
            store.get(b"\x00" * 32)

    def test_content_addressing(self):
        trie = Trie()
        trie.set(b"x", b"y")
        assert trie.root in trie.store

    def test_verify_consistency_counts_leaves(self):
        trie = Trie()
        for i in range(25):
            trie.set(bytes([i]), b"v")
        assert verify_consistency(trie) == 25


class TestLenMaintenance:
    """``len()`` is maintained incrementally — no full-trie walk."""

    def test_len_tracks_updates_and_deletes(self):
        trie = Trie()
        for i in range(20):
            trie.set(bytes([i]), b"v")
        trie.set(bytes([3]), b"overwrite")   # update: no change
        trie.set(bytes([5]), b"")            # empty value: delete
        trie.delete(bytes([7]))
        trie.delete(b"absent")               # miss: no change
        assert len(trie) == 18

    def test_len_never_walks_once_known(self):
        trie = Trie()
        for i in range(30):
            trie.set(bytes([i, i]), b"v")
        assert len(trie) == 30
        # Regression: __len__ used to decode the entire trie on every call.
        trie.store.get = None  # any node access would now raise TypeError
        assert len(trie) == 30

    def test_adopted_root_derives_count_lazily_then_maintains(self):
        store = NodeStore()
        builder = Trie(store)
        for i in range(12):
            builder.set(bytes([i]), b"v")
        adopted = Trie(store, builder.root)
        assert len(adopted) == 12            # one walk, then cached
        adopted.set(bytes([99]), b"v")
        adopted.delete(bytes([0]))
        store.get = None
        assert len(adopted) == 12

    def test_copy_carries_count(self):
        trie = Trie()
        for i in range(5):
            trie.set(bytes([i]), b"v")
        assert len(trie) == 5
        fork = trie.copy()
        fork.set(bytes([9]), b"v")
        assert len(fork) == 6
        assert len(trie) == 5

    def test_contains_on_empty_trie_skips_store(self):
        trie = Trie()
        trie.store.get = None
        assert b"anything" not in trie


KEYS = st.binary(min_size=1, max_size=6)
VALUES = st.binary(min_size=1, max_size=16)


class TestProperties:
    @given(st.dictionaries(KEYS, VALUES, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict(self, model):
        trie = Trie()
        for key, value in model.items():
            trie.set(key, value)
        assert dict(trie.items()) == model
        for key, value in model.items():
            assert trie.get(key) == value

    @given(st.dictionaries(KEYS, VALUES, min_size=1, max_size=40), st.data())
    @settings(max_examples=50, deadline=None)
    def test_delete_subset(self, model, data):
        trie = Trie()
        for key, value in model.items():
            trie.set(key, value)
        to_delete = data.draw(st.sets(st.sampled_from(sorted(model)), max_size=len(model)))
        for key in sorted(to_delete):
            assert trie.delete(key)
        remaining = {k: v for k, v in model.items() if k not in to_delete}
        assert dict(trie.items()) == remaining
        # Root equals a trie built from the remaining items only.
        rebuilt = Trie()
        for key, value in remaining.items():
            rebuilt.set(key, value)
        assert trie.root_hash == rebuilt.root_hash


class TrieMachine(RuleBasedStateMachine):
    """Model-based test: the trie behaves exactly like a dict, and its root
    hash is a pure function of the contents."""

    def __init__(self):
        super().__init__()
        self.trie = Trie()
        self.model = {}

    keys = Bundle("keys")

    @rule(target=keys, key=KEYS)
    def add_key(self, key):
        return key

    @rule(key=keys, value=VALUES)
    def set_value(self, key, value):
        self.trie.set(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete_value(self, key):
        present = key in self.model
        assert self.trie.delete(key) == present
        self.model.pop(key, None)

    @rule(key=keys)
    def check_get(self, key):
        assert self.trie.get(key) == self.model.get(key)

    @rule()
    def check_len(self):
        assert len(self.trie) == len(self.model)

    @rule()
    def check_root_canonical(self):
        rebuilt = Trie()
        for key, value in self.model.items():
            rebuilt.set(key, value)
        assert self.trie.root_hash == rebuilt.root_hash


TestTrieMachine = TrieMachine.TestCase
TestTrieMachine.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
