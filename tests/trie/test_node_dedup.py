"""NodeStore dedup: repeated puts of identical nodes hash exactly once.

Regression tests for the old behaviour where ``NodeStore.put`` re-encoded
and re-hashed nodes that were already present, and for the commit
pipeline's reliance on ``hash_count`` deltas staying meaningful under the
memoisation.
"""

from repro.core.hashing import keccak
from repro.core.types import Address, StateKey
from repro.state import StateDB
from repro.trie.mpt import NodeStore, Trie
from repro.trie.nodes import LeafNode, node_hash


class TestPutMemo:
    def test_second_put_is_a_memo_hit(self):
        store = NodeStore()
        node = LeafNode((1, 2, 3), b"value")
        first = store.put(node)
        assert store.hash_count == 1 and store.dedup_hits == 0
        second = store.put(LeafNode((1, 2, 3), b"value"))  # equal, not same
        assert second == first
        assert store.hash_count == 1
        assert store.dedup_hits == 1

    def test_memo_digest_matches_canonical_hash(self):
        store = NodeStore()
        node = LeafNode((0xA, 0xB), b"payload")
        assert store.put(node) == node_hash(node) == keccak(node.encode())

    def test_distinct_nodes_still_hash(self):
        store = NodeStore()
        store.put(LeafNode((1,), b"a"))
        store.put(LeafNode((1,), b"b"))
        assert store.hash_count == 2 and store.dedup_hits == 0

    def test_rebuilding_identical_trie_is_hash_free(self):
        store = NodeStore()
        batch = {b"key-%02d" % i: b"v%d" % i for i in range(32)}
        first = Trie(store)
        first.commit_batch(batch)
        hashes_after_first = store.hash_count

        second = Trie(store)
        second.commit_batch(batch)
        assert second.root == first.root
        assert store.hash_count == hashes_after_first
        assert store.dedup_hits > 0


class TestCommitPipelineDeltas:
    """StateDB.commit reads ``hash_count`` deltas for its report; the memo
    must keep those deltas consistent (never negative, never counting
    work that was deduplicated) while roots stay correct."""

    def test_identical_recommit_reports_zero_hashes(self):
        db = StateDB()
        batch = {StateKey(Address.derive("dedup"), s): 5 for s in range(8)}
        db.commit(batch)
        root = db.latest.root_hash
        db.commit(batch)  # same writes again: trie shape unchanged
        report = db.last_commit
        assert db.latest.root_hash == root
        assert report.hashes_computed == 0      # all memo hits
        assert report.nodes_sealed > 0          # the overlay still sealed

    def test_fresh_writes_still_accounted(self):
        db = StateDB()
        db.commit({StateKey(Address.derive("dedup"), 0): 1})
        db.commit({StateKey(Address.derive("dedup"), 1): 2})
        assert db.last_commit.hashes_computed > 0

    def test_roots_unaffected_by_shared_store_history(self):
        """Two dbs, one with a memo warmed by prior commits: same batch,
        same root — dedup must never change commit results."""
        warm = StateDB()
        for value in (1, 2, 3):
            warm.commit({StateKey(Address.derive("w"), 0): value})
        cold = StateDB()
        batch = {StateKey(Address.derive("w"), 0): 3,
                 StateKey(Address.derive("x"), 4): 9}
        warm.commit(batch)
        for value in (1, 2, 3):
            cold.commit({StateKey(Address.derive("w"), 0): value})
        cold.commit(batch)
        assert warm.latest.root_hash == cold.latest.root_hash

    def test_legacy_path_also_dedups(self):
        db = StateDB()
        batch = {StateKey(Address.derive("legacy"), s): 7 for s in range(4)}
        db.commit(batch, legacy=True)
        first = db.last_commit.hashes_computed
        db.commit(batch, legacy=True)
        assert db.last_commit.hashes_computed < first
        assert db.last_commit.root == db.root_at(1)
