"""StateDB on the durable backend: parity with memory, obs, metrics."""

import pytest

from repro.core.errors import StateError
from repro.core.types import Address, StateKey
from repro.obs import CommitPersisted, EventBus
from repro.state.statedb import StateDB

ALICE = Address.derive("alice")
BOB = Address.derive("bob")


def blocks(count: int, *, salt: int = 0):
    for height in range(1, count + 1):
        yield {
            StateKey(ALICE, s): height * 100 + s + salt for s in range(4)
        } | {StateKey.balance(BOB): height}


class TestParity:
    def test_roots_byte_identical_to_memory(self, tmp_path):
        memory = StateDB()
        durable = StateDB.open(str(tmp_path))
        assert durable.durable and not memory.durable
        for batch in blocks(5):
            memory.commit(batch)
            durable.commit(batch)
            assert durable.latest.root_hash == memory.latest.root_hash
        durable.close()

    def test_reopen_resumes_the_chain(self, tmp_path):
        durable = StateDB.open(str(tmp_path))
        batches = list(blocks(4))
        for batch in batches[:2]:
            durable.commit(batch)
        durable.close()

        reopened = StateDB.open(str(tmp_path))
        assert reopened.height == 2
        for batch in batches[2:]:
            reopened.commit(batch)
        twin = StateDB()
        for batch in batches:
            twin.commit(batch)
        assert reopened.latest.root_hash == twin.latest.root_hash
        assert reopened.height == twin.height == 4
        reopened.close()

    def test_seed_genesis_is_durable(self, tmp_path):
        durable = StateDB.open(str(tmp_path))
        durable.seed_genesis({ALICE: 1_000}, {StateKey(BOB, 7): 42})
        genesis_root = durable.latest.root_hash
        durable.close()

        reopened = StateDB.open(str(tmp_path))
        assert reopened.height == 0
        assert reopened.latest.root_hash == genesis_root
        assert reopened.latest.balance_of(ALICE) == 1_000
        reopened.close()

    def test_mirror_durable_matches_source(self, tmp_path):
        memory = StateDB()
        for batch in blocks(3):
            memory.commit(batch)
        mirror = memory.mirror_durable(str(tmp_path / "mirror"))
        assert mirror.latest.root_hash == memory.latest.root_hash
        assert mirror.height == memory.height
        mirror.close()

        reopened = StateDB.open(str(tmp_path / "mirror"))
        assert reopened.latest.root_hash == memory.latest.root_hash
        reopened.close()

    def test_mirror_refuses_populated_target(self, tmp_path):
        target = str(tmp_path / "mirror")
        first = StateDB.open(target)
        first.commit(next(blocks(1)))
        first.close()
        with pytest.raises(StateError):
            StateDB().mirror_durable(target)


class TestCommitReport:
    def test_durable_fields_populated(self, tmp_path):
        durable = StateDB.open(str(tmp_path))
        durable.commit(next(blocks(1)))
        report = durable.last_commit
        assert report.durable is True
        assert report.bytes_appended > 0
        assert report.fsync_time >= 0.0
        durable.close()

    def test_memory_fields_stay_zero(self):
        memory = StateDB()
        memory.commit(next(blocks(1)))
        report = memory.last_commit
        assert report.durable is False
        assert report.bytes_appended == 0


class TestObs:
    def test_commit_persisted_emitted_on_durable(self, tmp_path):
        durable = StateDB.open(str(tmp_path))
        bus = EventBus()
        durable.obs = bus
        durable.commit(next(blocks(1)))
        events = bus.of_type(CommitPersisted)
        assert len(events) == 1
        assert events[0].height == 1
        assert events[0].bytes_appended == durable.last_commit.bytes_appended
        durable.close()

    def test_commit_persisted_absent_on_memory(self):
        memory = StateDB()
        bus = EventBus()
        memory.obs = bus
        memory.commit(next(blocks(1)))
        assert bus.of_type(CommitPersisted) == []


class TestValidatorOnDurableDB:
    USERS = [Address.derive(f"duser{i}") for i in range(8)]
    TOKEN = Address.derive("dtoken")

    def _validator(self, token_contract, path):
        from repro.chain import Packer, Validator
        from repro.core import mapping_slot
        from repro.executors import SerialExecutor

        db = StateDB.open(path)
        db.deploy_contract(self.TOKEN, token_contract.code, "Token")
        bal = token_contract.slot_of("balanceOf")
        db.seed_genesis(
            {u: 10**18 for u in self.USERS},
            {StateKey(self.TOKEN, mapping_slot(u.to_word(), bal)): 10_000
             for u in self.USERS},
        )
        return Validator("durable", db, SerialExecutor(), threads=1,
                         packer=Packer(max_txs=100))

    def test_block_metrics_carry_db_io(self, token_contract, tmp_path):
        from repro.chain import Transaction

        validator = self._validator(token_contract, str(tmp_path))
        for i in range(4):
            validator.receive_transaction(Transaction(
                self.USERS[i], self.TOKEN, 0,
                token_contract.encode_call(
                    "transfer", self.USERS[(i + 1) % 8], 10 + i),
            ))
        _, execution = validator.propose_block(timestamp=100)
        metrics = execution.metrics
        assert metrics.db_bytes_appended > 0
        assert metrics.db_fsync_time >= 0.0
        root = validator.state_root()
        validator.db.close()

        # The proposed block's state survives a reopen.
        reopened = StateDB.open(str(tmp_path))
        assert reopened.latest.root_hash == root
        reopened.close()
