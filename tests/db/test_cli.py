"""``python -m repro db …`` and the verify durable/crash flags."""

import pytest

from repro.__main__ import main
from repro.core.types import Address, StateKey
from repro.state.statedb import StateDB


@pytest.fixture
def populated(tmp_path):
    path = str(tmp_path)
    db = StateDB.open(path, retention=2)
    owner = Address.derive("cli")
    for height in range(1, 7):
        db.commit({StateKey(owner, s): height * 10 + s for s in range(4)})
    db.close()
    return path


class TestDbCommand:
    def test_stats(self, populated, capsys):
        assert main(["db", "stats", populated]) == 0
        out = capsys.readouterr().out
        assert "retained roots:    6" in out
        assert "heights 1..6" in out

    def test_fsck_clean(self, populated, capsys):
        assert main(["db", "fsck", populated]) == 0
        assert "fsck: clean" in capsys.readouterr().out

    def test_corruption_is_contained_on_open(self, populated, capsys):
        import glob
        import os

        # Flip one byte mid-log: every byte past the magic belongs to some
        # CRC-framed record, so recovery must discard that record and the
        # whole tail behind it — fewer roots survive, and what survives
        # still fscks clean.
        segment = glob.glob(os.path.join(populated, "seg-*.log"))[0]
        size = os.path.getsize(segment)
        with open(segment, "r+b") as handle:
            handle.seek(size // 2)
            byte = handle.read(1)
            handle.seek(size // 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["db", "stats", populated]) == 0
        out = capsys.readouterr().out
        assert "retained roots:    6" not in out
        assert main(["db", "fsck", populated]) == 0
        assert "fsck: clean" in capsys.readouterr().out

    def test_compact_reclaims(self, populated, capsys):
        assert main(["db", "compact", populated, "--retention", "2"]) == 0
        out = capsys.readouterr().out
        assert "compacted:" in out
        assert main(["db", "stats", populated]) == 0
        assert "retained roots:    2" in capsys.readouterr().out

    def test_stats_on_missing_directory(self, tmp_path, capsys):
        # A fresh (empty) directory is a valid, empty store.
        assert main(["db", "stats", str(tmp_path / "fresh")]) == 0
        assert "retained roots:    0" in capsys.readouterr().out


class TestVerifyFlags:
    def test_crash_recovery_campaign(self, capsys):
        assert main(["verify", "--fuzz", "0", "--crash-recovery", "3"]) == 0
        out = capsys.readouterr().out
        assert "crash-recovery: 3 case(s)" in out
        assert "all recovered" in out

    def test_durable_backend_fuzz(self, capsys):
        assert main(["verify", "--fuzz", "1", "--backend", "durable"]) == 0
        out = capsys.readouterr().out
        assert "[durable] 1 on-disk-vs-memory root check(s)" in out

    def test_verify_requires_some_work(self, capsys):
        assert main(["verify", "--fuzz", "0"]) == 2
