"""Tests for the durable storage engine (``repro.db``)."""
