"""Segmented-log framing: roundtrip, CRC rejection, torn tails, rolling."""

import glob
import os

import pytest

from repro.db.faults import FaultPlan, InjectedCrash
from repro.db.log import (
    HEADER,
    KIND_COMMIT,
    KIND_NODE,
    MAGIC,
    SegmentedLog,
    decode_commit_payload,
    decode_node_payload,
    encode_commit_payload,
    encode_node_payload,
)


def segment_files(directory):
    return sorted(glob.glob(os.path.join(directory, "seg-*.log")))


class TestRoundtrip:
    def test_append_scan_roundtrip(self, tmp_path):
        log = SegmentedLog(str(tmp_path))
        payloads = [b"a" * 40, b"b" * 7, b"c" * 100]
        for payload in payloads:
            log.append(KIND_NODE, payload)
        log.append(KIND_COMMIT, b"marker")
        log.close()

        log = SegmentedLog(str(tmp_path))
        records = list(log.scan())
        log.close()
        assert [(k, p) for k, p, *_ in records] == [
            (KIND_NODE, payloads[0]),
            (KIND_NODE, payloads[1]),
            (KIND_NODE, payloads[2]),
            (KIND_COMMIT, b"marker"),
        ]

    def test_read_at_offset(self, tmp_path):
        log = SegmentedLog(str(tmp_path))
        sid, offset = log.append(KIND_NODE, b"hello world")
        assert log.read(sid, offset, 11) == b"hello world"
        log.close()

    def test_node_payload_helpers(self):
        digest = bytes(range(32))
        payload = encode_node_payload(digest, b"encoded-bytes")
        assert decode_node_payload(payload) == (digest, b"encoded-bytes")

    def test_commit_payload_helpers(self):
        root = bytes(reversed(range(32)))
        assert decode_commit_payload(encode_commit_payload(7, root)) == (7, root)
        assert decode_commit_payload(encode_commit_payload(0, None)) == (0, None)


class TestCorruption:
    def _write_three(self, tmp_path):
        log = SegmentedLog(str(tmp_path))
        locs = [log.append(KIND_NODE, bytes([i]) * 20) for i in range(3)]
        log.close()
        return locs

    def test_crc_mismatch_stops_scan(self, tmp_path):
        locs = self._write_three(tmp_path)
        path = segment_files(str(tmp_path))[0]
        # Flip a byte inside the second record's payload.
        with open(path, "r+b") as handle:
            handle.seek(locs[1][1] + 3)
            byte = handle.read(1)
            handle.seek(locs[1][1] + 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        log = SegmentedLog(str(tmp_path))
        kinds = [k for k, *_ in log.scan()]
        log.close()
        assert len(kinds) == 1  # only the record before the corruption

    def test_torn_header_stops_scan(self, tmp_path):
        self._write_three(tmp_path)
        path = segment_files(str(tmp_path))[0]
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 25)  # tear into the last record
        log = SegmentedLog(str(tmp_path))
        kinds = [k for k, *_ in log.scan()]
        log.close()
        assert len(kinds) == 2

    def test_bad_magic_yields_nothing(self, tmp_path):
        self._write_three(tmp_path)
        path = segment_files(str(tmp_path))[0]
        with open(path, "r+b") as handle:
            handle.write(b"NOTMAGIC")
        log = SegmentedLog(str(tmp_path))
        assert list(log.scan()) == []
        log.close()

    def test_truncate_to_discards_suffix(self, tmp_path):
        log = SegmentedLog(str(tmp_path))
        log.append(KIND_NODE, b"x" * 16)
        sid, offset = log.append(KIND_COMMIT, b"m")
        end = offset + 1
        log.append(KIND_NODE, b"y" * 16)
        removed = log.truncate_to(sid, end)
        assert removed == HEADER.size + 16
        records = list(log.scan())
        log.close()
        assert [k for k, *_ in records] == [KIND_NODE, KIND_COMMIT]


class TestSegments:
    def test_roll_on_size(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_bytes=128)
        for i in range(8):
            log.append(KIND_NODE, bytes([i]) * 50)
            log.maybe_roll()
        log.close()
        assert len(segment_files(str(tmp_path))) > 1

        log = SegmentedLog(str(tmp_path), segment_bytes=128)
        payloads = [p for _, p, *_ in log.scan()]
        log.close()
        assert payloads == [bytes([i]) * 50 for i in range(8)]

    def test_every_segment_starts_with_magic(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_bytes=64)
        for i in range(4):
            log.append(KIND_NODE, b"z" * 40)
            log.maybe_roll()
        log.close()
        for path in segment_files(str(tmp_path)):
            with open(path, "rb") as handle:
                assert handle.read(len(MAGIC)) == MAGIC

    def test_delete_segments_before(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_bytes=64)
        for i in range(4):
            log.append(KIND_NODE, b"z" * 40)
            log.maybe_roll()
        keep = log.active_id
        log.delete_segments_before(keep)
        log.close()
        files = segment_files(str(tmp_path))
        assert len(files) == 1 and f"{keep:08d}" in files[0]


class TestFaults:
    def test_crash_after_bytes_tears_mid_record(self, tmp_path):
        log = SegmentedLog(str(tmp_path), faults=FaultPlan(crash_after_bytes=20))
        log.append(KIND_NODE, b"a" * 8)  # 17 bytes, under budget
        with pytest.raises(InjectedCrash):
            log.append(KIND_NODE, b"b" * 8)  # would cross the budget
        # Recovery sees only the record that fully landed.
        log = SegmentedLog(str(tmp_path))
        assert [p for _, p, *_ in log.scan()] == [b"a" * 8]
        log.close()

    def test_torn_tail_on_close(self, tmp_path):
        log = SegmentedLog(str(tmp_path), faults=FaultPlan(torn_tail_bytes=5))
        log.append(KIND_NODE, b"a" * 8)
        log.append(KIND_NODE, b"b" * 8)
        log.close()
        log = SegmentedLog(str(tmp_path))
        assert [p for _, p, *_ in log.scan()] == [b"a" * 8]
        log.close()

    def test_skip_fsync_reports_zero_time(self, tmp_path):
        log = SegmentedLog(str(tmp_path), faults=FaultPlan(skip_fsync=True))
        log.append(KIND_NODE, b"a" * 8)
        assert log.sync() == 0.0
        log.close()
