"""Pruning/compaction: space is reclaimed, retained roots never change."""

import pytest

from repro.core.types import Address, StateKey
from repro.db.engine import DurableBackend
from repro.state.statedb import StateDB

OWNER = Address.derive("compaction")


def churn(db: StateDB, blocks: int, slots: int = 8) -> None:
    """Repeatedly overwrite the same keys so old roots hold dead nodes.
    Values are derived from the chain height, so two chains reaching the
    same height hold identical state regardless of pruning history."""
    start = db.height
    for height in range(start + 1, start + blocks + 1):
        db.commit({StateKey(OWNER, s): height * 1000 + s
                   for s in range(slots)})


class TestReclaim:
    def test_reclaims_half_the_bytes_on_deep_churn(self, tmp_path):
        db = StateDB.open(str(tmp_path), retention=2)
        churn(db, blocks=30)
        report = db.compact()
        assert report.reclaimed_fraction >= 0.5, report.render()
        assert report.nodes_pruned > 0
        assert report.roots_retained == 2
        assert report.roots_dropped == 28
        db.close()

    def test_retained_roots_unchanged_by_compaction(self, tmp_path):
        db = StateDB.open(str(tmp_path), retention=3)
        churn(db, blocks=10)
        roots_before = list(db._store.backend.retained_roots())
        values_before = sorted(db.latest.items())
        db.compact()
        assert db._store.backend.roots == roots_before
        assert sorted(db.latest.items()) == values_before
        # Every retained snapshot is still fully readable.
        for height, _ in roots_before:
            snap = db.snapshot(height)
            assert snap.get(StateKey(OWNER, 0)) == height * 1000
        db.close()

    def test_dropped_heights_become_unreadable(self, tmp_path):
        from repro.core.errors import UnknownSnapshotError

        db = StateDB.open(str(tmp_path), retention=2)
        churn(db, blocks=6)
        db.compact()
        with pytest.raises(UnknownSnapshotError):
            db.snapshot(1)
        db.close()

    def test_fsck_clean_after_compaction(self, tmp_path):
        db = StateDB.open(str(tmp_path), retention=2)
        churn(db, blocks=12)
        db.compact()
        report = db._store.backend.fsck()
        assert report.ok, report.render()
        assert report.nodes_checked > 0
        db.close()


class TestDurability:
    def test_compaction_survives_reopen(self, tmp_path):
        db = StateDB.open(str(tmp_path), retention=2)
        churn(db, blocks=10)
        roots = list(db._store.backend.roots)
        db.compact()
        latest_items = sorted(db.latest.items())
        db.close()

        reopened = StateDB.open(str(tmp_path))
        assert reopened.height == 10
        assert reopened._store.backend.roots == roots[-2:]
        assert sorted(reopened.latest.items()) == latest_items
        assert reopened._store.backend.fsck().ok
        reopened.close()

    def test_compaction_then_new_commits(self, tmp_path):
        db = StateDB.open(str(tmp_path), retention=2)
        churn(db, blocks=8)
        db.compact()
        churn(db, blocks=3)  # heights 9..11 on the compacted base
        assert db.height == 11
        assert db.latest.get(StateKey(OWNER, 0)) == 11_000

        twin = StateDB()
        churn(twin, blocks=11)
        assert db.latest.root_hash == twin.latest.root_hash
        db.close()

    def test_shared_subtrees_survive_pruning(self, tmp_path):
        """Keys untouched since before the window live in subtrees shared
        with retained roots; pruning must keep them."""
        db = StateDB.open(str(tmp_path), retention=2)
        ancient = StateKey(Address.derive("ancient"), 42)
        db.commit({ancient: 777})
        churn(db, blocks=10)
        db.compact()
        assert db.latest.get(ancient) == 777
        db.close()
        reopened = StateDB.open(str(tmp_path))
        assert reopened.latest.get(ancient) == 777
        reopened.close()


class TestAutoCompaction:
    def test_auto_compact_every_n_commits(self, tmp_path):
        db = StateDB.open(str(tmp_path), retention=2, auto_compact_every=4)
        churn(db, blocks=8)
        assert db.last_commit.pruned_nodes > 0
        assert len(db._store.backend.roots) == 2
        db.close()

    def test_backend_level_compaction(self, tmp_path):
        """Compaction exercised straight on the backend, no StateDB."""
        from repro.trie.mpt import NodeStore, Trie

        backend = DurableBackend(str(tmp_path), retention=1)

        store = NodeStore(backend)
        trie = Trie(store)
        for height in range(1, 6):
            trie.commit_batch({b"key-%d" % s: b"v%d" % (height * 10 + s)
                               for s in range(4)})
            backend.commit_root(trie.root, height)
        report = backend.compact()
        assert report.roots_retained == 1
        assert backend.fsck().ok
        # Retained trie fully intact after pruning.
        fresh = Trie(NodeStore(backend), root=backend.roots[-1][1])
        assert fresh.get(b"key-0") == b"v50"
        backend.close()
