"""NodeBackend contract: Memory/Durable parity, LRU cache, dedup puts."""

import pytest

from repro.core.hashing import keccak
from repro.db.backend import MemoryBackend
from repro.db.engine import DurableBackend


def node(payload: bytes):
    """A (digest, encoded) pair shaped like what NodeStore writes."""
    return keccak(payload), payload


class TestMemoryBackend:
    def test_put_get_roundtrip(self):
        backend = MemoryBackend()
        digest, encoded = node(b"leaf-bytes")
        assert backend.put(digest, encoded) is True
        assert backend.get(digest) == encoded
        assert digest in backend
        assert len(backend) == 1

    def test_put_dedups(self):
        backend = MemoryBackend()
        digest, encoded = node(b"leaf-bytes")
        backend.put(digest, encoded)
        assert backend.put(digest, encoded) is False
        assert len(backend) == 1

    def test_get_missing_returns_none(self):
        backend = MemoryBackend()
        assert backend.get(b"\x00" * 32) is None

    def test_commit_root_is_a_noop(self):
        backend = MemoryBackend()
        assert backend.commit_root(b"\x11" * 32, 1) is None
        assert backend.durable is False


class TestParity:
    """The durable backend must be observationally identical to memory."""

    def test_same_answers_for_same_ops(self, tmp_path):
        memory = MemoryBackend()
        durable = DurableBackend(str(tmp_path))
        pairs = [node(bytes([i]) * (10 + i)) for i in range(20)]
        for digest, encoded in pairs:
            assert memory.put(digest, encoded) == durable.put(digest, encoded)
        for digest, encoded in pairs:
            assert memory.get(digest) == durable.get(digest) == encoded
        assert len(memory) == len(durable) == 20
        durable.close()

    def test_durable_survives_reopen_after_commit(self, tmp_path):
        durable = DurableBackend(str(tmp_path))
        pairs = [node(bytes([i]) * 12) for i in range(5)]
        for digest, encoded in pairs:
            durable.put(digest, encoded)
        durable.commit_root(pairs[0][0], 1)
        durable.close()

        reopened = DurableBackend(str(tmp_path))
        for digest, encoded in pairs:
            assert reopened.get(digest) == encoded
        assert reopened.roots == [(1, pairs[0][0])]
        reopened.close()

    def test_uncommitted_puts_vanish_on_reopen(self, tmp_path):
        durable = DurableBackend(str(tmp_path))
        digest, encoded = node(b"never-committed")
        durable.put(digest, encoded)
        durable.close()  # no commit marker ever written

        reopened = DurableBackend(str(tmp_path))
        assert reopened.get(digest) is None
        assert len(reopened) == 0
        reopened.close()


class TestDurableDedup:
    def test_second_put_appends_nothing(self, tmp_path):
        durable = DurableBackend(str(tmp_path))
        digest, encoded = node(b"shared-subtree")
        assert durable.put(digest, encoded) is True
        before = durable._log.appended_bytes
        assert durable.put(digest, encoded) is False
        assert durable._log.appended_bytes == before
        durable.close()


class TestCache:
    def test_hit_miss_accounting(self, tmp_path):
        durable = DurableBackend(str(tmp_path), cache_nodes=8)
        digest, encoded = node(b"cached-node")
        durable.put(digest, encoded)
        durable.commit_root(digest, 1)
        assert durable.get(digest) == encoded  # put() pre-warmed the cache
        assert durable.cache_hits == 1 and durable.cache_misses == 0
        durable.close()

        # A cold open must miss once, then hit.
        reopened = DurableBackend(str(tmp_path), cache_nodes=8)
        assert reopened.get(digest) == encoded
        assert reopened.get(digest) == encoded
        assert reopened.cache_misses == 1 and reopened.cache_hits == 1
        reopened.close()

    def test_lru_eviction_is_bounded(self, tmp_path):
        durable = DurableBackend(str(tmp_path), cache_nodes=2)
        pairs = [node(bytes([i]) * 10) for i in range(4)]
        for digest, encoded in pairs:
            durable.put(digest, encoded)
        assert len(durable._cache) == 2
        durable.commit_root(pairs[0][0], 1)
        # The evicted nodes still read correctly, via the log.
        for digest, encoded in pairs:
            assert durable.get(digest) == encoded
        assert durable.cache_misses >= 2
        durable.close()

    def test_eviction_order_is_least_recently_used(self, tmp_path):
        durable = DurableBackend(str(tmp_path), cache_nodes=2)
        a, b, c = (node(bytes([i]) * 10) for i in range(3))
        durable.put(*a)
        durable.put(*b)
        durable.get(a[0])       # refresh a: b is now the LRU entry
        durable.put(*c)         # evicts b
        assert a[0] in durable._cache and c[0] in durable._cache
        assert b[0] not in durable._cache
        durable.close()
