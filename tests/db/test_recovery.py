"""Crash-recovery properties: a kill at ANY byte offset must leave the
store recoverable with exactly the last committed block's state.

Two layers of evidence:

* an exhaustive sweep — a small store's log is truncated at *every* byte
  offset and reopened; the recovered roots must be exactly the commit
  markers fully contained in the kept prefix;
* the randomized campaign from :mod:`repro.verify.crash` — fault-injected
  mid-write kills against an in-memory twin, at fuzzed offsets.
"""

import glob
import os
import random
import shutil

import pytest

from repro.core.types import Address, StateKey
from repro.db.engine import DurableBackend
from repro.db.faults import FaultPlan, InjectedCrash
from repro.db.log import KIND_COMMIT, MAGIC, SegmentedLog
from repro.state.statedb import StateDB
from repro.verify.crash import run_crash_campaign


def build_store(directory: str) -> list:
    """Three committed blocks over overlapping keys; returns the expected
    ``(height, root)`` markers in commit order."""
    db = StateDB.open(directory)
    owner = Address.derive("recovery")
    for height in range(1, 4):
        db.commit({StateKey(owner, slot): height * 10 + slot for slot in range(3)})
    roots = list(db._store.backend.roots)
    db.close()
    return roots


class TestExhaustiveSweep:
    def test_every_truncation_offset_recovers(self, tmp_path):
        source = str(tmp_path / "source")
        expected_roots = build_store(source)
        segment = glob.glob(os.path.join(source, "seg-*.log"))[0]
        with open(segment, "rb") as handle:
            image = handle.read()

        # Offsets of each commit marker's last byte, from a clean scan.
        log = SegmentedLog(source)
        marker_ends = [end for kind, _, _, _, end in log.scan()
                       if kind == KIND_COMMIT]
        log.close()
        assert len(marker_ends) == len(expected_roots)

        scratch = str(tmp_path / "scratch")
        for offset in range(len(MAGIC), len(image) + 1):
            os.makedirs(scratch, exist_ok=True)
            with open(os.path.join(scratch, "seg-00000000.log"), "wb") as handle:
                handle.write(image[:offset])
            backend = DurableBackend(scratch)
            covered = sum(1 for end in marker_ends if end <= offset)
            assert [r for r in backend.roots] == expected_roots[:covered], (
                f"truncation at byte {offset} recovered the wrong markers"
            )
            # The recovered store ends exactly at its last marker: the torn
            # suffix is physically gone.
            expected_size = marker_ends[covered - 1] if covered else len(MAGIC)
            backend.close()
            size = os.path.getsize(os.path.join(scratch, "seg-00000000.log"))
            assert size == expected_size
            shutil.rmtree(scratch)

    def test_recovered_state_is_readable_at_every_marker(self, tmp_path):
        source = str(tmp_path / "source")
        build_store(source)
        segment = glob.glob(os.path.join(source, "seg-*.log"))[0]
        with open(segment, "rb") as handle:
            image = handle.read()
        log = SegmentedLog(source)
        marker_ends = [end for kind, _, _, _, end in log.scan()
                       if kind == KIND_COMMIT]
        log.close()

        owner = Address.derive("recovery")
        scratch = str(tmp_path / "readable")
        for height, end in enumerate(marker_ends, start=1):
            os.makedirs(scratch, exist_ok=True)
            with open(os.path.join(scratch, "seg-00000000.log"), "wb") as handle:
                handle.write(image[:end])
            db = StateDB.open(scratch)
            assert db.height == height
            for slot in range(3):
                assert db.latest.get(StateKey(owner, slot)) == height * 10 + slot
            db.close()
            shutil.rmtree(scratch)


class TestInjectedCrashes:
    def test_partial_block_is_invisible(self, tmp_path):
        path = str(tmp_path)
        db = StateDB.open(path)
        key = StateKey(Address.derive("victim"), 0)
        db.commit({key: 111})
        committed_root = db.latest.root_hash
        db.close()

        wounded = StateDB.open(path, faults=FaultPlan(crash_after_bytes=10))
        with pytest.raises(InjectedCrash):
            wounded.commit({key: 222})

        recovered = StateDB.open(path)
        assert recovered.height == 1
        assert recovered.latest.root_hash == committed_root
        assert recovered.latest.get(key) == 111
        recovered.close()

    def test_skipped_fsync_still_recovers_flushed_data(self, tmp_path):
        # skip_fsync models an OS that ACKs without persisting; with the
        # file intact (no power loss) the flushed bytes are still there.
        path = str(tmp_path)
        db = StateDB.open(path, faults=FaultPlan(skip_fsync=True))
        key = StateKey(Address.derive("lazy"), 0)
        db.commit({key: 5})
        assert db.last_commit.fsync_time == 0.0
        db.close()
        recovered = StateDB.open(path)
        assert recovered.latest.get(key) == 5
        recovered.close()

    def test_reasserted_markers_dedup_on_recovery(self, tmp_path):
        """A compaction that crashed after re-asserting its retained
        markers but before unlinking old segments leaves duplicate commit
        markers in the log; recovery must not duplicate roots."""
        from repro.core.hashing import keccak
        from repro.db.log import KIND_COMMIT, encode_commit_payload

        backend = DurableBackend(str(tmp_path))
        digest_value = keccak(b"payload")
        backend.put(digest_value, b"payload")
        backend.commit_root(digest_value, 1)
        backend.commit_root(digest_value, 2)
        roots = list(backend.roots)
        # Replay what compaction's step 3 writes: the retained markers again.
        for height, root in roots:
            backend._log.append(
                KIND_COMMIT, encode_commit_payload(height, root)
            )
        backend._log.sync()
        backend.close()

        reopened = DurableBackend(str(tmp_path))
        assert reopened.roots == roots
        reopened.close()

    def test_campaign_of_random_offsets(self):
        report = run_crash_campaign(15, base_seed=0xBADC0DE)
        assert report.cases == 15
        assert report.crashes > 0 and report.survivals > 0
        assert report.ok, report.render()
