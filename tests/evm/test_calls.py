"""Nested message-call (CALL) tests: value transfer, revert isolation."""

from repro.core import Address, StateKey
from repro.evm import EVM, HaltReason, Message, assemble, drive
from repro.state import WriteJournal

CALLER_ADDR = Address.derive("outer")
CALLEE_ADDR = Address.derive("inner")
SENDER = Address.derive("eoa")

# Callee stores 42 at its slot 0 and returns 7 as a word.
CALLEE_OK = """
    PUSH 42
    PUSH 0
    SSTORE
    PUSH 7
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
"""

# Callee writes then reverts.
CALLEE_REVERTS = """
    PUSH 42
    PUSH 0
    SSTORE
    PUSH 0
    PUSH 0
    REVERT
"""


def call_program(value=0, out_len=32):
    """Outer contract: CALL the callee, store the status flag at slot 1 and
    the first return word at slot 2."""
    return f"""
        PUSH {out_len}
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH {value}
        PUSH {CALLEE_ADDR.to_word()}
        PUSH 100000
        CALL
        PUSH 1
        SSTORE
        PUSH 0
        MLOAD
        PUSH 2
        SSTORE
    """


def run_call(callee_source, value=0, caller_balance=0, out_len=32):
    caller_code = assemble(call_program(value, out_len))
    callee_code = assemble(callee_source)

    def resolver(address):
        if address == CALLER_ADDR:
            return caller_code
        if address == CALLEE_ADDR:
            return callee_code
        return b""

    state = {StateKey.balance(CALLER_ADDR): caller_balance}
    evm = EVM(resolver)
    journal = WriteJournal(lambda key: state.get(key, 0))
    outcome = drive(evm, Message(SENDER, CALLER_ADDR, 0, b"", 10**6), journal)
    return outcome


class TestSuccessfulCall:
    def test_status_flag_pushed(self):
        out = run_call(CALLEE_OK)
        assert out.result.success
        assert out.write_set[StateKey(CALLER_ADDR, 1)] == 1

    def test_callee_writes_kept(self):
        out = run_call(CALLEE_OK)
        assert out.write_set[StateKey(CALLEE_ADDR, 0)] == 42

    def test_return_data_copied(self):
        out = run_call(CALLEE_OK)
        assert out.write_set[StateKey(CALLER_ADDR, 2)] == 7

    def test_call_to_non_contract_succeeds(self):
        caller_code = assemble(call_program())

        def resolver(address):
            return caller_code if address == CALLER_ADDR else b""

        evm = EVM(resolver)
        journal = WriteJournal(lambda key: 0)
        out = drive(evm, Message(SENDER, CALLER_ADDR, 0, b"", 10**6), journal)
        assert out.result.success
        assert out.write_set[StateKey(CALLER_ADDR, 1)] == 1


class TestRevertingCall:
    def test_status_flag_zero(self):
        out = run_call(CALLEE_REVERTS)
        assert out.result.success  # the *outer* frame continues
        assert out.write_set[StateKey(CALLER_ADDR, 1)] == 0

    def test_callee_writes_discarded(self):
        out = run_call(CALLEE_REVERTS)
        assert StateKey(CALLEE_ADDR, 0) not in out.write_set

    def test_outer_writes_survive_inner_revert(self):
        out = run_call(CALLEE_REVERTS)
        assert StateKey(CALLER_ADDR, 1) in out.write_set


class TestValueTransfer:
    def test_value_moves_on_success(self):
        out = run_call(CALLEE_OK, value=500, caller_balance=1_000)
        assert out.write_set[StateKey.balance(CALLER_ADDR)] == 500
        assert out.write_set[StateKey.balance(CALLEE_ADDR)] == 500

    def test_value_restored_on_revert(self):
        out = run_call(CALLEE_REVERTS, value=500, caller_balance=1_000)
        assert StateKey.balance(CALLEE_ADDR) not in out.write_set

    def test_insufficient_balance_fails_call(self):
        out = run_call(CALLEE_OK, value=500, caller_balance=100)
        assert out.result.success
        assert out.write_set[StateKey(CALLER_ADDR, 1)] == 0  # CALL returned 0
        assert StateKey(CALLEE_ADDR, 0) not in out.write_set
