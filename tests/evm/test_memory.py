"""EVM memory tests."""

from repro.evm.memory import Memory
from repro.evm.opcodes import GAS_MEMORY_WORD


class TestReadWrite:
    def test_zero_initialised(self):
        memory = Memory()
        assert memory.read(0, 4) == b"\x00\x00\x00\x00"

    def test_write_read(self):
        memory = Memory()
        memory.write(10, b"abc")
        assert memory.read(10, 3) == b"abc"

    def test_word_roundtrip(self):
        memory = Memory()
        memory.write_word(32, 0xDEADBEEF)
        assert memory.read_word(32) == 0xDEADBEEF

    def test_write_byte(self):
        memory = Memory()
        memory.write_byte(5, 0x1FF)  # truncated to one byte
        assert memory.read(5, 1) == b"\xff"

    def test_empty_read(self):
        memory = Memory()
        assert memory.read(100, 0) == b""
        assert len(memory) == 0  # zero-length access does not expand

    def test_empty_write(self):
        memory = Memory()
        memory.write(100, b"")
        assert len(memory) == 0


class TestExpansion:
    def test_grows_in_words(self):
        memory = Memory()
        memory.write(0, b"x")
        assert len(memory) == 32

    def test_growth_spans_words(self):
        memory = Memory()
        memory.write(33, b"x")
        assert len(memory) == 64

    def test_expansion_cost_zero_when_within(self):
        memory = Memory()
        memory.write(0, b"\x00" * 64)
        assert memory.expansion_cost(0, 64) == 0

    def test_expansion_cost_per_word(self):
        memory = Memory()
        assert memory.expansion_cost(0, 32) == GAS_MEMORY_WORD
        assert memory.expansion_cost(0, 33) == 2 * GAS_MEMORY_WORD

    def test_expansion_cost_incremental(self):
        memory = Memory()
        memory.write(0, b"\x00" * 32)
        assert memory.expansion_cost(32, 32) == GAS_MEMORY_WORD

    def test_zero_length_costs_nothing(self):
        assert Memory().expansion_cost(10_000, 0) == 0

    def test_size_words(self):
        memory = Memory()
        memory.write(0, b"\x00" * 65)
        assert memory.size_words == 3
