"""Assembler and disassembler tests."""

import pytest

from repro.evm import Op, assemble, disassemble, format_disassembly
from repro.evm.assembler import Assembler, AssemblyError


class TestProgrammaticAssembler:
    def test_push_auto_width(self):
        code = Assembler().push(0x05).assemble()
        assert code == bytes([int(Op.PUSH1), 0x05])

    def test_push_two_bytes(self):
        code = Assembler().push(0x1234).assemble()
        assert code == bytes([int(Op.PUSH2), 0x12, 0x34])

    def test_push_32_bytes(self):
        value = (1 << 255) + 1
        code = Assembler().push(value).assemble()
        assert code[0] == int(Op.PUSH32)
        assert int.from_bytes(code[1:], "big") == value

    def test_push_negative_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().push(-1)

    def test_push_too_wide_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().push(1 << 256)

    def test_label_resolution(self):
        asm = Assembler()
        asm.jump("end")
        asm.op(Op.STOP)
        asm.jumpdest("end").op(Op.STOP)
        code = asm.assemble()
        # PUSH2 <offset> JUMP STOP JUMPDEST STOP
        target = int.from_bytes(code[1:3], "big")
        assert code[target] == int(Op.JUMPDEST)

    def test_undefined_label_rejected(self):
        asm = Assembler().push_label("nowhere")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_rejected(self):
        asm = Assembler().label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_backward_jump(self):
        asm = Assembler()
        asm.jumpdest("loop")
        asm.jump("loop")
        code = asm.assemble()
        assert int.from_bytes(code[2:4], "big") == 0

    def test_size_property(self):
        asm = Assembler().push(5).op(Op.ADD).push_label("x").label("x")
        assert asm.size == 2 + 1 + 3

    def test_raw_bytes(self):
        code = Assembler().raw(b"\xfe\xfd").assemble()
        assert code == b"\xfe\xfd"


class TestTextAssembler:
    def test_simple_program(self):
        code = assemble("PUSH 0x02\nPUSH 0x03\nADD\nSTOP")
        ops = [i.op for i in disassemble(code)]
        assert ops == [Op.PUSH1, Op.PUSH1, Op.ADD, Op.STOP]

    def test_comments_and_blanks(self):
        code = assemble("""
            ; a comment
            PUSH 1   ; inline comment

            STOP
        """)
        assert len(list(disassemble(code))) == 2

    def test_labels(self):
        code = assemble("""
        start:
          PUSH :start
          JUMP
        """)
        assert int.from_bytes(code[1:3], "big") == 0

    def test_explicit_width_push(self):
        code = assemble("PUSH4 0x01")
        assert code == bytes([int(Op.PUSH4), 0, 0, 0, 1])

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("FROBNICATE")

    def test_unexpected_operand(self):
        with pytest.raises(AssemblyError):
            assemble("ADD 5")

    def test_push_missing_operand(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH")


class TestDisassembler:
    def test_roundtrip_operands(self):
        code = assemble("PUSH 0xABCD\nPOP\nSTOP")
        instructions = list(disassemble(code))
        assert instructions[0].operand == 0xABCD
        assert instructions[0].size == 3
        assert instructions[1].pc == 3

    def test_undefined_byte_becomes_invalid(self):
        instructions = list(disassemble(b"\xef"))
        assert instructions[0].op == Op.INVALID

    def test_truncated_push_operand(self):
        # PUSH2 with only one operand byte available.
        instructions = list(disassemble(bytes([int(Op.PUSH2), 0x01])))
        assert instructions[0].operand == 0x01

    def test_format_contains_names(self):
        text = format_disassembly(assemble("PUSH 1\nSTOP"))
        assert "PUSH1" in text and "STOP" in text

    def test_next_pc(self):
        instr = list(disassemble(assemble("PUSH 0x1234")))[0]
        assert instr.next_pc == 3
