"""Checkpoint/resume equivalence: a resumed run is indistinguishable from
the fresh run it was snapshotted out of.

The harness drives ``EVM.run`` by hand, answering storage reads from an
overlay (with frame save/restore for nested-call revert isolation), and
records the full (event, answer) script.  At every checkpointable
StorageRead it also captures ``EVM.checkpoint()``.  Replaying any of those
checkpoints with the recorded answers must re-yield exactly the script
suffix and return an ExecutionResult equal — field for field, including
``steps`` and ``gas_used`` — to the fresh run's.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Address, StateKey
from repro.evm import EVM, Message, assemble
from repro.evm.events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from repro.lang import compile_source

CONTRACT = Address.derive("ckpt")
SENDER = Address.derive("ckpt-sender")


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def run_capturing(resolver, message, backing=None):
    """Drive ``evm.run(message)``, capturing a checkpoint at every
    checkpointable StorageRead.

    Returns ``(result, script, checkpoints, writes)`` where ``script`` is
    the ordered list of ``(event, answer)`` pairs, ``checkpoints`` is a
    list of ``(script_position, VMCheckpoint)`` and ``writes`` the final
    committed overlay.
    """
    backing = backing or {}
    evm = EVM(resolver)
    overlay = {}
    saved = {}
    next_token = 1
    script = []
    checkpoints = []
    generator = evm.run(message)
    to_send = None
    while True:
        try:
            event = generator.send(to_send)
        except StopIteration as stop:
            return stop.value, script, checkpoints, overlay
        if isinstance(event, StorageRead):
            snapshot = evm.checkpoint()
            if snapshot is not None:
                checkpoints.append((len(script), snapshot))
            answer = overlay.get(event.key, backing.get(event.key, 0))
            script.append((event, answer))
            to_send = answer
        elif isinstance(event, StorageWrite):
            overlay[event.key] = event.value
            script.append((event, None))
            to_send = None
        elif isinstance(event, FrameCheckpoint):
            token = next_token
            next_token += 1
            saved[token] = dict(overlay)
            script.append((event, token))
            to_send = token
        elif isinstance(event, FrameCommit):
            saved.pop(event.token, None)
            script.append((event, None))
            to_send = None
        elif isinstance(event, FrameRevert):
            overlay.clear()
            overlay.update(saved.pop(event.token))
            script.append((event, None))
            to_send = None
        elif isinstance(event, (Watchpoint, EmittedLog)):
            script.append((event, None))
            to_send = None
        else:  # pragma: no cover - new event kinds must be handled here
            raise AssertionError(f"unhandled event {event!r}")


def replay_from(resolver, checkpoint, script, start):
    """Resume ``checkpoint`` on a fresh EVM, answering every event with the
    recorded answer and asserting the event stream matches the script
    suffix exactly.  Returns the resumed ExecutionResult."""
    evm = EVM(resolver)
    generator = evm.resume(checkpoint)
    position = start
    to_send = None
    while True:
        try:
            event = generator.send(to_send)
        except StopIteration as stop:
            assert position == len(script), (
                f"resume halted after {position} events, fresh run saw "
                f"{len(script)}"
            )
            return stop.value
        recorded_event, answer = script[position]
        assert event == recorded_event, (
            f"event #{position} diverged: resumed {event!r} vs "
            f"fresh {recorded_event!r}"
        )
        position += 1
        to_send = answer


# ----------------------------------------------------------------------
# Random Minisol programs that actually read storage
# ----------------------------------------------------------------------

STORAGE_VARS = ("s0", "s1", "s2")


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.sampled_from(
            ["lit", "a", "b", *STORAGE_VARS]))
        if choice == "lit":
            return str(draw(st.integers(0, 1_000)))
        return choice
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def storage_programs(draw):
    """A random Minisol function over three storage vars: assignments,
    ``+=``, data-dependent ``if``s and bounded ``while`` loops — every
    storage-var mention is an SLOAD, i.e. a checkpoint site."""
    loop_counters = []

    def statement(depth):
        kinds = ["assign", "inc"]
        if depth < 2:
            kinds += ["if", "while"]
        kind = draw(st.sampled_from(kinds))
        if kind == "assign":
            target = draw(st.sampled_from(STORAGE_VARS))
            return f"{target} = {draw(expressions())};"
        if kind == "inc":
            target = draw(st.sampled_from(STORAGE_VARS))
            return f"{target} += {draw(expressions())};"
        if kind == "if":
            cond = f"({draw(expressions())} < {draw(expressions())})"
            body = " ".join(
                statement(depth + 1)
                for _ in range(draw(st.integers(1, 2))))
            return f"if {cond} {{ {body} }}"
        counter = f"i{len(loop_counters) + 1}"
        loop_counters.append(counter)
        bound = draw(st.integers(1, 3))
        body = " ".join(
            statement(depth + 1) for _ in range(draw(st.integers(1, 2))))
        return (f"while ({counter} < {bound}) "
                f"{{ {body} {counter} = {counter} + 1; }}")

    statements = [
        statement(0) for _ in range(draw(st.integers(1, 5)))]
    # Guarantee at least one storage read so every program has a
    # checkpoint site.
    statements.append("s0 += s1;")
    declarations = " ".join(f"uint {c} = 0;" for c in loop_counters)
    body = "\n                ".join(statements)
    return f"""
        contract P {{
            uint s0; uint s1; uint s2;
            function f(uint a, uint b) public {{
                {declarations}
                {body}
            }}
        }}
    """


class TestCheckpointResumeProperty:
    @given(
        storage_programs(),
        st.integers(0, 2**64),
        st.integers(0, 2**64),
        st.tuples(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50)),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_resume_identical_to_fresh_run(self, source, a, b, initial):
        """Resuming ANY checkpoint of a random program, fed the recorded
        answers, re-yields the exact event suffix and an equal result."""
        compiled = compile_source(source)

        def resolver(address):
            return compiled.code

        backing = {
            StateKey(CONTRACT, compiled.slot_of(var)): value
            for var, value in zip(STORAGE_VARS, initial)
        }
        message = Message(
            SENDER, CONTRACT, 0, compiled.encode_call("f", a, b), 10**7)
        result, script, checkpoints, writes = run_capturing(
            resolver, message, backing)
        assert result.success, result
        assert checkpoints, "every generated program reads storage"

        for position, snapshot in checkpoints:
            resumed = replay_from(resolver, snapshot, script, position)
            assert resumed == result

    @given(
        storage_programs(),
        st.integers(0, 2**64),
        st.integers(0, 2**64),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_checkpoint_survives_repeated_resume(self, source, a, b):
        """Checkpoints are copy-on-write: resuming one must not corrupt it
        for a second resume (DMVCC may retry from the same checkpoint)."""
        compiled = compile_source(source)

        def resolver(address):
            return compiled.code

        message = Message(
            SENDER, CONTRACT, 0, compiled.encode_call("f", a, b), 10**7)
        result, script, checkpoints, _writes = run_capturing(
            resolver, message)
        position, snapshot = checkpoints[0]
        first = replay_from(resolver, snapshot, script, position)
        second = replay_from(resolver, snapshot, script, position)
        assert first == result
        assert second == result


class TestDivergentResume:
    def test_resume_with_different_read_value(self):
        """The production abort path re-answers the pending read with a
        fresh resolution; downstream writes must reflect the new value."""
        source = """
            contract C {
                uint s0; uint s1;
                function f() public { s1 = s0 + 1; }
            }
        """
        compiled = compile_source(source)

        def resolver(address):
            return compiled.code

        key0 = StateKey(CONTRACT, compiled.slot_of("s0"))
        key1 = StateKey(CONTRACT, compiled.slot_of("s1"))
        message = Message(
            SENDER, CONTRACT, 0, compiled.encode_call("f"), 10**7)
        result, script, checkpoints, writes = run_capturing(
            resolver, message, backing={key0: 5})
        assert writes[key1] == 6

        read_positions = [
            (pos, ck) for pos, ck in checkpoints
            if ck.event.key == key0
        ]
        assert read_positions
        position, snapshot = read_positions[0]

        evm = EVM(resolver)
        generator = evm.resume(snapshot)
        event = generator.send(None)
        assert event == script[position][0]
        replayed_writes = {}
        to_send = 41  # a different resolution than the original 5
        while True:
            try:
                event = generator.send(to_send)
            except StopIteration as stop:
                resumed = stop.value
                break
            if isinstance(event, StorageWrite):
                replayed_writes[event.key] = event.value
            to_send = None
        assert resumed.success
        assert replayed_writes[key1] == 42


CALLER_ADDR = Address.derive("ckpt-outer")
CALLEE_ADDR = Address.derive("ckpt-inner")

# Callee: increment its own slot 0 (SLOAD inside the child frame — a
# depth-2 checkpoint site) and return the new value.
CALLEE = """
    PUSH 0
    SLOAD
    PUSH 1
    ADD
    DUP1
    PUSH 0
    SSTORE
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
"""


def caller_program():
    """Outer contract: CALL the callee, store the returned word at slot 1."""
    return f"""
        PUSH 32
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH {CALLEE_ADDR.to_word()}
        PUSH 100000
        CALL
        PUSH 1
        SSTORE
        PUSH 0
        MLOAD
        PUSH 2
        SSTORE
    """


class TestNestedCallCheckpoint:
    def test_checkpoint_inside_child_frame(self):
        caller_code = assemble(caller_program())
        callee_code = assemble(CALLEE)

        def resolver(address):
            if address == CALLER_ADDR:
                return caller_code
            if address == CALLEE_ADDR:
                return callee_code
            return b""

        backing = {StateKey(CALLEE_ADDR, 0): 9}
        message = Message(SENDER, CALLER_ADDR, 0, b"", 10**6)
        result, script, checkpoints, writes = run_capturing(
            resolver, message, backing)
        assert result.success
        assert writes[StateKey(CALLEE_ADDR, 0)] == 10
        assert writes[StateKey(CALLER_ADDR, 2)] == 10

        nested = [
            (pos, ck) for pos, ck in checkpoints if ck.depth == 2]
        assert nested, "expected a checkpoint taken inside the child frame"
        for position, snapshot in nested:
            assert snapshot.event.key == StateKey(CALLEE_ADDR, 0)
            resumed = replay_from(resolver, snapshot, script, position)
            assert resumed == result
