"""Operand stack tests."""

import pytest

from repro.core.errors import StackOverflow, StackUnderflow
from repro.evm.opcodes import STACK_LIMIT
from repro.evm.stack import Stack


class TestPushPop:
    def test_lifo(self):
        stack = Stack()
        stack.push(1)
        stack.push(2)
        assert stack.pop() == 2
        assert stack.pop() == 1

    def test_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack().pop()

    def test_overflow(self):
        stack = Stack()
        for i in range(STACK_LIMIT):
            stack.push(i)
        with pytest.raises(StackOverflow):
            stack.push(0)

    def test_push_wraps_words(self):
        stack = Stack()
        stack.push(1 << 256)
        assert stack.pop() == 0

    def test_pop_many_order(self):
        stack = Stack()
        for value in (1, 2, 3):
            stack.push(value)
        assert stack.pop_many(2) == [3, 2]
        assert len(stack) == 1

    def test_pop_many_underflow(self):
        stack = Stack()
        stack.push(1)
        with pytest.raises(StackUnderflow):
            stack.pop_many(2)


class TestPeekDupSwap:
    def test_peek(self):
        stack = Stack()
        stack.push(10)
        stack.push(20)
        assert stack.peek() == 20
        assert stack.peek(1) == 10
        assert len(stack) == 2

    def test_peek_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack().peek()

    def test_dup(self):
        stack = Stack()
        stack.push(7)
        stack.push(8)
        stack.dup(2)  # DUP2 copies the second item
        assert stack.pop() == 7
        assert len(stack) == 2

    def test_dup_underflow(self):
        stack = Stack()
        stack.push(1)
        with pytest.raises(StackUnderflow):
            stack.dup(2)

    def test_swap(self):
        stack = Stack()
        for value in (1, 2, 3):
            stack.push(value)
        stack.swap(2)  # SWAP2: top <-> third
        assert stack.as_list() == [3, 2, 1]

    def test_swap_underflow(self):
        stack = Stack()
        stack.push(1)
        with pytest.raises(StackUnderflow):
            stack.swap(1)

    def test_as_list_bottom_first(self):
        stack = Stack()
        stack.push(1)
        stack.push(2)
        assert stack.as_list() == [1, 2]
