"""Interpreter tests: arithmetic, control flow, storage, environment, halts.

Each test assembles a small program, runs it through the reference driver,
and inspects the result / write set.  The convention used by the helpers:
programs leave their answer in storage slot 0 (``PUSH 0; SSTORE``) or
return it via RETURN.
"""

import pytest

from repro.core import Address, StateKey
from repro.evm import (
    EVM,
    BlockContext,
    HaltReason,
    Message,
    assemble,
    drive,
    intrinsic_gas,
)
from repro.state import WriteJournal

CONTRACT = Address.derive("vm-test")
SENDER = Address.derive("sender")


def run(source, data=b"", state=None, gas=1_000_000, value=0, block=None):
    code = assemble(source)
    state = state or {}
    evm = EVM(lambda a: code if a == CONTRACT else b"", block=block)
    journal = WriteJournal(lambda key: state.get(key, 0))
    message = Message(SENDER, CONTRACT, value, data, gas)
    return drive(evm, message, journal)


def stored(outcome, slot=0):
    return outcome.write_set.get(StateKey(CONTRACT, slot))


class TestArithmetic:
    def test_add(self):
        out = run("PUSH 3\nPUSH 4\nADD\nPUSH 0\nSSTORE")
        assert stored(out) == 7

    def test_sub_order(self):
        # SUB computes top - second: PUSH 3, PUSH 10 -> 10 - 3
        out = run("PUSH 3\nPUSH 10\nSUB\nPUSH 0\nSSTORE")
        assert stored(out) == 7

    def test_div_order(self):
        out = run("PUSH 4\nPUSH 20\nDIV\nPUSH 0\nSSTORE")
        assert stored(out) == 5

    def test_div_by_zero(self):
        out = run("PUSH 0\nPUSH 20\nDIV\nPUSH 0\nSSTORE")
        assert out.result.success
        assert out.write_set[StateKey(CONTRACT, 0)] == 0

    def test_mod(self):
        out = run("PUSH 3\nPUSH 20\nMOD\nPUSH 0\nSSTORE")
        assert stored(out) == 2

    def test_exp(self):
        out = run("PUSH 8\nPUSH 2\nEXP\nPUSH 0\nSSTORE")
        assert stored(out) == 256

    def test_addmod(self):
        out = run("PUSH 7\nPUSH 5\nPUSH 4\nADDMOD\nPUSH 0\nSSTORE")
        assert stored(out) == (4 + 5) % 7

    def test_mulmod(self):
        out = run("PUSH 7\nPUSH 5\nPUSH 4\nMULMOD\nPUSH 0\nSSTORE")
        assert stored(out) == (4 * 5) % 7

    def test_comparison_chain(self):
        out = run("PUSH 2\nPUSH 1\nLT\nPUSH 0\nSSTORE")  # 1 < 2
        assert stored(out) == 1

    def test_iszero(self):
        out = run("PUSH 0\nISZERO\nPUSH 0\nSSTORE")
        assert stored(out) == 1

    def test_bitwise(self):
        out = run("PUSH 0x0F\nPUSH 0x3C\nAND\nPUSH 0\nSSTORE")
        assert stored(out) == 0x0C

    def test_shifts(self):
        out = run("PUSH 1\nPUSH 4\nSHL\nPUSH 0\nSSTORE")  # 1 << 4
        assert stored(out) == 16

    def test_byte(self):
        out = run("PUSH 0xAB\nPUSH 31\nBYTE\nPUSH 0\nSSTORE")
        assert stored(out) == 0xAB


class TestControlFlow:
    def test_jump(self):
        out = run("""
            PUSH :skip
            JUMP
            PUSH 99
            PUSH 0
            SSTORE
        skip:
            JUMPDEST
            PUSH 1
            PUSH 0
            SSTORE
        """)
        assert stored(out) == 1

    def test_jumpi_taken(self):
        out = run("""
            PUSH 1
            PUSH :yes
            JUMPI
            STOP
        yes:
            JUMPDEST
            PUSH 42
            PUSH 0
            SSTORE
        """)
        assert stored(out) == 42

    def test_jumpi_not_taken(self):
        out = run("""
            PUSH 0
            PUSH :yes
            JUMPI
            STOP
        yes:
            JUMPDEST
            PUSH 42
            PUSH 0
            SSTORE
        """)
        assert out.result.success
        assert stored(out) is None

    def test_invalid_jump_destination(self):
        out = run("PUSH 1\nJUMP")
        assert out.result.status == HaltReason.BAD_JUMP

    def test_jump_into_push_data_rejected(self):
        # Offset 1 is the PUSH operand (0x5B = JUMPDEST byte) — not valid.
        code_src = "PUSH 0x5B\nPUSH 1\nJUMP"
        out = run(code_src)
        assert out.result.status == HaltReason.BAD_JUMP

    def test_loop_countdown(self):
        out = run("""
            PUSH 5
        loop:
            JUMPDEST
            PUSH 1
            DUP2
            SUB
            SWAP1
            POP
            DUP1
            PUSH :loop
            JUMPI
            PUSH 123
            PUSH 0
            SSTORE
        """)
        assert stored(out) == 123

    def test_pc_opcode(self):
        out = run("PC\nPUSH 0\nSSTORE")
        assert out.write_set[StateKey(CONTRACT, 0)] == 0

    def test_fall_off_end_is_stop(self):
        out = run("PUSH 1\nPUSH 0\nSSTORE")
        assert out.result.success


class TestHalts:
    def test_stop(self):
        out = run("STOP\nPUSH 1\nPUSH 0\nSSTORE")
        assert out.result.success
        assert not out.write_set

    def test_return_data(self):
        out = run("""
            PUSH 0xCAFE
            PUSH 0
            MSTORE
            PUSH 32
            PUSH 0
            RETURN
        """)
        assert out.result.success
        assert int.from_bytes(out.result.return_data, "big") == 0xCAFE

    def test_revert_discards_writes(self):
        out = run("""
            PUSH 7
            PUSH 0
            SSTORE
            PUSH 0
            PUSH 0
            REVERT
        """)
        assert out.result.status == HaltReason.REVERT
        assert not out.write_set

    def test_invalid_consumes_all_gas(self):
        out = run("INVALID", gas=50_000)
        assert out.result.status == HaltReason.ASSERT_FAIL
        assert out.result.gas_used == 50_000

    def test_out_of_gas(self):
        out = run("PUSH 1\nPUSH 0\nSSTORE", gas=100)
        assert out.result.status == HaltReason.OUT_OF_GAS
        assert out.result.gas_used == 100
        assert not out.write_set

    def test_stack_underflow(self):
        out = run("ADD")
        assert out.result.status == HaltReason.STACK_ERROR

    def test_undefined_opcode(self):
        code = b"\xef"
        evm = EVM(lambda a: code)
        journal = WriteJournal(lambda key: 0)
        out = drive(evm, Message(SENDER, CONTRACT, 0, b"", 10_000), journal)
        assert out.result.status == HaltReason.INVALID


class TestEnvironment:
    def test_caller(self):
        out = run("CALLER\nPUSH 0\nSSTORE")
        assert stored(out) == SENDER.to_word()

    def test_address(self):
        out = run("ADDRESS\nPUSH 0\nSSTORE")
        assert stored(out) == CONTRACT.to_word()

    def test_callvalue(self):
        out = run("CALLVALUE\nPUSH 0\nSSTORE", value=55)
        assert stored(out) == 55

    def test_calldataload(self):
        data = (99).to_bytes(32, "big")
        out = run("PUSH 0\nCALLDATALOAD\nPUSH 0\nSSTORE", data=data)
        assert stored(out) == 99

    def test_calldataload_padding(self):
        out = run("PUSH 0\nCALLDATALOAD\nPUSH 0\nSSTORE", data=b"\x01")
        assert stored(out) == 1 << 248  # right-padded with zeros

    def test_calldatasize(self):
        out = run("CALLDATASIZE\nPUSH 0\nSSTORE", data=b"abc")
        assert stored(out) == 3

    def test_calldatacopy(self):
        out = run(
            """
            PUSH 4
            PUSH 0
            PUSH 0
            CALLDATACOPY
            PUSH 0
            MLOAD
            PUSH 0
            SSTORE
            """,
            data=b"\x11\x22\x33\x44",
        )
        assert stored(out) == 0x11223344 << (28 * 8)

    def test_block_context(self):
        out = run(
            "NUMBER\nPUSH 0\nSSTORE\nTIMESTAMP\nPUSH 1\nSSTORE",
            block=BlockContext(number=7, timestamp=1234),
        )
        assert stored(out, 0) == 7
        assert stored(out, 1) == 1234

    def test_balance_read(self):
        state = {StateKey.balance(SENDER): 777}
        out = run("CALLER\nBALANCE\nPUSH 0\nSSTORE", state=state)
        assert stored(out) == 777

    def test_selfbalance(self):
        state = {StateKey.balance(CONTRACT): 42}
        out = run("SELFBALANCE\nPUSH 0\nSSTORE", state=state)
        assert stored(out) == 42


class TestStorage:
    def test_sload_default_zero(self):
        out = run("PUSH 5\nSLOAD\nPUSH 0\nSSTORE")
        assert out.write_set[StateKey(CONTRACT, 0)] == 0

    def test_sload_from_state(self):
        state = {StateKey(CONTRACT, 5): 88}
        out = run("PUSH 5\nSLOAD\nPUSH 0\nSSTORE", state=state)
        assert stored(out) == 88

    def test_read_own_write(self):
        out = run("""
            PUSH 9
            PUSH 3
            SSTORE
            PUSH 3
            SLOAD
            PUSH 0
            SSTORE
        """)
        assert stored(out) == 9

    def test_read_set_recorded(self):
        state = {StateKey(CONTRACT, 5): 88}
        out = run("PUSH 5\nSLOAD\nPOP", state=state)
        assert out.read_set == {StateKey(CONTRACT, 5): 88}

    def test_trace_order_and_gas_monotonic(self):
        code = "PUSH 1\nPUSH 0\nSSTORE\nPUSH 0\nSLOAD\nPOP"
        state = {}
        evm = EVM(lambda a: assemble(code))
        journal = WriteJournal(lambda key: state.get(key, 0))
        out = drive(evm, Message(SENDER, CONTRACT, 0, b"", 10**6), journal,
                    collect_trace=True)
        kinds = [t.kind for t in out.trace]
        assert kinds == ["write", "read"]
        assert out.trace[0].gas_used < out.trace[1].gas_used


class TestMemoryOps:
    def test_mstore_mload(self):
        out = run("PUSH 0xAB\nPUSH 64\nMSTORE\nPUSH 64\nMLOAD\nPUSH 0\nSSTORE")
        assert stored(out) == 0xAB

    def test_mstore8(self):
        out = run("PUSH 0xFFEE\nPUSH 0\nMSTORE8\nPUSH 0\nMLOAD\nPUSH 0\nSSTORE")
        assert stored(out) == 0xEE << 248

    def test_msize(self):
        out = run("PUSH 1\nPUSH 0\nMSTORE\nMSIZE\nPUSH 0\nSSTORE")
        assert stored(out) == 32

    def test_sha3(self):
        from repro.core import hash_words
        out = run("""
            PUSH 5
            PUSH 0
            MSTORE
            PUSH 32
            PUSH 0
            SHA3
            PUSH 0
            SSTORE
        """)
        assert stored(out) == hash_words(5)


class TestGasAccounting:
    def test_intrinsic_gas(self):
        assert intrinsic_gas(b"") == 21_000
        assert intrinsic_gas(b"\x00") == 21_004
        assert intrinsic_gas(b"\x01") == 21_016

    def test_gas_opcode_decreases(self):
        out = run("GAS\nPUSH 0\nSSTORE\nGAS\nPUSH 1\nSSTORE", gas=100_000)
        first = out.write_set[StateKey(CONTRACT, 0)]
        second = out.write_set[StateKey(CONTRACT, 1)]
        assert second < first < 100_000

    def test_gas_used_reported(self):
        out = run("PUSH 1\nPOP", gas=100_000)
        assert out.result.gas_used == 5

    def test_exact_simple_cost(self):
        # PUSH(3) + PUSH(3) + ADD(3) + POP(2) = 11
        out = run("PUSH 1\nPUSH 2\nADD\nPOP", gas=100_000)
        assert out.result.gas_used == 11

    def test_logs_collected(self):
        out = run("""
            PUSH 0xBEEF
            PUSH 0
            MSTORE
            PUSH 7
            PUSH 32
            PUSH 0
            LOG1
        """)
        assert out.result.success
        assert len(out.result.logs) == 1
        log = out.result.logs[0]
        assert log.topics == (7,)
        assert int.from_bytes(log.data, "big") == 0xBEEF
