"""Execution tracer tests."""

from repro.core import Address, StateKey, mapping_slot
from repro.evm import Message, format_trace, gas_profile, trace_message

CONTRACT = Address.derive("trace-me")
ALICE = Address.derive("alice")
BOB = Address.derive("bob")


def trace_call(compiled, fn, *args, state=None):
    state = state or {}
    return trace_message(
        lambda a: compiled.code if a == CONTRACT else b"",
        Message(ALICE, CONTRACT, 0, compiled.encode_call(fn, *args), 1_000_000),
        lambda key: state.get(key, 0),
    )


class TestTraceMessage:
    def test_records_reads_and_writes(self, token_contract):
        trace = trace_call(token_contract, "mint", BOB, 50)
        assert trace.result.success
        kinds = {s.kind for s in trace.steps}
        assert "read" in kinds and "write" in kinds
        bal = token_contract.slot_of("balanceOf")
        bob_key = StateKey(CONTRACT, mapping_slot(BOB.to_word(), bal))
        assert trace.writes[bob_key] == 50

    def test_gas_monotonic(self, token_contract):
        trace = trace_call(token_contract, "mint", BOB, 50)
        gas = [s.gas_used for s in trace.steps]
        assert gas == sorted(gas)

    def test_failed_execution_has_no_writes(self, token_contract):
        trace = trace_call(token_contract, "transfer", BOB, 999)
        assert not trace.result.success
        assert trace.writes == {}
        assert trace.reads  # the balance check still read

    def test_storage_ops_counted(self, counter_contract):
        trace = trace_call(counter_contract, "increment", 5)
        assert trace.storage_ops == 2  # one SLOAD + one SSTORE

    def test_logs_traced(self, erc20_contract):
        state = {}
        # Mint first so the transfer succeeds and emits.
        bal = erc20_contract.slot_of("balanceOf")
        state[StateKey(CONTRACT, mapping_slot(ALICE.to_word(), bal))] = 100
        trace = trace_call(erc20_contract, "transfer", BOB, 10, state=state)
        assert trace.result.success
        assert any(s.kind == "log" for s in trace.steps)


class TestFormatting:
    def test_format_contains_operations(self, counter_contract):
        trace = trace_call(counter_contract, "increment", 5)
        text = format_trace(trace)
        assert "SLOAD" in text and "SSTORE" in text
        assert "gas" in text

    def test_format_truncates(self, counter_contract):
        trace = trace_call(counter_contract, "increment", 5)
        text = format_trace(trace, max_steps=1)
        assert "more steps" in text


class TestGasProfile:
    def test_histogram_shape(self, token_contract):
        profile = gas_profile(token_contract.code)
        assert "SSTORE" in profile
        count, gas = profile["PUSH1"]
        assert count > 0 and gas == count * 3

    def test_counts_sum_to_instruction_count(self, counter_contract):
        from repro.evm import disassemble

        profile = gas_profile(counter_contract.code)
        total = sum(count for count, _gas in profile.values())
        assert total == len(list(disassemble(counter_contract.code)))


class TestPSAGDot:
    def test_dot_render(self, token_contract):
        from repro.analysis import build_psag

        psag = build_psag(token_contract.code)
        dot = psag.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "start" in dot and "end" in dot
        # Every retained node appears.
        for node in psag.access_nodes():
            assert f"pc{node.pc}" in dot

    def test_dot_marks_commutative(self, erc20_contract):
        from repro.analysis import build_psag

        dot = build_psag(erc20_contract.code).to_dot()
        assert "ω̄" in dot
