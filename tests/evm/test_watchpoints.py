"""Watchpoint (release-point hook) tests."""

from repro.core import Address
from repro.evm import EVM, Message, Watchpoint, assemble, drive
from repro.state import WriteJournal

CONTRACT = Address.derive("watch")
SENDER = Address.derive("watcher")

SOURCE = """
    PUSH 1
    POP
target:
    JUMPDEST
    PUSH 2
    POP
    STOP
"""


def run_with_watch(pcs, source=SOURCE, gas=100_000):
    code = assemble(source)
    evm = EVM(
        lambda a: code if a == CONTRACT else b"",
        watchpoints={CONTRACT: frozenset(pcs)},
    )
    journal = WriteJournal(lambda key: 0)
    events = []
    outcome = drive(
        evm, Message(SENDER, CONTRACT, 0, b"", gas), journal,
        on_watchpoint=events.append,
    )
    return outcome, events


class TestWatchpoints:
    def test_fires_at_registered_pc(self):
        # 'target' JUMPDEST sits at pc 3 (PUSH1 1 = 2 bytes, POP = 1).
        outcome, events = run_with_watch({3})
        assert outcome.result.success
        assert [e.pc for e in events] == [3]
        assert outcome.watchpoints_hit == [3]

    def test_not_fired_when_unregistered(self):
        outcome, events = run_with_watch(set())
        assert events == []

    def test_carries_gas_remaining(self):
        _, events = run_with_watch({3}, gas=100_000)
        (event,) = events
        assert isinstance(event, Watchpoint)
        assert 0 < event.gas_remaining < 100_000
        assert event.gas_used + event.gas_remaining == 100_000

    def test_fires_every_crossing_in_loops(self):
        source = """
            PUSH 3
        loop:
            JUMPDEST
            PUSH 1
            SWAP1
            SUB
            DUP1
            PUSH :loop
            JUMPI
            STOP
        """
        code = assemble(source)
        # The loop JUMPDEST is at pc 2.
        evm = EVM(lambda a: code, watchpoints={CONTRACT: frozenset({2})})
        journal = WriteJournal(lambda key: 0)
        hits = []
        drive(evm, Message(SENDER, CONTRACT, 0, b"", 100_000), journal,
              on_watchpoint=hits.append)
        assert len(hits) == 3  # three loop iterations

    def test_per_contract_scoping(self):
        other = Address.derive("other-contract")
        code = assemble(SOURCE)
        evm = EVM(
            lambda a: code,
            watchpoints={other: frozenset({3})},  # watch the *other* address
        )
        journal = WriteJournal(lambda key: 0)
        hits = []
        drive(evm, Message(SENDER, CONTRACT, 0, b"", 100_000), journal,
              on_watchpoint=hits.append)
        assert hits == []
