"""Shared fixtures for the scheduling suite (mirrors tests/substrate)."""

import pytest

from repro.workload import Workload
from repro.workload.scenarios import scenario_config

SMALL = dict(users=40, erc20_tokens=2, dex_pools=2, nft_collections=2, icos=1)
TXS = 16

_cases = {}


def scenario_case(scenario: str, txs: int = TXS, seed: int = 7):
    """(workload, transactions) for one scaled-down scenario, cached."""
    key = (scenario, txs, seed)
    if key not in _cases:
        workload = Workload(scenario_config(scenario, seed=seed, **SMALL))
        _cases[key] = (workload, workload.transactions(txs))
    return _cases[key]


@pytest.fixture(scope="session")
def threads_substrate():
    from repro.substrate import get_substrate

    substrate = get_substrate("threads", workers=3)
    yield substrate
    substrate.close()


@pytest.fixture(scope="session")
def processes_substrate():
    from repro.substrate import get_substrate

    substrate = get_substrate("processes", workers=3)
    yield substrate
    substrate.close()


def receipt_digest(execution):
    """Consensus-visible receipt fields; ``attempts`` is timing-dependent
    on real backends and deliberately excluded."""
    return [
        (r.index, r.result.status.name, r.result.gas_used,
         r.result.return_data, r.result.error, r.result.steps)
        for r in execution.receipts
    ]
