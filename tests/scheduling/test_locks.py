"""Lock table and ready queue tests."""

from repro.analysis.csag import AccessType
from repro.core import Address, StateKey
from repro.scheduling import AccessSequenceSet, LockTable, ReadyQueue

CONTRACT = Address.derive("c")
K0 = StateKey(CONTRACT, 0)
K1 = StateKey(CONTRACT, 1)


class TestLockTable:
    def test_ready_with_no_needs(self):
        locks = LockTable()
        locks.register(1, [])
        assert locks.is_ready(1)

    def test_grant_progression(self):
        locks = LockTable()
        locks.register(1, [K0, K1])
        assert not locks.is_ready(1)
        assert locks.grant(1, K0) is False  # not yet fully ready
        assert locks.grant(1, K1) is True   # just became ready
        assert locks.is_ready(1)

    def test_double_grant_is_noop(self):
        locks = LockTable()
        locks.register(1, [K0])
        assert locks.grant(1, K0) is True
        assert locks.grant(1, K0) is False

    def test_grant_unregistered(self):
        locks = LockTable()
        assert locks.grant(99, K0) is False

    def test_release(self):
        locks = LockTable()
        locks.register(1, [K0])
        locks.grant(1, K0)
        locks.release(1, K0)
        assert not locks.is_ready(1)
        assert not locks.holds(1, K0)

    def test_release_all(self):
        locks = LockTable()
        locks.register(1, [K0, K1])
        locks.grant(1, K0)
        locks.grant(1, K1)
        locks.release_all(1)
        assert locks.state(1).granted == set()

    def test_missing(self):
        locks = LockTable()
        locks.register(1, [K0, K1])
        locks.grant(1, K0)
        assert locks.state(1).missing() == {K1}

    def test_refresh_from_sequences(self):
        sequences = AccessSequenceSet()
        seq = sequences.sequence(K0)
        seq.insert_predicted(1, AccessType.WRITE)
        seq.insert_predicted(2, AccessType.READ)
        locks = LockTable()
        locks.register(2, [K0])
        assert locks.refresh(2, sequences) is False  # blocked by T1
        seq.version_write(1, value=5)
        assert locks.refresh(2, sequences) is True

    def test_refresh_unknown_key_granted(self):
        # A key with no access sequence can always be read (snapshot).
        locks = LockTable()
        locks.register(1, [K0])
        assert locks.refresh(1, AccessSequenceSet()) is True


class TestReadyQueue:
    def test_pops_lowest_index(self):
        queue = ReadyQueue()
        queue.push(5)
        queue.push(2)
        queue.push(9)
        assert queue.pop() == 2
        assert queue.pop() == 5
        assert queue.pop() == 9
        assert queue.pop() is None

    def test_duplicate_push_ignored(self):
        queue = ReadyQueue()
        assert queue.push(1) is True
        assert queue.push(1) is False
        assert len(queue) == 1

    def test_membership(self):
        queue = ReadyQueue()
        queue.push(3)
        assert 3 in queue
        queue.pop()
        assert 3 not in queue

    def test_lazy_removal(self):
        queue = ReadyQueue()
        queue.push(1)
        queue.push(2)
        assert queue.remove(1) is True
        assert queue.remove(1) is False
        assert queue.pop() == 2
        assert queue.pop() is None

    def test_reinsert_after_pop(self):
        queue = ReadyQueue()
        queue.push(1)
        queue.pop()
        assert queue.push(1) is True
        assert queue.pop() == 1
