"""ConflictProfileStore: EWMA decay, hot-key promotion, persistence."""

import pytest

from repro.core import Address, StateKey
from repro.obs.attribution import AbortAttribution
from repro.obs.events import EventBus
from repro.scheduling import ConflictProfileStore
from repro.scheduling.profile import (
    ABORT_WEIGHT,
    WAIT_WEIGHT,
    key_from_json,
    key_to_json,
)

CONTRACT = Address.derive("profiled")
K1 = StateKey(CONTRACT, 1)
K2 = StateKey(CONTRACT, 2)


def attribution_with(aborts=0, waits=0, key=K1):
    """A real AbortAttribution built from a synthetic event stream."""
    bus = EventBus()
    for i in range(aborts):
        bus.tx_abort(float(i), i + 1, attempt=1, key=key, writer=0)
    for i in range(waits):
        bus.version_wait_begin(float(i), i + 1, keys=(key,), blockers=(0,))
        bus.version_wait_end(float(i) + 1.0, i + 1)
    return AbortAttribution.from_events(bus.events)


class TestKeyJson:
    def test_round_trip(self):
        assert key_from_json(key_to_json(K1)) == K1

    def test_shape(self):
        payload = key_to_json(K2)
        assert set(payload) == {"address", "slot"}


class TestHeatAccumulation:
    def test_abort_heat(self):
        store = ConflictProfileStore()
        store.observe_block(attribution_with(aborts=2), block_number=1)
        assert store.heat(K1) == pytest.approx(2 * ABORT_WEIGHT)

    def test_wait_heat(self):
        store = ConflictProfileStore()
        store.observe_block(attribution_with(waits=3), block_number=1)
        assert store.heat(K1) == pytest.approx(3 * WAIT_WEIGHT)

    def test_aborts_outweigh_waits(self):
        store = ConflictProfileStore()
        store.observe_block(attribution_with(aborts=1, waits=1))
        assert store.heat(K1) > 2 * WAIT_WEIGHT

    def test_unseen_key_is_cold(self):
        store = ConflictProfileStore()
        store.observe_block(attribution_with(aborts=5, key=K1))
        assert store.heat(K2) == 0.0
        assert not store.is_hot(K2)


class TestDecay:
    def test_heat_decays_across_blocks(self):
        store = ConflictProfileStore(decay=0.5)
        store.observe_block(attribution_with(aborts=2), block_number=1)
        hot = store.heat(K1)
        store.observe_block(AbortAttribution(), block_number=2)
        assert store.heat(K1) == pytest.approx(hot * 0.5)

    def test_floor_prunes_cold_keys(self):
        store = ConflictProfileStore(decay=0.1, floor=0.5)
        store.observe_block(attribution_with(aborts=1), block_number=1)
        for n in range(2, 8):
            store.observe_block(AbortAttribution(), block_number=n)
        assert K1 not in store.keys
        assert store.heat(K1) == 0.0

    def test_fresh_contention_resets_the_clock(self):
        store = ConflictProfileStore(decay=0.5)
        store.observe_block(attribution_with(aborts=1), block_number=1)
        store.observe_block(attribution_with(aborts=1), block_number=2)
        # decayed old heat + fresh heat > fresh heat alone
        assert store.heat(K1) > ABORT_WEIGHT

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            ConflictProfileStore(decay=1.0)


class TestHotKeys:
    def test_threshold(self):
        store = ConflictProfileStore(hot_threshold=ABORT_WEIGHT + 1)
        store.observe_block(attribution_with(aborts=1, key=K1))
        assert not store.is_hot(K1)
        store.observe_block(attribution_with(aborts=2, key=K1))
        assert store.is_hot(K1)

    def test_ranking_hottest_first(self):
        store = ConflictProfileStore()
        store.observe_block(attribution_with(aborts=1, key=K1))
        store.observe_block(attribution_with(aborts=5, key=K2))
        ranked = store.hot_keys()
        assert [e.key for e in ranked][0] == K2

    def test_contract_heat_folds_keys(self):
        store = ConflictProfileStore()
        store.observe_block(attribution_with(aborts=1, key=K1))
        store.observe_block(attribution_with(aborts=1, key=K2))
        contracts = store.contract_heat()
        assert len(contracts) == 1
        assert contracts[0].address == CONTRACT
        assert contracts[0].aborts == 2


class TestPersistence:
    def test_store_json_round_trip(self):
        store = ConflictProfileStore(decay=0.6, floor=0.1, hot_threshold=2.0)
        store.observe_block(attribution_with(aborts=3, waits=2), block_number=7)
        clone = ConflictProfileStore.from_json(store.to_json())
        assert clone.decay == store.decay
        assert clone.heat(K1) == pytest.approx(store.heat(K1))
        assert clone.keys[K1].last_block == 7

    def test_observe_json_consumes_attribution_export(self):
        attribution = attribution_with(aborts=2, waits=1)
        direct = ConflictProfileStore()
        direct.observe_block(attribution, block_number=3)
        via_json = ConflictProfileStore()
        via_json.observe_json(attribution.to_json(), block_number=3)
        assert via_json.heat(K1) == pytest.approx(direct.heat(K1))
        assert via_json.keys[K1].aborts == direct.keys[K1].aborts

    def test_attribution_json_shape(self):
        payload = attribution_with(aborts=1, waits=1).to_json()
        assert payload["abort_count"] == 1
        entry = payload["contention"][0]
        assert key_from_json(entry["key"]) == K1
        assert entry["aborts"] == 1
        assert entry["waits"] == 1
        assert "savings" in payload

    def test_save_load_file_round_trip(self, tmp_path):
        path = tmp_path / "profiles.json"
        store = ConflictProfileStore(decay=0.6, hot_threshold=2.0)
        store.observe_block(attribution_with(aborts=3, waits=1),
                            block_number=9)
        store.save(path)
        loaded = ConflictProfileStore.load(path)
        assert loaded.heat(K1) == pytest.approx(store.heat(K1))
        assert loaded.hot_threshold == 2.0
        assert loaded.blocks_observed == store.blocks_observed
        assert not (tmp_path / "profiles.json.tmp").exists()  # atomic write

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            ConflictProfileStore.load(tmp_path / "absent.json")

    def test_restart_continuity_via_validator(self, tmp_path):
        """A validator restarted on the same --profile-db resumes with the
        heat its predecessor learned (no warm-up from zero)."""
        from repro.executors.serial import SerialExecutor
        from repro.scheduling import LanePlanner
        from repro.chain.validator import Validator
        from repro.state import StateDB

        path = str(tmp_path / "profile-db.json")
        first = Validator("v1", StateDB(), SerialExecutor(),
                          planner=LanePlanner(), profile_path=path)
        first.planner.observe(attribution_with(aborts=4), block_number=1)
        assert first.save_profiles()
        heat = first.planner.profiles.heat(K1)
        assert heat > 0

        second = Validator("v2", StateDB(), SerialExecutor(),
                           planner=LanePlanner(), profile_path=path)
        assert second.planner.profiles.heat(K1) == pytest.approx(heat)
        assert second.planner.profiles.is_hot(K1)

    def test_validator_without_planner_is_noop(self, tmp_path):
        from repro.executors.serial import SerialExecutor
        from repro.chain.validator import Validator
        from repro.state import StateDB

        v = Validator("v", StateDB(), SerialExecutor(),
                      profile_path=str(tmp_path / "p.json"))
        assert not v.save_profiles()
