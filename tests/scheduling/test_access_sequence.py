"""Access-sequence tests: write versioning, read resolution, Algorithm 3/4
semantics, and commutative merging."""

import pytest

from repro.analysis.csag import AccessType
from repro.core import Address, StateKey
from repro.core.errors import SchedulingError
from repro.scheduling import (
    SNAPSHOT_VERSION,
    AccessSequence,
    AccessSequenceSet,
)

KEY = StateKey(Address.derive("c"), 0)


def seq_with(*entries):
    seq = AccessSequence(KEY)
    for tx_index, access in entries:
        seq.insert_predicted(tx_index, access)
    return seq


class TestConstruction:
    def test_entries_sorted_by_index(self):
        seq = seq_with((5, AccessType.READ), (1, AccessType.WRITE), (3, AccessType.READ))
        assert [e.tx_index for e in seq.entries()] == [1, 3, 5]

    def test_duplicate_rejected(self):
        seq = seq_with((1, AccessType.READ))
        with pytest.raises(SchedulingError):
            seq.insert_predicted(1, AccessType.WRITE)

    def test_repr_shows_flags(self):
        seq = seq_with((1, AccessType.WRITE))
        assert "T1:ω[N]" in repr(seq)


class TestReadResolution:
    def test_no_predecessors_reads_snapshot(self):
        seq = seq_with((5, AccessType.READ))
        resolution = seq.resolve_read(5)
        assert resolution.ready
        assert resolution.from_snapshot
        assert resolution.version_from == SNAPSHOT_VERSION

    def test_blocked_by_unfinished_write(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.READ))
        resolution = seq.resolve_read(2)
        assert not resolution.ready
        assert resolution.blockers == (1,)

    def test_reads_closest_finished_write(self):
        seq = seq_with((1, AccessType.WRITE), (3, AccessType.WRITE), (5, AccessType.READ))
        seq.version_write(1, value=100)
        seq.version_write(3, value=300)
        resolution = seq.resolve_read(5)
        assert resolution.ready
        assert resolution.value == 300
        assert resolution.version_from == 3

    def test_skipped_write_ignored(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.READ))
        seq.version_write(1, skipped=True)
        resolution = seq.resolve_read(2)
        assert resolution.ready and resolution.from_snapshot

    def test_reader_does_not_see_later_writes(self):
        seq = seq_with((2, AccessType.READ), (5, AccessType.WRITE))
        seq.version_write(5, value=500)
        resolution = seq.resolve_read(2)
        assert resolution.from_snapshot

    def test_commutative_merge(self):
        seq = seq_with(
            (1, AccessType.WRITE),
            (2, AccessType.COMMUTATIVE),
            (3, AccessType.COMMUTATIVE),
            (4, AccessType.READ),
        )
        seq.version_write(1, value=100)
        seq.version_write(2, delta=5)
        seq.version_write(3, delta=7)
        resolution = seq.resolve_read(4)
        assert resolution.ready
        assert resolution.resolve_with_snapshot(0) == 112
        assert resolution.version_from == 1

    def test_commutative_over_snapshot(self):
        seq = seq_with((1, AccessType.COMMUTATIVE), (2, AccessType.READ))
        seq.version_write(1, delta=10)
        resolution = seq.resolve_read(2)
        assert resolution.from_snapshot
        assert resolution.resolve_with_snapshot(90) == 100

    def test_unfinished_commutative_blocks_reader(self):
        seq = seq_with((1, AccessType.COMMUTATIVE), (2, AccessType.READ))
        resolution = seq.resolve_read(2)
        assert not resolution.ready

    def test_best_available_skips_unfinished(self):
        seq = seq_with(
            (1, AccessType.WRITE), (3, AccessType.WRITE), (5, AccessType.READ)
        )
        seq.version_write(1, value=100)  # T3 not finished
        resolution = seq.best_available_read(5)
        assert resolution.ready
        assert resolution.value == 100


class TestVersionWrite:
    def test_finished_stale_reader_aborted(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.READ))
        seq.record_read(2, SNAPSHOT_VERSION)  # read before T1 wrote: stale
        allowed, aborted = seq.version_write(1, value=10)
        assert aborted == [2]

    def test_reader_of_newer_version_not_aborted(self):
        seq = seq_with(
            (1, AccessType.WRITE), (3, AccessType.WRITE), (5, AccessType.READ)
        )
        seq.version_write(3, value=300)
        seq.record_read(5, 3)
        _, aborted = seq.version_write(1, value=100)
        assert aborted == []

    def test_waiting_reader_allowed(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.READ))
        allowed, aborted = seq.version_write(1, value=10)
        assert allowed == [2]
        assert aborted == []

    def test_unpredicted_write_inserted(self):
        seq = seq_with((5, AccessType.READ))
        seq.version_write(3, value=30)  # analysis missed T3 entirely
        assert seq.entry(3) is not None
        assert seq.entry(3).declared is AccessType.WRITE

    def test_read_upgraded_to_theta(self):
        seq = seq_with((3, AccessType.READ))
        seq.version_write(3, value=30)
        assert seq.entry(3).declared is AccessType.READ_WRITE

    def test_value_xor_delta_enforced(self):
        seq = seq_with((1, AccessType.WRITE))
        with pytest.raises(SchedulingError):
            seq.version_write(1)
        with pytest.raises(SchedulingError):
            seq.version_write(1, value=1, delta=2)

    def test_commutative_insert_aborts_stale_merged_reader(self):
        seq = seq_with(
            (1, AccessType.COMMUTATIVE),
            (2, AccessType.COMMUTATIVE),
            (4, AccessType.READ),
        )
        seq.version_write(2, delta=5)
        seq.record_read(4, SNAPSHOT_VERSION)  # merged snapshot + T2's delta
        _, aborted = seq.version_write(1, delta=3)  # late delta below base
        assert aborted == [4]


class TestRetraction:
    def test_retract_clears_write(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.READ))
        seq.version_write(1, value=10)
        seq.retract(1)
        resolution = seq.resolve_read(2)
        assert not resolution.ready  # write is pending again

    def test_retract_reports_victims(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.READ))
        seq.version_write(1, value=10)
        seq.record_read(2, 1)
        victims = seq.retract(1)
        assert victims == [2]

    def test_retract_unwritten_is_noop(self):
        seq = seq_with((1, AccessType.WRITE))
        assert seq.retract(1) == []

    def test_reset_for_retry(self):
        seq = seq_with((1, AccessType.READ_WRITE))
        seq.version_write(1, value=10)
        seq.record_read(1, SNAPSHOT_VERSION)
        seq.reset_for_retry(1)
        entry = seq.entry(1)
        assert not entry.write_finished
        assert not entry.read_done
        assert entry.declared is AccessType.READ_WRITE  # prediction kept


class TestFinalValue:
    def test_last_absolute_write_wins(self):
        seq = seq_with((1, AccessType.WRITE), (2, AccessType.WRITE))
        seq.version_write(1, value=10)
        seq.version_write(2, value=20)
        assert seq.final_value(lambda k: 0) == 20

    def test_trailing_deltas_folded(self):
        seq = seq_with(
            (1, AccessType.WRITE),
            (2, AccessType.COMMUTATIVE),
            (3, AccessType.COMMUTATIVE),
        )
        seq.version_write(1, value=10)
        seq.version_write(2, delta=1)
        seq.version_write(3, delta=2)
        assert seq.final_value(lambda k: 0) == 13

    def test_deltas_only_use_snapshot(self):
        seq = seq_with((1, AccessType.COMMUTATIVE))
        seq.version_write(1, delta=5)
        assert seq.final_value(lambda k: 100) == 105

    def test_no_effective_writes(self):
        seq = seq_with((1, AccessType.READ), (2, AccessType.WRITE))
        seq.version_write(2, skipped=True)
        assert seq.final_value(lambda k: 0) is None


class TestSequenceSet:
    def test_lazy_creation(self):
        sequences = AccessSequenceSet()
        assert sequences.get(KEY) is None
        sequences.sequence(KEY)
        assert sequences.get(KEY) is not None
        assert len(sequences) == 1

    def test_final_writes(self):
        sequences = AccessSequenceSet()
        other = StateKey(Address.derive("c"), 1)
        sequences.sequence(KEY).insert_predicted(1, AccessType.WRITE)
        sequences.sequence(KEY).version_write(1, value=11)
        sequences.sequence(other).insert_predicted(2, AccessType.READ)
        writes = sequences.final_writes(lambda k: 0)
        assert writes == {KEY: 11}
