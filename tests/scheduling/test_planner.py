"""LanePlanner: partition invariants, determinism, prediction repair.

The planner's hard invariants (regression-tested here):

* the planned order is a permutation of the packed order;
* a sender's transactions never reorder relative to each other (nonce
  order is consensus-critical);
* transactions sharing a predicted-written key share a lane; transactions
  sharing only reads do not;
* planning is a pure function of its inputs (identical plans on repeat);
* prediction repair re-refines exactly the C-SAGs whose predicted reads
  were invalidated by earlier in-lane predicted writes.
"""

import pytest

from repro.analysis.csag import CSAG, PredictedAccess
from repro.chain import Transaction
from repro.core import Address, StateKey
from repro.obs.attribution import AbortAttribution
from repro.obs.events import EventBus
from repro.scheduling import ConflictProfileStore, LanePlanner

CONTRACT = Address.derive("planned")
SENDERS = [Address.derive(f"plan-sender-{i}") for i in range(12)]


def csag_for(reads=(), writes=(), missing=False):
    accesses = (
        [PredictedAccess("read", k, 0, 0) for k in reads]
        + [PredictedAccess("write", k, 0, 1) for k in writes]
    )
    return CSAG(accesses=accesses, missing=missing)


def tx_for(i, sender=None, nonce=0, fee=0):
    return Transaction(
        sender if sender is not None else SENDERS[i],
        CONTRACT, value=0, nonce=nonce, fee=fee, label=f"t{i}",
    )


def key(slot):
    return StateKey(CONTRACT, slot)


class TestPartition:
    def test_order_is_permutation(self):
        txs = [tx_for(i) for i in range(6)]
        csags = [csag_for(writes=[key(i)]) for i in range(6)]
        plan = LanePlanner().plan(txs, csags)
        assert sorted(plan.order) == list(range(6))

    def test_disjoint_writers_get_separate_lanes(self):
        txs = [tx_for(i) for i in range(4)]
        csags = [csag_for(writes=[key(i)]) for i in range(4)]
        plan = LanePlanner().plan(txs, csags)
        assert plan.lane_count == 4

    def test_shared_written_key_merges_lanes(self):
        txs = [tx_for(i) for i in range(3)]
        csags = [
            csag_for(writes=[key(1)]),
            csag_for(reads=[key(1)]),       # reads what 0 writes
            csag_for(writes=[key(9)]),
        ]
        plan = LanePlanner().plan(txs, csags)
        assert plan.lane_count == 2
        lane_of = {i: n for n, lane in enumerate(plan.lanes) for i in lane}
        assert lane_of[0] == lane_of[1]
        assert lane_of[2] != lane_of[0]

    def test_read_sharing_never_merges(self):
        txs = [tx_for(i) for i in range(3)]
        csags = [csag_for(reads=[key(7)], writes=[key(10 + i)])
                 for i in range(3)]
        plan = LanePlanner().plan(txs, csags)
        assert plan.lane_count == 3
        assert key(7) not in plan.contested_keys

    def test_missing_csags_share_one_opaque_lane(self):
        txs = [tx_for(i) for i in range(4)]
        csags = [
            csag_for(writes=[key(1)]),
            csag_for(missing=True),
            csag_for(writes=[key(2)]),
            csag_for(missing=True),
        ]
        plan = LanePlanner().plan(txs, csags)
        lane_of = {i: n for n, lane in enumerate(plan.lanes) for i in lane}
        assert lane_of[1] == lane_of[3]

    def test_interleave_separates_lane_neighbours(self):
        # Two lanes of two: round-robin must alternate them.
        txs = [tx_for(i) for i in range(4)]
        csags = [
            csag_for(writes=[key(1)]), csag_for(writes=[key(1)]),
            csag_for(writes=[key(2)]), csag_for(writes=[key(2)]),
        ]
        plan = LanePlanner().plan(txs, csags)
        assert plan.order == [0, 2, 1, 3]
        assert plan.moved

    def test_single_tx_trivial_plan(self):
        plan = LanePlanner().plan([tx_for(0)], [csag_for(writes=[key(1)])])
        assert plan.order == [0]
        assert not plan.moved


class TestSenderInvariant:
    def test_same_sender_shares_a_lane(self):
        sender = SENDERS[0]
        txs = [tx_for(i, sender=sender, nonce=i) for i in range(3)]
        csags = [csag_for(writes=[key(10 + i)]) for i in range(3)]
        plan = LanePlanner().plan(txs, csags)
        assert plan.lane_count == 1

    def test_nonce_order_survives_any_plan(self):
        # Mixed senders with interleaved conflicting keys: whatever the
        # lanes look like, each sender's transactions stay in packed
        # (= nonce) order in the planned sequence.
        txs, csags = [], []
        for i in range(9):
            sender = SENDERS[i % 3]
            txs.append(tx_for(i, sender=sender, nonce=i // 3))
            csags.append(csag_for(writes=[key(i % 4)]))
        plan = LanePlanner().plan(txs, csags)
        for sender in SENDERS[:3]:
            nonces = [txs[i].nonce for i in plan.order
                      if txs[i].sender == sender]
            assert nonces == sorted(nonces)


class TestDeterminism:
    def test_identical_inputs_identical_plan(self):
        txs = [tx_for(i, sender=SENDERS[i % 4]) for i in range(8)]
        csags = [csag_for(writes=[key(i % 3)]) for i in range(8)]
        a = LanePlanner().plan(txs, csags)
        b = LanePlanner().plan(txs, csags)
        assert a.order == b.order
        assert a.lanes == b.lanes
        assert a.contested_keys == b.contested_keys


class TestProfilePromotion:
    def test_hot_key_promotes_read_sharing_to_contested(self):
        # No in-block write to key(7), but the learned profile marks it
        # hot: the planner must serialize its readers.
        txs = [tx_for(i) for i in range(2)]
        csags = [csag_for(reads=[key(7)], writes=[key(10 + i)])
                 for i in range(2)]
        profiles = ConflictProfileStore(hot_threshold=1.0)
        bus = EventBus()
        bus.tx_abort(0.0, 1, attempt=1, key=key(7), writer=0)
        profiles.observe_block(AbortAttribution.from_events(bus.events))
        plan = LanePlanner(profiles=profiles).plan(txs, csags)
        assert plan.lane_count == 1
        assert plan.profile_promotions >= 1

    def test_observe_feeds_profiles(self):
        planner = LanePlanner()
        bus = EventBus()
        bus.tx_abort(0.0, 1, attempt=1, key=key(3), writer=0)
        planner.observe(AbortAttribution.from_events(bus.events), 5)
        assert planner.profiles.heat(key(3)) > 0


class TestPredictionRepair:
    @pytest.fixture(scope="class")
    def workload_case(self):
        from repro.workload import Workload
        from repro.workload.scenarios import scenario_config

        config = scenario_config(
            "abort_storm", seed=7, users=40, erc20_tokens=2, dex_pools=2,
            nft_collections=2, icos=1,
        )
        workload = Workload(config)
        return workload, workload.transactions(16)

    def test_repairs_fire_on_dependent_chains(self, workload_case):
        from repro.analysis.csag import CSAGBuilder

        workload, txs = workload_case
        snapshot = workload.db.latest
        builder = CSAGBuilder(workload.db.codes.code_of)
        csags = [builder.build(tx, snapshot) for tx in txs]
        stale_before = list(csags)
        plan = LanePlanner().plan(txs, csags, snapshot, builder)
        # abort_storm is built around setA/UpdateB mispredictions: at
        # least one downstream C-SAG must have been re-refined, in place.
        assert plan.repairs > 0
        assert any(a is not b for a, b in zip(stale_before, csags))

    def test_repair_disabled_leaves_csags_alone(self, workload_case):
        from repro.analysis.csag import CSAGBuilder

        workload, txs = workload_case
        snapshot = workload.db.latest
        builder = CSAGBuilder(workload.db.codes.code_of)
        csags = [builder.build(tx, snapshot) for tx in txs]
        before = list(csags)
        plan = LanePlanner(repair=False).plan(txs, csags, snapshot, builder)
        assert plan.repairs == 0
        assert all(a is b for a, b in zip(before, csags))

    def test_repair_respects_cap(self, workload_case):
        from repro.analysis.csag import CSAGBuilder

        workload, txs = workload_case
        snapshot = workload.db.latest
        builder = CSAGBuilder(workload.db.codes.code_of)
        csags = [builder.build(tx, snapshot) for tx in txs]
        plan = LanePlanner(max_repairs=1).plan(txs, csags, snapshot, builder)
        assert plan.repairs <= 1

    def test_csag_cache_restored_after_repair(self, workload_case):
        from repro.analysis.csag import CSAGBuilder, CSAGCache

        workload, txs = workload_case
        snapshot = workload.db.latest
        cache = CSAGCache()
        builder = CSAGBuilder(workload.db.codes.code_of, csag_cache=cache)
        csags = [builder.build(tx, snapshot) for tx in txs]
        LanePlanner().plan(txs, csags, snapshot, builder)
        assert builder._csag_cache is cache


class TestShardInterleave:
    """``LanePlanner(shards=N)``: lane order rotates across home shards
    while every existing plan invariant survives untouched."""

    def _contracts_on_distinct_shards(self, shards=4, count=4):
        from repro.shard import shard_of

        found = {}
        i = 0
        while len(found) < count:
            address = Address.derive(f"shard-lane-{i}")
            found.setdefault(shard_of(address, shards), address)
            i += 1
        return [found[s] for s in sorted(found)]

    def test_permutation_and_sender_order_survive(self):
        txs = [tx_for(i) for i in range(8)]
        csags = [csag_for(writes=[key(i)]) for i in range(8)]
        plan = LanePlanner(shards=4).plan(txs, csags)
        assert sorted(plan.order) == list(range(8))

    def test_lanes_rotate_across_shards(self):
        """With one lane per shard, consecutive planned lanes come from
        different shards — the sharded executor's local streams fill
        evenly instead of draining one partition first."""
        from repro.shard import shard_of

        contracts = self._contracts_on_distinct_shards()
        txs, csags = [], []
        for address in contracts:
            for j in range(2):
                txs.append(tx_for(len(txs)))
                csags.append(csag_for(writes=[StateKey(address, 0)]))
        plan = LanePlanner(shards=4).plan(txs, csags)
        homes = []
        for lane in plan.lanes:
            touched = csags[lane[0]].write_keys
            anchor = min(touched, key=lambda k: (k.address.value, k.slot))
            homes.append(shard_of(anchor.address, 4))
        assert len(plan.lanes) == 4
        assert sorted(homes) == homes == [0, 1, 2, 3]

    def test_zero_shards_is_identity_behavior(self):
        txs = [tx_for(i) for i in range(6)]
        csags = [csag_for(writes=[key(i)]) for i in range(6)]
        base = LanePlanner().plan(txs, [csag_for(writes=[key(i)]) for i in range(6)])
        off = LanePlanner(shards=0).plan(txs, csags)
        assert off.order == base.order

    def test_interleave_deterministic(self):
        txs = [tx_for(i) for i in range(10)]
        make = lambda: [csag_for(writes=[key(i % 5)]) for i in range(10)]
        a = LanePlanner(shards=4).plan(txs, make())
        b = LanePlanner(shards=4).plan(txs, make())
        assert a.order == b.order
