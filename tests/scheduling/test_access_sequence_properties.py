"""Property-based tests of the access-sequence semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.csag import AccessType
from repro.core import Address, StateKey
from repro.scheduling import SNAPSHOT_VERSION, AccessSequence

KEY = StateKey(Address.derive("prop-seq"), 0)

# One scripted op per tx index: kind, value/delta.
OPS = st.lists(
    st.tuples(
        st.sampled_from(["write", "delta", "skip", "read"]),
        st.integers(0, 1_000),
    ),
    min_size=1,
    max_size=12,
)


def reference_read(script, reader_index, snapshot_value):
    """What a reader at ``reader_index`` must see once everything before it
    has finished: the closest preceding absolute write plus later deltas."""
    base = snapshot_value
    deltas = 0
    for index, (kind, value) in enumerate(script):
        if index >= reader_index:
            break
        if kind == "write":
            base = value
            deltas = 0
        elif kind == "delta":
            deltas += value
    return base + deltas


def build_sequence(script):
    seq = AccessSequence(KEY)
    for index, (kind, _value) in enumerate(script):
        declared = {
            "write": AccessType.WRITE,
            "delta": AccessType.COMMUTATIVE,
            "skip": AccessType.WRITE,
            "read": AccessType.READ,
        }[kind]
        seq.insert_predicted(index, declared)
    return seq


class TestReadResolutionProperties:
    @given(OPS, st.integers(0, 500), st.data())
    @settings(max_examples=80, deadline=None)
    def test_reads_match_reference_after_completion(self, script, snapshot_value, data):
        """Once every preceding write finished (in ANY completion order),
        resolve_read returns exactly the serial value."""
        seq = build_sequence(script)
        completion_order = data.draw(st.permutations(range(len(script))))
        for index in completion_order:
            kind, value = script[index]
            if kind == "write":
                seq.version_write(index, value=value)
            elif kind == "delta":
                seq.version_write(index, delta=value)
            elif kind == "skip":
                seq.version_write(index, skipped=True)
            # reads don't publish anything

        reader = len(script)  # a reader after every scripted tx
        resolution = seq.resolve_read(reader)
        assert resolution.ready
        assert resolution.resolve_with_snapshot(snapshot_value) == (
            reference_read(script, reader, snapshot_value) % (1 << 256)
        )

    @given(OPS, st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_blocked_until_preceding_writes_finish(self, script, snapshot_value):
        """With any unfinished preceding write (absolute or delta), a
        reader is not ready; finishing everything unblocks it."""
        seq = build_sequence(script)
        reader = len(script)
        has_writes = any(kind != "read" for kind, _v in script)
        if has_writes:
            assert not seq.resolve_read(reader).ready
        for index, (kind, value) in enumerate(script):
            if kind == "write":
                seq.version_write(index, value=value)
            elif kind == "delta":
                seq.version_write(index, delta=value)
            elif kind == "skip":
                seq.version_write(index, skipped=True)
        assert seq.resolve_read(reader).ready

    @given(OPS, st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_final_value_matches_reference(self, script, snapshot_value):
        seq = build_sequence(script)
        for index, (kind, value) in enumerate(script):
            if kind == "write":
                seq.version_write(index, value=value)
            elif kind == "delta":
                seq.version_write(index, delta=value)
            elif kind == "skip":
                seq.version_write(index, skipped=True)
        final = seq.final_value(lambda key: snapshot_value)
        effective = [k for k, _v in script if k in ("write", "delta")]
        if not effective:
            assert final is None
        else:
            assert final == reference_read(script, len(script), snapshot_value) % (1 << 256)

    @given(OPS, st.data())
    @settings(max_examples=80, deadline=None)
    def test_versions_totally_ordered_by_tx_index(self, script, data):
        """However entries arrive — predicted up front, or inserted on the
        fly by reads and writes in any scheduling order — the sequence
        stays totally ordered by transaction index."""
        seq = AccessSequence(KEY)
        arrival = data.draw(st.permutations(range(len(script))))
        for index in arrival:
            kind, value = script[index]
            if kind == "write":
                seq.version_write(index, value=value)
            elif kind == "delta":
                seq.version_write(index, delta=value)
            elif kind == "skip":
                seq.version_write(index, skipped=True)
            else:
                seq.record_read(index, SNAPSHOT_VERSION)
            indices = [entry.tx_index for entry in seq.entries()]
            assert indices == sorted(indices)
            assert len(indices) == len(set(indices))

    @given(OPS, st.data())
    @settings(max_examples=80, deadline=None)
    def test_reads_never_observe_later_versions(self, script, data):
        """Neither blocking resolution nor the speculative best-available
        fallback may ever hand a reader a version written by a transaction
        at or after its own index."""
        seq = build_sequence(script)
        published = data.draw(
            st.sets(st.sampled_from(range(len(script))))
            if script else st.just(set())
        )
        for index in sorted(published):
            kind, value = script[index]
            if kind == "write":
                seq.version_write(index, value=value)
            elif kind == "delta":
                seq.version_write(index, delta=value)
            elif kind == "skip":
                seq.version_write(index, skipped=True)
        for reader in range(len(script) + 1):
            for resolution in (seq.resolve_read(reader), seq.best_available_read(reader)):
                assert resolution.version_from < reader
                assert resolution.version_from >= SNAPSHOT_VERSION

    @given(
        st.lists(st.tuples(st.integers(0, 10**9), st.booleans()), min_size=1, max_size=10),
        st.integers(0, 10**9),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_commutative_merge_is_order_independent(self, increments, snapshot_value, data):
        """Blind StorageIncrement versions merge to the same value whatever
        order they finish in (the ω̄ commutativity the protocol relies on)."""
        order_a = data.draw(st.permutations(range(len(increments))))
        order_b = data.draw(st.permutations(range(len(increments))))
        finals = []
        resolutions = []
        for order in (order_a, order_b):
            seq = AccessSequence(KEY)
            for index, (delta, predicted) in enumerate(increments):
                if predicted:
                    seq.insert_predicted(index, AccessType.COMMUTATIVE)
            for index in order:
                delta, _predicted = increments[index]
                seq.version_write(index, delta=delta)
            finals.append(seq.final_value(lambda key: snapshot_value))
            reader = len(increments)
            resolutions.append(
                seq.resolve_read(reader).resolve_with_snapshot(snapshot_value)
            )
        assert finals[0] == finals[1]
        assert resolutions[0] == resolutions[1]
        assert finals[0] == (snapshot_value + sum(d for d, _p in increments)) % (1 << 256)

    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_stale_readers_always_detected(self, script):
        """A reader that consumed a version is reported as a victim by any
        later-arriving earlier write."""
        seq = build_sequence(script)
        reader = len(script)
        seq.record_read(reader, SNAPSHOT_VERSION)  # read before anything landed
        for index, (kind, value) in enumerate(script):
            if kind == "write":
                _allowed, aborted = seq.version_write(index, value=value)
                assert reader in aborted
                return  # one detection suffices for this property
            if kind == "delta":
                _allowed, aborted = seq.version_write(index, delta=value)
                assert reader in aborted
                return


class TestRollbackWriteProperties:
    """rollback_write(tx) — the suffix-retraction primitive used by the
    incremental re-execution path — must be indistinguishable from the
    two-step retract-then-republish it replaces."""

    @staticmethod
    def _publish(seq, script, published):
        for index in sorted(published):
            kind, value = script[index]
            if kind == "write":
                seq.version_write(index, value=value)
            elif kind == "delta":
                seq.version_write(index, delta=value)
            elif kind == "skip":
                seq.version_write(index, skipped=True)
            else:
                seq.record_read(index, SNAPSHOT_VERSION)

    @staticmethod
    def _observable(seq, population, snapshot_value):
        """Everything the scheduler can see of a sequence."""
        views = []
        for reader in range(population + 2):
            resolution = seq.resolve_read(reader)
            views.append((
                resolution.ready,
                resolution.resolve_with_snapshot(snapshot_value)
                if resolution.ready else None,
                resolution.version_from,
            ))
            best = seq.best_available_read(reader)
            views.append((
                best.resolve_with_snapshot(snapshot_value),
                best.version_from,
            ))
        views.append(seq.final_value(lambda key: snapshot_value))
        views.append([
            (e.tx_index, e.write_finished, e.write_skipped, e.write_value,
             e.write_delta, e.read_done, e.read_version_from)
            for e in seq.entries()
        ])
        return views

    @given(
        OPS,
        st.integers(0, 500),
        st.sampled_from(["abs", "delta"]),
        st.integers(0, 1_000),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_rollback_equals_retract_then_republish(
        self, script, snapshot_value, kind, republish_value, data
    ):
        writer = data.draw(st.integers(0, len(script) - 1))
        published = data.draw(st.sets(st.sampled_from(range(len(script)))))
        published.add(writer)
        # Later readers that may have consumed the writer's version:
        extra_readers = data.draw(
            st.sets(st.integers(len(script), len(script) + 3)))

        combined = build_sequence(script)
        two_step = build_sequence(script)
        for seq in (combined, two_step):
            self._publish(seq, script, published)
            for reader in sorted(extra_readers):
                resolution = seq.best_available_read(reader)
                seq.record_read(reader, resolution.version_from)

        value = republish_value if kind == "abs" else None
        delta = republish_value if kind == "delta" else None
        victims_a, allowed_a, aborted_a = combined.rollback_write(
            writer, value=value, delta=delta)
        victims_b = two_step.retract(writer)
        allowed_b, aborted_b = two_step.version_write(
            writer, value=value, delta=delta)

        assert victims_a == victims_b
        assert allowed_a == allowed_b
        assert aborted_a == aborted_b
        assert self._observable(combined, len(script) + 4, snapshot_value) \
            == self._observable(two_step, len(script) + 4, snapshot_value)

    @given(OPS, st.integers(0, 500), st.data())
    @settings(max_examples=60, deadline=None)
    def test_current_read_view_matches_resolution(
        self, script, snapshot_value, data
    ):
        """current_read_view is exactly resolve_read's (value, version) pair
        when ready and None otherwise — the revalidation fast path depends
        on this equivalence."""
        seq = build_sequence(script)
        published = data.draw(st.sets(st.sampled_from(range(len(script)))))
        self._publish(seq, script, published)
        for reader in range(len(script) + 2):
            view = seq.current_read_view(reader, snapshot_value)
            resolution = seq.resolve_read(reader)
            if not resolution.ready:
                assert view is None
            else:
                assert view == (
                    resolution.resolve_with_snapshot(snapshot_value),
                    resolution.version_from,
                )
