"""Schedule artifacts and deterministic replay.

The tentpole contract:

* the :class:`Schedule` compacted from a block's execution trace is a pure
  function of the committed execution — so the sim, threads, and processes
  substrates all emit the *identical* artifact for the same block;
* replaying a block from its schedule runs with conflict discovery
  disabled — zero aborts, zero speculation — and is byte-identical to the
  fresh speculative execution (receipts, write sets, sealed roots), on
  every substrate, including under injected worker crashes;
* the sealed sidecar binds schedule to block hash and survives a JSON
  round trip; a mismatched sidecar is rejected at import.
"""

import threading
import time

import pytest

from repro.chain import Packer, Validator
from repro.core.errors import InvalidBlock
from repro.executors import DMVCCExecutor, ScheduleReplayExecutor
from repro.scheduling import BlockSidecar, LanePlanner, Schedule
from repro.substrate import get_substrate
from repro.verify.trace import TraceRecorder

from .conftest import receipt_digest, scenario_case

SCENARIOS = ("mix", "abort_storm")
THREADS = 3


def traced_execution(workload, txs, substrate=None):
    """Execute one DMVCC block with a recorder on; return (execution,
    schedule)."""
    recorder = TraceRecorder()
    executor = DMVCCExecutor().attach_recorder(recorder)
    if substrate is not None:
        executor.attach_substrate(substrate)
    execution = executor.execute_block(
        txs, workload.db.latest, workload.db.codes.code_of, threads=THREADS)
    schedule = Schedule.from_trace(recorder, len(txs), producer="dmvcc")
    return execution, schedule


class TestScheduleConstruction:
    def test_preds_point_backwards(self):
        workload, txs = scenario_case("mix")
        _, schedule = traced_execution(workload, txs)
        for entry in schedule.entries:
            assert all(p < entry.index for p in entry.preds)

    def test_depth_bounded_by_block(self):
        workload, txs = scenario_case("mix")
        _, schedule = traced_execution(workload, txs)
        assert 1 <= schedule.depth() <= schedule.tx_count

    def test_lanes_cover_every_tx(self):
        workload, txs = scenario_case("abort_storm")
        _, schedule = traced_execution(workload, txs)
        flat = sorted(i for lane in schedule.lanes() for i in lane)
        assert flat == list(range(schedule.tx_count))

    def test_json_round_trip_preserves_digest(self):
        workload, txs = scenario_case("mix")
        _, schedule = traced_execution(workload, txs)
        clone = Schedule.from_json(schedule.to_json())
        assert clone.digest() == schedule.digest()
        assert clone.preds() == schedule.preds()


class TestCrossSubstrateIdentity:
    """PR 8 guarantees byte-identical committed executions across the
    substrates; the schedule artifact, being a pure function of the
    committed execution, must therefore be identical too."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_threads_emit_the_sim_schedule(self, scenario, threads_substrate):
        workload, txs = scenario_case(scenario)
        _, sim_schedule = traced_execution(workload, txs)
        _, threads_schedule = traced_execution(
            workload, txs, substrate=threads_substrate)
        assert threads_schedule.digest() == sim_schedule.digest()

    @pytest.mark.slow
    def test_processes_emit_the_sim_schedule(self, processes_substrate):
        workload, txs = scenario_case("mix")
        _, sim_schedule = traced_execution(workload, txs)
        _, processes_schedule = traced_execution(
            workload, txs, substrate=processes_substrate)
        assert processes_schedule.digest() == sim_schedule.digest()


class TestReplayParity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_sim_replay_byte_identical_zero_aborts(self, scenario):
        workload, txs = scenario_case(scenario)
        reference, schedule = traced_execution(workload, txs)
        replay = ScheduleReplayExecutor(schedule).execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=THREADS)
        assert replay.metrics.replayed
        assert replay.metrics.aborts == 0
        assert replay.metrics.executions == len(txs)
        assert receipt_digest(replay) == receipt_digest(reference)
        assert replay.writes == reference.writes
        root = workload.db.fork().commit(replay.writes).root_hash
        ref_root = workload.db.fork().commit(reference.writes).root_hash
        assert root == ref_root

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_threads_replay_byte_identical(self, scenario, threads_substrate):
        workload, txs = scenario_case(scenario)
        reference, schedule = traced_execution(workload, txs)
        executor = ScheduleReplayExecutor(schedule).attach_substrate(
            threads_substrate)
        replay = executor.execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=THREADS)
        assert replay.metrics.replayed
        assert replay.metrics.aborts == 0
        assert replay.metrics.view_misses == 0, (
            "schedule views must ship every key the replay reads")
        assert receipt_digest(replay) == receipt_digest(reference)
        assert replay.writes == reference.writes

    @pytest.mark.slow
    def test_processes_replay_byte_identical(self, processes_substrate):
        workload, txs = scenario_case("abort_storm")
        reference, schedule = traced_execution(workload, txs)
        executor = ScheduleReplayExecutor(schedule).attach_substrate(
            processes_substrate)
        replay = executor.execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=THREADS)
        assert replay.metrics.aborts == 0
        assert receipt_digest(replay) == receipt_digest(reference)
        assert replay.writes == reference.writes

    def test_tx_count_mismatch_rejected(self):
        workload, txs = scenario_case("mix")
        _, schedule = traced_execution(workload, txs)
        with pytest.raises(ValueError):
            ScheduleReplayExecutor(schedule).execute_block(
                txs[:-1], workload.db.latest, workload.db.codes.code_of,
                threads=THREADS)


@pytest.mark.slow
class TestReplayUnderCrash:
    def test_replay_survives_worker_kill_byte_identical(self):
        workload, txs = scenario_case("mix", txs=24)
        reference, schedule = traced_execution(workload, txs)
        substrate = get_substrate("processes", workers=3, worker_delay=0.01,
                                  task_timeout=30.0)
        try:
            pool = substrate.acquire(3)
            executor = ScheduleReplayExecutor(schedule).attach_substrate(
                substrate)

            def killer():
                time.sleep(0.04)
                pool.kill_worker(1)

            thread = threading.Thread(target=killer)
            thread.start()
            replay = executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of,
                threads=3)
            thread.join()
            assert replay.metrics.aborts == 0
            assert receipt_digest(replay) == receipt_digest(reference)
            assert replay.writes == reference.writes
        finally:
            substrate.close()


class TestValidatorReplayMode:
    """The miner-produces/validator-replays loop end to end."""

    @staticmethod
    def _mining_pair(scenario="mix", planner=True):
        workload, txs = scenario_case(scenario)
        miner = Validator(
            "miner", workload.db.fork(), DMVCCExecutor(), threads=THREADS,
            packer=Packer(max_txs=len(txs)),
            planner=LanePlanner() if planner else None,
            emit_schedules=True,
        )
        follower = Validator(
            "follower", workload.db.fork(), DMVCCExecutor(), threads=THREADS)
        for tx in txs:
            miner.receive_transaction(tx)
        return miner, follower

    def test_import_with_sidecar_replays_and_verifies_root(self):
        miner, follower = self._mining_pair()
        block, _ = miner.propose_block(timestamp=1)
        sidecar = miner.sidecars[block.number]
        execution = follower.import_block(block, schedule=sidecar)
        assert execution.metrics.replayed
        assert execution.metrics.aborts == 0
        assert follower.stats.replayed_blocks == 1
        assert follower.state_root() == block.header.state_root

    def test_import_with_bare_schedule(self):
        miner, follower = self._mining_pair(planner=False)
        block, execution = miner.propose_block(timestamp=1)
        assert execution.schedule is not None
        follower.import_block(block, schedule=execution.schedule)
        assert follower.state_root() == block.header.state_root

    def test_replay_matches_fresh_import(self):
        miner, fresh = self._mining_pair(scenario="abort_storm")
        block, _ = miner.propose_block(timestamp=1)
        sidecar = miner.sidecars[block.number]
        replayer = Validator(
            "replayer", fresh.db.fork(), DMVCCExecutor(), threads=THREADS)
        fresh_exec = fresh.import_block(block)
        replay_exec = replayer.import_block(block, schedule=sidecar)
        assert receipt_digest(replay_exec) == receipt_digest(fresh_exec)
        assert replay_exec.writes == fresh_exec.writes
        assert replayer.state_root() == fresh.state_root()

    def test_wrong_block_sidecar_rejected(self):
        miner, follower = self._mining_pair()
        block, _ = miner.propose_block(timestamp=1)
        sidecar = miner.sidecars[block.number]
        tampered = BlockSidecar(b"\x00" * 32, sidecar.schedule)
        with pytest.raises(InvalidBlock):
            follower.import_block(block, schedule=tampered)

    def test_tx_count_mismatch_rejected(self):
        miner, follower = self._mining_pair()
        block, execution = miner.propose_block(timestamp=1)
        truncated = Schedule(entries=execution.schedule.entries[:-1])
        with pytest.raises(InvalidBlock):
            follower.import_block(block, schedule=truncated)

    def test_sidecar_json_round_trip(self):
        miner, _ = self._mining_pair()
        block, _ = miner.propose_block(timestamp=1)
        sidecar = miner.sidecars[block.number]
        clone = BlockSidecar.from_json(sidecar.to_json())
        assert clone.digest() == sidecar.digest()

    def test_tampered_sidecar_json_rejected(self):
        miner, _ = self._mining_pair()
        block, _ = miner.propose_block(timestamp=1)
        payload = miner.sidecars[block.number].to_json()
        payload["block_hash"] = "00" * 32
        with pytest.raises(ValueError):
            BlockSidecar.from_json(payload)
