"""Differential fuzzing: 50 seeded blocks across every parallel executor,
plus minimizer behaviour against a deliberately broken executor."""

from __future__ import annotations

import pytest

from repro.executors import SerialExecutor
from repro.verify.fuzz import (
    DEFAULT_BASE_SEED,
    DifferentialFuzzer,
    default_executor_factories,
)

SMOKE_SEED = 0xF022ED


class TestFuzzCampaign:
    @pytest.mark.slow
    def test_fifty_blocks_all_executors(self):
        """Satellite: ~50 fuzzed differential smoke tests across
        {DAG, OCC, DMVCC} vs serial, deterministically seeded."""
        fuzzer = DifferentialFuzzer(txs_per_block=16)
        report = fuzzer.run(blocks=50, base_seed=SMOKE_SEED)
        assert report.ok, report.render()
        assert report.blocks == 50
        assert report.checks == 150  # 3 schedulers per block
        for name in ("dag", "occ", "dmvcc"):
            assert report.stats[name].blocks_checked == 50
            assert report.stats[name].reads_checked > 0
            assert report.stats[name].unrepaired_violations == 0
        # The campaign must exercise early-write visibility (DMVCC) and
        # speculative repair (OCC re-execution), or it tests nothing deep.
        assert report.stats["dmvcc"].early_publishes > 0

    def test_quick_campaign_each_executor(self):
        """Fast tier-1 smoke: a handful of blocks per scheduler."""
        fuzzer = DifferentialFuzzer(txs_per_block=10)
        report = fuzzer.run(blocks=4, base_seed=SMOKE_SEED)
        assert report.ok, report.render()
        assert report.checks == 12

    def test_deterministic_across_runs(self):
        """Same base seed => byte-identical campaign statistics."""
        def campaign():
            fuzzer = DifferentialFuzzer(txs_per_block=8)
            return fuzzer.run(blocks=3, base_seed=DEFAULT_BASE_SEED)

        first, second = campaign(), campaign()
        assert first.ok and second.ok
        for name in first.stats:
            assert first.stats[name].summary() == second.stats[name].summary()

    def test_distinct_seeds_vary_the_workload(self):
        """Different seeds must produce different blocks (otherwise the
        campaign re-checks one case N times)."""
        fuzzer = DifferentialFuzzer()
        _, txs_a, _ = fuzzer._case(SMOKE_SEED)
        _, txs_b, _ = fuzzer._case(SMOKE_SEED + 1)
        assert [t.label for t in txs_a] != [t.label for t in txs_b]


class _CorruptingSerial(SerialExecutor):
    """An intentionally wrong executor: flips one committed value.

    Used to prove the fuzzer detects state-root divergence and that the
    minimizer shrinks the failing block.
    """

    def execute_block(self, txs, snapshot, code_resolver, threads=1, block=None):
        execution = super().execute_block(
            txs, snapshot, code_resolver, threads=threads, block=block
        )
        if execution.writes:
            key = sorted(execution.writes)[0]
            execution.writes[key] = (execution.writes[key] + 1) % (1 << 256)
        return execution


class TestDivergenceHandling:
    def test_broken_executor_is_caught_and_minimized(self):
        fuzzer = DifferentialFuzzer(
            factories={"broken": lambda: _CorruptingSerial()},
            txs_per_block=12,
        )
        report = fuzzer.run(blocks=1, base_seed=SMOKE_SEED)
        assert not report.ok
        divergence = report.divergences[0]
        assert divergence.scheduler == "broken"
        assert divergence.seed == SMOKE_SEED
        # The corrupted write survives any subset, so minimization should
        # drive the block down to a single transaction.
        assert divergence.minimized_size < divergence.block_size
        assert divergence.minimized_labels
        assert "state mismatch" in divergence.render()

    def test_minimize_can_be_disabled(self):
        fuzzer = DifferentialFuzzer(
            factories={"broken": lambda: _CorruptingSerial()},
            txs_per_block=12,
            minimize=False,
        )
        report = fuzzer.run(blocks=1, base_seed=SMOKE_SEED)
        assert not report.ok
        divergence = report.divergences[0]
        assert divergence.minimized_size == divergence.block_size

    def test_default_factories_cover_all_parallel_executors(self):
        assert set(default_executor_factories()) == {"dag", "occ", "dmvcc"}
