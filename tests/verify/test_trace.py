"""Trace recorder: hook coverage across all four executors."""

from __future__ import annotations

import pytest

from repro.chain.transaction import Transaction
from repro.core import StateKey, mapping_slot
from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.verify.trace import (
    SNAPSHOT_VERSION,
    CompleteEvent,
    PublishEvent,
    ReadEvent,
    TraceRecorder,
    WriteEvent,
)

from ..executors.helpers import TOKEN, USERS, token_db


def transfer_block(token_contract, count=6):
    """A chain of transfers touching one hot account: every tx reads the
    previous writer's version."""
    hot = USERS[0]
    return [
        Transaction(
            USERS[i + 1], TOKEN, 0,
            token_contract.encode_call("transfer", hot, 5),
            label=f"t{i}",
        )
        for i in range(count)
    ]


def run_with_recorder(executor, txs, db, threads=4):
    recorder = TraceRecorder()
    executor.attach_recorder(recorder)
    execution = executor.execute_block(
        txs, db.latest, db.codes.code_of, threads=threads
    )
    return recorder, execution


class TestRecorderBasics:
    def test_disabled_by_default(self, token_contract):
        db = token_db(token_contract)
        executor = SerialExecutor()
        assert executor.recorder is None
        executor.execute_block(
            transfer_block(token_contract), db.latest, db.codes.code_of
        )  # no recorder: must run exactly as before

    def test_attach_is_chainable_and_clear_resets(self):
        recorder = TraceRecorder()
        executor = SerialExecutor().attach_recorder(recorder)
        assert executor.recorder is recorder
        recorder.read(0, "k", SNAPSHOT_VERSION, 7)
        assert len(recorder) == 1
        recorder.clear()
        assert len(recorder) == 0
        recorder.read(0, "k", SNAPSHOT_VERSION, 7)
        assert recorder.events[0].seq == 0  # seq restarts after clear

    def test_summary_counts_event_types(self):
        recorder = TraceRecorder()
        recorder.read(0, "k", SNAPSHOT_VERSION, 1)
        recorder.write(0, "k", value=2)
        recorder.publish(0, "k", "abs", 2)
        recorder.complete(0)
        summary = recorder.summary()
        assert "ReadEvent=1" in summary and "PublishEvent=1" in summary


class TestSerialTrace:
    def test_reads_carry_last_committed_writer(self, token_contract):
        db = token_db(token_contract)
        txs = transfer_block(token_contract, count=4)
        recorder, execution = run_with_recorder(SerialExecutor(), txs, db, threads=1)
        assert all(r.result.success for r in execution.receipts)

        bal_slot = token_contract.slot_of("balanceOf")
        hot_key = StateKey(TOKEN, mapping_slot(USERS[0].to_word(), bal_slot))
        hot_reads = [
            e for e in recorder.events_of_type(ReadEvent)
            if e.key == hot_key and not e.blind
        ]
        # Each transfer's registered read of the hot balance (if any) must
        # observe the immediately preceding writer; blind credit reads are
        # excluded.  Serial order: version == tx - 1 for tx > 0.
        for event in hot_reads:
            expected = event.tx - 1 if event.tx > 0 else SNAPSHOT_VERSION
            assert event.version == expected

    def test_every_tx_completes_and_publishes(self, token_contract):
        db = token_db(token_contract)
        txs = transfer_block(token_contract, count=3)
        recorder, _ = run_with_recorder(SerialExecutor(), txs, db, threads=1)
        completes = recorder.events_of_type(CompleteEvent)
        assert [e.tx for e in completes] == [0, 1, 2]
        assert all(e.success for e in completes)
        assert recorder.events_of_type(PublishEvent)


@pytest.mark.parametrize("executor_cls", [DAGExecutor, OCCExecutor, DMVCCExecutor])
class TestParallelTraces:
    def test_trace_covers_reads_writes_completions(self, executor_cls, token_contract):
        db = token_db(token_contract)
        txs = transfer_block(token_contract, count=6)
        recorder, execution = run_with_recorder(executor_cls(), txs, db)
        assert all(r.result.success for r in execution.receipts)
        assert recorder.events_of_type(ReadEvent)
        assert recorder.events_of_type(WriteEvent)
        assert recorder.events_of_type(PublishEvent)
        finals = recorder.final_attempts()
        assert set(finals) == set(range(len(txs)))
        # Committed reads belong to committed attempts and never observe a
        # later transaction's version.
        for event in recorder.committed_reads():
            assert event.version < event.tx

    def test_seq_strictly_increasing(self, executor_cls, token_contract):
        db = token_db(token_contract)
        recorder, _ = run_with_recorder(
            executor_cls(), transfer_block(token_contract), db
        )
        seqs = [e.seq for e in recorder.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestDMVCCSpecificTrace:
    def test_early_publishes_marked(self, token_contract):
        db = token_db(token_contract)
        txs = transfer_block(token_contract, count=6)
        recorder, _ = run_with_recorder(DMVCCExecutor(), txs, db)
        publishes = recorder.events_of_type(PublishEvent)
        # The transfer function's writes all precede its release point, so
        # at least some publishes must be early (mid-transaction).
        assert any(e.early for e in publishes)

    def test_blind_increment_reads_marked(self, token_contract):
        db = token_db(token_contract)
        txs = transfer_block(token_contract, count=6)
        recorder, _ = run_with_recorder(DMVCCExecutor(), txs, db)
        assert any(e.blind for e in recorder.events_of_type(ReadEvent))
