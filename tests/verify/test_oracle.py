"""Serializability oracle: unit checks, the injected-bug catch, and the
200-block clean acceptance run."""

from __future__ import annotations

import pytest

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.executors.base import Receipt
from repro.executors.txprogram import TxResult, TxStatus
from repro.lang import compile_source
from repro.state import StateDB
from repro.verify import SerializabilityOracle, TraceRecorder, check_block
from repro.verify.fuzz import DifferentialFuzzer

from ..executors.helpers import TOKEN, USERS, token_db


def receipt(index, success=True, gas=30_000):
    status = TxStatus.SUCCESS if success else TxStatus.REVERTED
    return Receipt(index=index, result=TxResult(status, gas))


KEY = StateKey(Address.derive("oracle-key"), 0)


class TestOracleUnitChecks:
    def test_clean_trace_passes(self):
        trace = TraceRecorder()
        trace.write(0, KEY, value=7)
        trace.publish(0, KEY, "abs", 7)
        trace.complete(0)
        trace.read(1, KEY, 0, 7)
        trace.complete(1)
        report = SerializabilityOracle().check(
            trace, {KEY: 7}, [receipt(0), receipt(1)],
            {KEY: 7}, [receipt(0), receipt(1)],
        )
        assert report.ok
        assert report.stats.reads_checked == 1
        assert report.stats.conflict_edges == 1

    def test_state_mismatch_detected(self):
        trace = TraceRecorder()
        report = SerializabilityOracle().check(
            trace, {KEY: 1}, [receipt(0)], {KEY: 2}, [receipt(0)],
        )
        assert not report.ok
        assert any("state mismatch" in d for d in report.divergences)

    def test_receipt_mismatch_detected(self):
        trace = TraceRecorder()
        report = SerializabilityOracle().check(
            trace, {}, [receipt(0, success=False)], {}, [receipt(0)],
        )
        assert not report.ok
        assert any("success" in d for d in report.divergences)

    def test_gas_mismatch_detected(self):
        trace = TraceRecorder()
        report = SerializabilityOracle().check(
            trace, {}, [receipt(0, gas=1)], {}, [receipt(0, gas=2)],
        )
        assert not report.ok

    def test_read_from_later_tx_is_version_order_violation(self):
        trace = TraceRecorder()
        trace.read(0, KEY, 1, 9)  # tx 0 observes tx 1's version
        trace.write(1, KEY, value=9)
        trace.publish(1, KEY, "abs", 9)
        for tx in (0, 1):
            trace.complete(tx)
        report = SerializabilityOracle().check(
            trace, {KEY: 9}, [receipt(0), receipt(1)],
            {KEY: 9}, [receipt(0), receipt(1)],
        )
        assert not report.ok
        assert any("version order" in d for d in report.divergences)

    def test_stale_read_detected(self):
        # tx 2 reads the snapshot although tx 0 committed a write below it.
        trace = TraceRecorder()
        trace.write(0, KEY, value=5)
        trace.publish(0, KEY, "abs", 5)
        trace.complete(0)
        trace.read(2, KEY, -1, 0)
        trace.complete(2)
        report = SerializabilityOracle().check(
            trace, {KEY: 5}, [receipt(0), receipt(1), receipt(2)],
            {KEY: 5}, [receipt(0), receipt(1), receipt(2)],
        )
        assert not report.ok
        assert report.stats.stale_reads == 1

    def test_delta_versions_do_not_shift_the_expected_base(self):
        # tx 0 writes absolutely; tx 1 publishes a commutative delta; tx 2's
        # base version is still tx 0.
        trace = TraceRecorder()
        trace.publish(0, KEY, "abs", 10)
        trace.complete(0)
        trace.publish(1, KEY, "delta", 3)
        trace.complete(1)
        trace.read(2, KEY, 0, 10)
        trace.complete(2)
        report = SerializabilityOracle().check(
            trace, {KEY: 13}, [receipt(i) for i in range(3)],
            {KEY: 13}, [receipt(i) for i in range(3)],
        )
        assert report.ok

    def test_unrepaired_doomed_read_is_flagged(self):
        # tx 1 commits a read of tx 0's early version; tx 0 then aborts and
        # the version is retracted, but tx 1 never re-executes.
        trace = TraceRecorder()
        trace.publish(0, KEY, "abs", 5, early=True)
        trace.read(1, KEY, 0, 5, early=True)
        trace.complete(1)
        trace.retract(0, KEY, victims=(1,))
        trace.complete(0, success=False)
        report = SerializabilityOracle().check(
            trace, {}, [receipt(0, success=False), receipt(1)],
            {}, [receipt(0, success=False), receipt(1)],
        )
        assert not report.ok
        assert report.flagged_early_visibility
        assert report.stats.unrepaired_violations == 1
        assert report.stats.doomed_reads == 1

    def test_repaired_doomed_read_is_flagged_but_not_fatal(self):
        # Same leak, but the reader re-executed (attempt 2) afterwards: the
        # cascade repaired it.  Flagged, yet the execution is serializable.
        trace = TraceRecorder()
        trace.publish(0, KEY, "abs", 5, early=True)
        trace.read(1, KEY, 0, 5, attempt=1, early=True)
        trace.retract(0, KEY, victims=(1,))
        trace.complete(0, success=False)
        trace.read(1, KEY, -1, 0, attempt=2)
        trace.complete(1, attempt=2)
        report = SerializabilityOracle().check(
            trace, {}, [receipt(0, success=False), receipt(1)],
            {}, [receipt(0, success=False), receipt(1)],
        )
        assert report.ok
        assert report.flagged_early_visibility
        assert report.repaired_reads == 1
        assert report.stats.unrepaired_violations == 0

    def test_republished_same_value_is_not_doomed(self):
        # OCC pattern: the writer re-executes and republishes the identical
        # version; a reader that saw the first copy lost nothing.
        trace = TraceRecorder()
        trace.publish(0, KEY, "abs", 5)
        trace.read(1, KEY, 0, 5)
        trace.retract(0, KEY)
        trace.publish(0, KEY, "abs", 5)
        trace.complete(0)
        trace.complete(1)
        report = SerializabilityOracle().check(
            trace, {KEY: 5}, [receipt(0), receipt(1)],
            {KEY: 5}, [receipt(0), receipt(1)],
        )
        assert report.ok
        assert report.stats.doomed_reads == 0


class TestCheckBlockDriver:
    @pytest.mark.parametrize("executor_cls", [DAGExecutor, OCCExecutor, DMVCCExecutor])
    def test_transfer_chain_passes_for_every_executor(
        self, executor_cls, token_contract
    ):
        db = token_db(token_contract)
        hot = USERS[0]
        txs = [
            Transaction(
                USERS[i + 1], TOKEN, 0,
                token_contract.encode_call("transfer", hot, 5),
            )
            for i in range(6)
        ]
        report, trace = check_block(
            executor_cls(), txs, db.latest, db.codes.code_of, threads=4
        )
        assert report.ok, report.render()
        assert report.stats.reads_checked > 0
        assert len(trace) > 0

    def test_metrics_gain_oracle_stats(self, token_contract):
        db = token_db(token_contract)
        txs = [
            Transaction(
                USERS[1], TOKEN, 0, token_contract.encode_call("transfer", USERS[0], 5)
            )
        ]
        executor = DMVCCExecutor()
        report, _ = check_block(executor, txs, db.latest, db.codes.code_of)
        assert report.stats.blocks_checked == 1


# ----------------------------------------------------------------------
# Acceptance: the oracle catches a deliberately injected bug
# ----------------------------------------------------------------------

GADGET_SOURCE = """
contract Gadget {
    uint item;
    uint sink;

    function work(uint n, uint rounds) public {
        item = n;
        uint i = 0;
        while (i < rounds) {
            i += 1;
        }
    }

    function readItem() public {
        sink = item;
    }
}
"""


class LeakyDMVCC(DMVCCExecutor):
    """DMVCC with the release-point gas check disabled: the injected bug.

    Skipping the check publishes buffered writes at every release point,
    including those of transactions that are about to run out of gas —
    exactly the unsound early-write visibility the oracle must catch.
    """

    def release_gas_check(self, csag, event, static_bound):
        return True


@pytest.fixture(scope="module")
def gadget_setup():
    compiled = compile_source(GADGET_SOURCE)
    gadget = Address.derive("gadget")
    db = StateDB()
    db.deploy_contract(gadget, compiled.code, "Gadget")
    db.seed_genesis({u: 10**18 for u in USERS})
    return compiled, gadget, db


def doomed_block(compiled, gadget):
    """tx 0 writes ``item`` then loops until out of gas; tx 1 reads
    ``item``.  The gas limit is chosen so tx 0's failure happens well
    after tx 1 would consume a leaked early version."""
    work = Transaction(
        USERS[0], gadget, 0,
        compiled.encode_call("work", 99, 1_000_000),
        gas_limit=120_000,
    )
    read = Transaction(
        USERS[1], gadget, 0, compiled.encode_call("readItem"),
    )
    return [work, read]


class TestInjectedBugIsCaught:
    def test_clean_executor_never_leaks(self, gadget_setup):
        compiled, gadget, db = gadget_setup
        txs = doomed_block(compiled, gadget)
        report, trace = check_block(
            DMVCCExecutor(), txs, db.latest, db.codes.code_of, threads=2
        )
        assert report.ok, report.render()
        assert not report.flagged_early_visibility
        assert report.stats.doomed_reads == 0

    def test_oracle_flags_the_leak(self, gadget_setup):
        compiled, gadget, db = gadget_setup
        txs = doomed_block(compiled, gadget)
        report, trace = check_block(
            LeakyDMVCC(), txs, db.latest, db.codes.code_of, threads=2
        )
        # The mutant published tx 0's doomed write early and tx 1 consumed
        # it before the retraction: the oracle must flag the early-write
        # visibility violation.
        assert report.flagged_early_visibility, report.render()
        assert report.stats.doomed_reads >= 1
        assert report.stats.early_publishes >= 1

    def test_sanity_tx0_runs_out_of_gas(self, gadget_setup):
        compiled, gadget, db = gadget_setup
        txs = doomed_block(compiled, gadget)
        execution = SerialExecutor().execute_block(
            txs, db.latest, db.codes.code_of
        )
        assert not execution.receipts[0].result.success
        assert execution.receipts[1].result.success


@pytest.mark.slow
class TestCleanExecutorAtScale:
    def test_dmvcc_passes_200_fuzzed_blocks(self):
        """Acceptance: the unmodified executor sails through 200+ fuzzed
        blocks with zero divergences and zero unrepaired violations."""
        fuzzer = DifferentialFuzzer(
            factories={"dmvcc": lambda: DMVCCExecutor()},
            txs_per_block=12,
            minimize=False,
        )
        report = fuzzer.run(blocks=200, base_seed=0x5EED)
        assert report.ok, report.render()
        stats = report.stats["dmvcc"]
        assert stats.blocks_checked == 200
        assert stats.unrepaired_violations == 0
        assert stats.stale_reads == 0
        # The campaign must actually exercise early-write visibility.
        assert stats.early_publishes > 0
