"""Tests for Address and StateKey."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ADDRESS_BYTES, Address, StateKey


class TestAddress:
    def test_range_check(self):
        with pytest.raises(ValueError):
            Address(1 << 160)
        with pytest.raises(ValueError):
            Address(-1)

    def test_derive_is_deterministic(self):
        assert Address.derive("alice") == Address.derive("alice")

    def test_derive_distinct_labels(self):
        assert Address.derive("alice") != Address.derive("bob")

    def test_bytes_roundtrip(self):
        address = Address.derive("carol")
        assert Address.from_bytes(address.to_bytes()) == address

    def test_from_bytes_rejects_long(self):
        with pytest.raises(ValueError):
            Address.from_bytes(b"\x01" * (ADDRESS_BYTES + 1))

    def test_hex_roundtrip(self):
        address = Address.derive("dave")
        assert Address.from_hex(str(address)) == address

    def test_str_is_padded(self):
        assert len(str(Address(1))) == 42  # 0x + 40 hex chars

    def test_ordering(self):
        assert Address(1) < Address(2)

    def test_to_word(self):
        assert Address(255).to_word() == 255


class TestStateKey:
    def test_equality(self):
        a = Address.derive("x")
        assert StateKey(a, 5) == StateKey(a, 5)
        assert StateKey(a, 5) != StateKey(a, 6)

    def test_balance_pseudo_slot(self):
        a = Address.derive("x")
        key = StateKey.balance(a)
        assert key.is_balance
        assert not key.is_nonce
        assert "balance" in str(key)

    def test_nonce_pseudo_slot(self):
        key = StateKey.nonce(Address.derive("x"))
        assert key.is_nonce

    def test_trie_keys_distinct(self):
        a = Address.derive("x")
        keys = {
            StateKey(a, 0).trie_key(),
            StateKey(a, 1).trie_key(),
            StateKey.balance(a).trie_key(),
            StateKey.nonce(a).trie_key(),
        }
        assert len(keys) == 4

    def test_trie_key_distinct_per_address(self):
        assert (
            StateKey(Address.derive("x"), 0).trie_key()
            != StateKey(Address.derive("y"), 0).trie_key()
        )

    def test_hashable(self):
        a = Address.derive("x")
        assert len({StateKey(a, 0), StateKey(a, 0), StateKey(a, 1)}) == 2

    @given(st.integers(0, 2**256 - 1), st.integers(0, 2**256 - 1))
    def test_trie_key_injective_over_slots(self, slot1, slot2):
        a = Address.derive("inj")
        if slot1 != slot2:
            assert StateKey(a, slot1).trie_key() != StateKey(a, slot2).trie_key()
