"""Tests for hashing and Solidity storage-slot derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    WORD_MAX,
    array_data_slot,
    array_element_slot,
    hash_words,
    keccak,
    keccak_hex,
    mapping_slot,
)


class TestKeccak:
    def test_deterministic(self):
        assert keccak(b"abc") == keccak(b"abc")

    def test_distinct_inputs(self):
        assert keccak(b"abc") != keccak(b"abd")

    def test_length(self):
        assert len(keccak(b"")) == 32

    def test_hex_matches_bytes(self):
        assert keccak_hex(b"x") == keccak(b"x").hex()


class TestSlotDerivation:
    def test_mapping_slot_differs_per_key(self):
        assert mapping_slot(1, 0) != mapping_slot(2, 0)

    def test_mapping_slot_differs_per_base(self):
        assert mapping_slot(1, 0) != mapping_slot(1, 1)

    def test_mapping_slot_in_range(self):
        assert 0 <= mapping_slot(123, 45) <= WORD_MAX

    def test_array_elements_consecutive(self):
        base = array_data_slot(7)
        assert array_element_slot(7, 0) == base
        assert array_element_slot(7, 1) == base + 1

    def test_array_element_wraps(self):
        # Slot arithmetic is modular in the 2^256 slot space.
        huge = WORD_MAX
        assert 0 <= array_element_slot(3, huge) <= WORD_MAX

    def test_hash_words_matches_manual(self):
        manual = keccak((5).to_bytes(32, "big") + (9).to_bytes(32, "big"))
        assert hash_words(5, 9) == int.from_bytes(manual, "big")

    @given(st.integers(0, WORD_MAX), st.integers(0, 100))
    def test_mapping_slot_collision_free_sample(self, key, base):
        # Distinct (key, base) pairs should never alias the base slot itself.
        assert mapping_slot(key, base) != base
