"""RLP encoding/decoding tests, including canonical-form properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import (
    RLPDecodeError,
    decode_int,
    encode_int,
    rlp_decode,
    rlp_encode,
)


class TestKnownVectors:
    """Vectors from the Ethereum wiki RLP spec."""

    def test_empty_string(self):
        assert rlp_encode(b"") == b"\x80"

    def test_single_low_byte(self):
        assert rlp_encode(b"\x0f") == b"\x0f"

    def test_dog(self):
        assert rlp_encode(b"dog") == b"\x83dog"

    def test_cat_dog_list(self):
        assert rlp_encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_empty_list(self):
        assert rlp_encode([]) == b"\xc0"

    def test_nested_lists(self):
        # [ [], [[]], [ [], [[]] ] ]
        value = [[], [[]], [[], [[]]]]
        assert rlp_encode(value) == bytes.fromhex("c7c0c1c0c3c0c1c0")

    def test_long_string(self):
        payload = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit"
        assert rlp_encode(payload) == b"\xb8\x38" + payload


class TestDecoding:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\x0f\x0f")

    def test_truncated_payload_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\x83do")

    def test_truncated_length_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\xb8")

    def test_empty_input_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"")

    def test_list_item_overrun_rejected(self):
        # List declares 1 byte payload but contains a 2-byte item.
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\xc1\x83")


class TestIntegers:
    def test_zero_is_empty(self):
        assert encode_int(0) == b""

    def test_roundtrip(self):
        for value in (1, 127, 128, 255, 256, 2**64, 2**255):
            assert decode_int(encode_int(value)) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_int(-1)

    def test_leading_zero_rejected(self):
        with pytest.raises(RLPDecodeError):
            decode_int(b"\x00\x01")


rlp_items = st.recursive(
    st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5),
    max_leaves=20,
)


def _normalise(item):
    if isinstance(item, (bytes, bytearray)):
        return bytes(item)
    return [_normalise(sub) for sub in item]


class TestProperties:
    @given(rlp_items)
    def test_roundtrip(self, item):
        assert _normalise(rlp_decode(rlp_encode(item))) == _normalise(item)

    @given(rlp_items, rlp_items)
    def test_injective(self, a, b):
        if _normalise(a) != _normalise(b):
            assert rlp_encode(a) != rlp_encode(b)

    @given(st.integers(min_value=0, max_value=2**256 - 1))
    def test_int_roundtrip(self, value):
        assert decode_int(encode_int(value)) == value
