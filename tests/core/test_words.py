"""Unit and property tests for 256-bit word arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import words

WORDS = st.integers(min_value=0, max_value=words.WORD_MAX)
SMALL = st.integers(min_value=0, max_value=2**64)


class TestBasicArithmetic:
    def test_add_wraps(self):
        assert words.add(words.WORD_MAX, 1) == 0

    def test_sub_wraps(self):
        assert words.sub(0, 1) == words.WORD_MAX

    def test_mul_wraps(self):
        assert words.mul(1 << 255, 2) == 0

    def test_div_by_zero_is_zero(self):
        assert words.div(123, 0) == 0

    def test_mod_by_zero_is_zero(self):
        assert words.mod(123, 0) == 0

    def test_div_truncates(self):
        assert words.div(7, 2) == 3

    def test_exp(self):
        assert words.exp(2, 10) == 1024

    def test_exp_wraps(self):
        assert words.exp(2, 256) == 0


class TestSignedArithmetic:
    def test_to_signed_negative(self):
        assert words.to_signed(words.WORD_MAX) == -1

    def test_to_signed_positive(self):
        assert words.to_signed(5) == 5

    def test_from_signed_roundtrip(self):
        assert words.to_signed(words.from_signed(-42)) == -42

    def test_sdiv_truncates_toward_zero(self):
        minus_seven = words.from_signed(-7)
        assert words.to_signed(words.sdiv(minus_seven, 2)) == -3

    def test_sdiv_by_zero(self):
        assert words.sdiv(words.from_signed(-5), 0) == 0

    def test_smod_sign_follows_dividend(self):
        minus_seven = words.from_signed(-7)
        assert words.to_signed(words.smod(minus_seven, 3)) == -1

    def test_slt_sgt(self):
        minus_one = words.from_signed(-1)
        assert words.slt(minus_one, 0) == 1
        assert words.sgt(0, minus_one) == 1


class TestComparisons:
    def test_lt_gt_eq(self):
        assert words.lt(1, 2) == 1
        assert words.gt(2, 1) == 1
        assert words.eq(3, 3) == 1
        assert words.eq(3, 4) == 0

    def test_iszero(self):
        assert words.iszero(0) == 1
        assert words.iszero(1) == 0


class TestBitwise:
    def test_not(self):
        assert words.bitwise_not(0) == words.WORD_MAX

    def test_shl_overflow(self):
        assert words.shl(256, 1) == 0

    def test_shl(self):
        assert words.shl(4, 1) == 16

    def test_shr(self):
        assert words.shr(4, 16) == 1

    def test_shr_overflow(self):
        assert words.shr(300, words.WORD_MAX) == 0

    def test_sar_preserves_sign(self):
        minus_eight = words.from_signed(-8)
        assert words.to_signed(words.sar(1, minus_eight)) == -4

    def test_sar_large_shift_negative(self):
        assert words.sar(300, words.from_signed(-1)) == words.WORD_MAX

    def test_sar_large_shift_positive(self):
        assert words.sar(300, 5) == 0

    def test_byte_extraction(self):
        value = 0xAB << (8 * 31)  # most significant byte
        assert words.byte(0, value) == 0xAB
        assert words.byte(31, 0xCD) == 0xCD
        assert words.byte(32, 0xCD) == 0


class TestBytesConversion:
    def test_word_roundtrip(self):
        assert words.bytes_to_word(words.word_to_bytes(12345)) == 12345

    def test_bytes_to_word_short(self):
        assert words.bytes_to_word(b"\x01\x00") == 256

    def test_bytes_to_word_too_long(self):
        with pytest.raises(ValueError):
            words.bytes_to_word(b"\x00" * 33)


class TestProperties:
    @given(WORDS, WORDS)
    def test_add_commutes(self, a, b):
        assert words.add(a, b) == words.add(b, a)

    @given(WORDS, WORDS, WORDS)
    def test_add_associates(self, a, b, c):
        assert words.add(words.add(a, b), c) == words.add(a, words.add(b, c))

    @given(WORDS, WORDS)
    def test_sub_inverts_add(self, a, b):
        assert words.sub(words.add(a, b), b) == a

    @given(WORDS)
    def test_signed_roundtrip(self, a):
        assert words.from_signed(words.to_signed(a)) == a

    @given(WORDS, WORDS)
    def test_addmod_matches_python(self, a, b):
        n = 97
        assert words.addmod(a, b, n) == (a + b) % n

    @given(WORDS, WORDS)
    def test_mulmod_no_truncation(self, a, b):
        # mulmod must use the full product, not the wrapped one.
        n = (1 << 200) + 7
        assert words.mulmod(a, b, n) == (a * b) % n

    @given(SMALL, st.integers(min_value=0, max_value=255))
    def test_shl_shr_inverse_when_no_overflow(self, a, shift):
        if a.bit_length() + shift <= 256:
            assert words.shr(shift, words.shl(shift, a)) == a

    @given(WORDS)
    def test_not_involution(self, a):
        assert words.bitwise_not(words.bitwise_not(a)) == a
