"""Sharded DMVCC end-to-end: parity, metrics, and the fallback escape."""

import pytest

from repro.executors.serial import SerialExecutor
from repro.shard import ShardedDMVCCExecutor
from repro.shard.classifier import ShardPlan
from repro.shard import executor as shard_executor
from repro.workload import Workload, scenario_config

SMALL = dict(users=60, erc20_tokens=4, dex_pools=2, nft_collections=2, icos=1)


def _block(scenario: str, seed: int = 11, count: int = 48):
    workload = Workload(scenario_config(scenario, seed=seed, **SMALL))
    txs = workload.transactions(count)
    return workload, txs, workload.db.latest, workload.db.codes.code_of


def _digest(execution):
    return [(r.index, r.result.status.name, r.result.gas_used,
             r.result.return_data, r.result.error) for r in execution.receipts]


class TestParity:
    @pytest.mark.parametrize("scenario", ["airdrop_flood", "defi_composition",
                                          "cross_shard_storm"])
    @pytest.mark.parametrize("declared", [False, True])
    def test_sharded_matches_serial(self, scenario, declared):
        workload, txs, snapshot, resolver = _block(scenario)
        base = SerialExecutor().execute_block(txs, snapshot, resolver)
        sharded = ShardedDMVCCExecutor(shards=4)
        if declared:
            sharded.attach_merges(workload.declared_merges())
        execution = sharded.execute_block(txs, snapshot, resolver, threads=8)
        assert _digest(execution) == _digest(base)
        assert execution.writes == base.writes
        base_root = workload.db.fork().commit(base.writes).root_hash
        shard_root = workload.db.fork().commit(execution.writes).root_hash
        assert base_root == shard_root

    def test_deterministic_across_runs(self):
        workload, txs, snapshot, resolver = _block("cross_shard_storm")
        a = ShardedDMVCCExecutor(shards=4).execute_block(
            txs, snapshot, resolver, threads=8)
        b = ShardedDMVCCExecutor(shards=4).execute_block(
            txs, snapshot, resolver, threads=8)
        assert _digest(a) == _digest(b)
        assert a.writes == b.writes


class TestMetricsAndDelegation:
    def test_metrics_populated(self):
        _, txs, snapshot, resolver = _block("cross_shard_storm")
        sharded = ShardedDMVCCExecutor(shards=4)
        execution = sharded.execute_block(txs, snapshot, resolver, threads=8)
        metrics = execution.metrics
        assert metrics.shards == 4
        assert sharded.last_plan is not None
        assert metrics.cross_shard_txs == sharded.last_plan.cross_count
        assert metrics.shard_fallbacks == 0
        assert sharded.last_plan.local_count + sharded.last_plan.cross_count \
            == len(txs)

    def test_single_shard_delegates_to_reference(self):
        _, txs, snapshot, resolver = _block("airdrop_flood", count=16)
        sharded = ShardedDMVCCExecutor(shards=1)
        execution = sharded.execute_block(txs, snapshot, resolver, threads=4)
        assert execution.metrics.shards == 1
        assert execution.metrics.cross_shard_txs == 0

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ShardedDMVCCExecutor(shards=0)


class TestFallback:
    def test_misplacement_triggers_fallback_and_stays_correct(self, monkeypatch):
        """Force the classifier to place two realized-conflicting txs as
        locals of *different* shards: the realized cross-run escape check
        must fire and the whole block must rerun on the unsharded
        reference — byte-identical output, fallback counted."""
        workload, txs, snapshot, resolver = _block("airdrop_flood", count=24)
        base = SerialExecutor().execute_block(txs, snapshot, resolver)

        def adversarial_plan(block_txs, csags, shards, merges=None):
            # Round-robin every tx across shards with no footprint checks:
            # the airdrop contract's slots are written from several shards.
            plan = ShardPlan(shards=shards,
                             locals_={s: [] for s in range(shards)})
            for index in range(len(block_txs)):
                plan.locals_[index % shards].append(index)
            return plan

        monkeypatch.setattr(shard_executor, "classify_block",
                            adversarial_plan)
        sharded = ShardedDMVCCExecutor(shards=4)
        execution = sharded.execute_block(txs, snapshot, resolver, threads=8)
        assert execution.metrics.shard_fallbacks == 1
        assert _digest(execution) == _digest(base)
        assert execution.writes == base.writes
