"""Hash partitioning: deterministic, total, and reasonably spread."""

from repro.core import Address, StateKey
from repro.shard import home_shard, shard_of, shard_of_key, shards_touched


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for i in range(200):
            address = Address.derive(f"acct-{i}")
            for shards in (1, 2, 4, 7, 16):
                home = shard_of(address, shards)
                assert 0 <= home < shards
                assert home == shard_of(address, shards)

    def test_single_shard_collapses_to_zero(self):
        address = Address.derive("anyone")
        assert shard_of(address, 1) == 0
        assert shard_of(address, 0) == 0

    def test_key_partitioning_follows_address(self):
        """Every slot of a contract lives on the contract's shard — a
        transaction touching one contract is single-shard by construction."""
        address = Address.derive("token")
        for slot in (0, 1, 2**255, 17):
            assert shard_of_key(StateKey(address, slot), 4) == shard_of(address, 4)

    def test_all_shards_reachable(self):
        """keccak spreads addresses: with enough accounts every shard gets
        members (guards against a modulo-of-zero-bytes style bug)."""
        for shards in (2, 4, 8):
            homes = {shard_of(Address.derive(f"user-{i}"), shards)
                     for i in range(256)}
            assert homes == set(range(shards))

    def test_home_and_touched_helpers_agree(self):
        a, b = Address.derive("home-a"), Address.derive("home-b")
        keys = {StateKey(a, 0), StateKey(a, 5), StateKey(b, 1)}
        touched = shards_touched(keys, 8)
        assert touched == {shard_of(a, 8), shard_of(b, 8)}
        assert home_shard({StateKey(a, 0)}, 8) == shard_of(a, 8)
