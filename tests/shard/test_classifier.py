"""Static shard classification: membership, escape reasons, determinism."""

from dataclasses import dataclass, field
from typing import Set

from repro.chain.transaction import Transaction
from repro.core import Address, StateKey
from repro.shard import classify_block, shard_of
from repro.shard.classifier import (
    REASON_ENTANGLED,
    REASON_MULTI_SHARD,
    REASON_UNRELIABLE,
)
from repro.state.merge import MergeOp, MergeRegistry


@dataclass
class _FakeCSAG:
    """Just the classifier-visible surface of a refined C-SAG."""

    read_keys: Set[StateKey] = field(default_factory=set)
    write_keys: Set[StateKey] = field(default_factory=set)
    static_read_keys: Set[StateKey] = field(default_factory=set)
    static_write_keys: Set[StateKey] = field(default_factory=set)
    missing: bool = False
    predicted_success: bool = True


def _addr_on_shard(shard: int, shards: int = 4, hint: str = "c") -> Address:
    for i in range(10_000):
        address = Address.derive(f"{hint}-{i}")
        if shard_of(address, shards) == shard:
            return address
    raise AssertionError("no address found for shard")


def _tx(i: int) -> Transaction:
    return Transaction(sender=Address.derive(f"s{i}"),
                       to=Address.derive(f"t{i}"), value=0)


class TestClassification:
    def test_every_tx_assigned_exactly_once(self):
        txs = [_tx(i) for i in range(8)]
        csags = [_FakeCSAG(write_keys={StateKey(Address.derive(f"k{i}"), 0)})
                 for i in range(8)]
        plan = classify_block(txs, csags, shards=4)
        seen = sorted(i for lane in plan.locals_.values() for i in lane)
        seen += plan.cross
        assert sorted(seen) == list(range(8))
        assert len(plan.local_counts()) == 4

    def test_single_shard_footprint_is_local_on_its_shard(self):
        address = _addr_on_shard(2)
        csag = _FakeCSAG(write_keys={StateKey(address, 0), StateKey(address, 7)})
        plan = classify_block([_tx(0)], [csag], shards=4)
        assert plan.locals_[2] == [0]
        assert plan.cross == []

    def test_multi_shard_footprint_goes_cross(self):
        a = _addr_on_shard(0, hint="ma")
        b = _addr_on_shard(3, hint="mb")
        csag = _FakeCSAG(write_keys={StateKey(a, 0), StateKey(b, 0)})
        plan = classify_block([_tx(0)], [csag], shards=4)
        assert plan.cross == [0]
        assert plan.reasons[0] == REASON_MULTI_SHARD

    def test_unreliable_prediction_goes_cross(self):
        for csag in (None, _FakeCSAG(missing=True),
                     _FakeCSAG(predicted_success=False)):
            plan = classify_block([_tx(0)], [csag], shards=4)
            assert plan.cross == [0]
            assert plan.reasons[0] == REASON_UNRELIABLE

    def test_entanglement_with_earlier_cross_write(self):
        """A local-looking tx reading a key an earlier cross tx writes must
        join phase 2 — its value depends on handoff order."""
        a = _addr_on_shard(0, hint="ea")
        b = _addr_on_shard(1, hint="eb")
        contested = StateKey(a, 5)
        cross_csag = _FakeCSAG(write_keys={contested, StateKey(b, 0)})
        local_csag = _FakeCSAG(read_keys={contested},
                               write_keys={StateKey(a, 9)})
        plan = classify_block([_tx(0), _tx(1)], [cross_csag, local_csag],
                              shards=4)
        assert plan.cross == [0, 1]
        assert plan.reasons[1] == REASON_ENTANGLED

    def test_declared_merge_keys_do_not_split_membership(self):
        """A hot declared counter on a foreign shard must not force a tx
        cross: merge intents fold at seal regardless of the logging shard."""
        home = _addr_on_shard(1, hint="da")
        foreign = _addr_on_shard(2, hint="db")
        counter = StateKey(foreign, 1)
        registry = MergeRegistry()
        registry.declare(counter, MergeOp.ADD, lower=0)
        csag = _FakeCSAG(read_keys={counter},
                         write_keys={counter, StateKey(home, 3)})
        without = classify_block([_tx(0)], [csag], shards=4)
        assert without.cross == [0]  # undeclared: genuinely multi-shard
        with_merges = classify_block([_tx(0)], [csag], shards=4,
                                     merges=registry)
        assert with_merges.cross == []
        assert with_merges.locals_[1] == [0]

    def test_all_declared_footprint_still_spreads_placement(self):
        """When the entire footprint is declared, placement falls back to
        the full footprint instead of defaulting everything to shard 0."""
        foreign = _addr_on_shard(3, hint="fa")
        counter = StateKey(foreign, 1)
        registry = MergeRegistry()
        registry.declare(counter, MergeOp.ADD, lower=0)
        csag = _FakeCSAG(write_keys={counter})
        plan = classify_block([_tx(0)], [csag], shards=4, merges=registry)
        assert plan.locals_[3] == [0]

    def test_value_transfer_adds_balance_keys(self):
        sender = _addr_on_shard(0, hint="vs")
        to = _addr_on_shard(2, hint="vt")
        tx = Transaction(sender=sender, to=to, value=5)
        plan = classify_block([tx], [_FakeCSAG()], shards=4)
        assert plan.cross == [0]
        assert plan.reasons[0] == REASON_MULTI_SHARD

    def test_deterministic(self):
        txs = [_tx(i) for i in range(12)]
        csags = [_FakeCSAG(write_keys={StateKey(Address.derive(f"d{i % 5}"), i)})
                 for i in range(12)]
        a = classify_block(txs, csags, shards=4)
        b = classify_block(txs, csags, shards=4)
        assert a.locals_ == b.locals_ and a.cross == b.cross
