#!/usr/bin/env python3
"""The ICO rush: the paper's motivating high-contention scenario.

Every transaction in the block contributes to the same ICO contract, all
hammering the shared ``totalRaised`` counter.  We run the block under each
scheduler — and under DMVCC with individual features disabled — in two
contract variants:

* **capped ICO** — the cap check *reads* the counter, so updates do not
  commute; early-write visibility is the only lever;
* **uncapped sale** — the counter update is a blind increment, so
  commutative writes make the whole block embarrassingly parallel.

Run:  python examples/ico_rush.py
"""

from repro import (
    Address,
    DAGExecutor,
    DMVCCExecutor,
    OCCExecutor,
    SerialExecutor,
    StateDB,
    Transaction,
    compile_source,
)
from repro.workload import ICO_SOURCE

BUYERS = 64
THREADS = 16


def build_block(capped: bool):
    ico = compile_source(ICO_SOURCE)
    contract = Address.derive("the-ico")
    db = StateDB()
    db.deploy_contract(contract, ico.code, "ICO")
    buyers = [Address.derive(f"buyer-{i}") for i in range(BUYERS)]
    cap_slot = ico.slot_of("cap")
    rate_slot = ico.slot_of("rate")
    from repro.core import StateKey

    storage = {StateKey(contract, rate_slot): 100}
    if capped:
        storage[StateKey(contract, cap_slot)] = 10**12
    db.seed_genesis({b: 10**18 for b in buyers}, storage)
    txs = [
        Transaction(b, contract, 0, ico.encode_call("contribute", 1_000 + i))
        for i, b in enumerate(buyers)
    ]
    return db, txs


def run_variant(name: str, capped: bool) -> None:
    db, txs = build_block(capped)
    serial = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
    print(f"--- {name} ({BUYERS} contributions, {THREADS} threads) ---")
    print(f"{'scheduler':>12} {'speedup':>8} {'aborts':>7}")
    executors = [
        DAGExecutor(),
        OCCExecutor(),
        DMVCCExecutor(enable_early_write=False, enable_commutative=False),
        DMVCCExecutor(enable_commutative=False),
        DMVCCExecutor(enable_early_write=False),
        DMVCCExecutor(),
    ]
    for executor in executors:
        execution = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=THREADS
        )
        assert execution.writes == serial.writes, "serializability violated!"
        m = execution.metrics
        print(f"{m.scheduler:>12} {m.speedup:7.2f}x {m.aborts:7d}")
    print()


def main() -> None:
    print("Everyone piles into one ICO contract (the paper's §V-C scenario):\n")
    run_variant("capped ICO: counter read by the cap check (θ)", capped=True)
    run_variant("uncapped sale: counter is a blind increment (ω̄)", capped=False)
    print("Takeaway: write versioning + early visibility pipeline the capped\n"
          "chain, and commutative writes dissolve the uncapped one entirely —\n"
          "while OCC burns re-executions and the DAG serialises everything.")


if __name__ == "__main__":
    main()
