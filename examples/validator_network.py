#!/usr/bin/env python3
"""A micro blockchain network (the paper's RQ3 testbed in miniature).

Four validators with identical genesis state mine under simulated PoW and
import each other's blocks.  Some gossip is lossy, so importers exercise
the missing-SAG path (re-analysis on the fly).  We compare chain throughput
with serial vs DMVCC execution and verify that every validator ends on the
same Merkle root.

Run:  python examples/validator_network.py
"""

from repro import DMVCCExecutor, Packer, SerialExecutor, Validator
from repro.chain.network import NetworkSimulation
from repro.workload import Workload, WorkloadConfig

SIZE = dict(users=300, erc20_tokens=6, dex_pools=3, nft_collections=2, icos=1)
TXS_PER_BLOCK = 300
BLOCKS = 3
# Calibrated so one serial block ≈ 100 s of simulated execution: execution,
# not mining, is the bottleneck (the paper's big-block regime).
GAS_PER_SECOND = TXS_PER_BLOCK * 45_000 / 100.0


def build_network(executor_factory, threads: int) -> NetworkSimulation:
    workload = Workload(WorkloadConfig(**SIZE))
    txs = workload.transactions(BLOCKS * TXS_PER_BLOCK)
    validators = []
    for i in range(4):
        # Each validator rebuilds its own independent StateDB from the
        # workload genesis (separate tries, separate caches).
        from repro.bench import clone_statedb

        validators.append(Validator(
            f"validator-{i}",
            clone_statedb(workload),
            executor_factory(),
            threads=threads,
            packer=Packer(max_txs=TXS_PER_BLOCK),
        ))
    network = NetworkSimulation(
        validators,
        block_interval=12.0,
        gas_per_second=GAS_PER_SECOND,
        seed=42,
        deterministic_interval=True,
    )
    network.submit(txs, drop_rate=0.2, seed=7)  # 20% gossip loss
    return network


def run(name: str, executor_factory, threads: int) -> float:
    network = build_network(executor_factory, threads)
    result = network.run(BLOCKS)
    roots = {v.state_root().hex()[:12] for v in network.validators}
    print(f"--- {name} ({threads} threads/validator) ---")
    for record in result.records:
        print(f"  block {record.number}: {record.tx_count} txs mined by "
              f"{record.miner}, exec {record.execution_seconds:6.1f}s, "
              f"cycle {record.cycle_seconds:6.1f}s, "
              f"roots {'agree' if record.roots_agree else 'MISMATCH'}")
    print(f"  missing C-SAGs handled: {result.missing_csags}")
    print(f"  final roots across validators: {roots} "
          f"({'consensus ✓' if len(roots) == 1 else 'FORK ✗'})")
    print(f"  throughput: {result.throughput:7.2f} TPS\n")
    assert len(roots) == 1
    return result.throughput


def main() -> None:
    serial_tps = run("serial EVM", SerialExecutor, 1)
    dmvcc_tps = run("DMVCC", DMVCCExecutor, 16)
    print(f"throughput speedup from parallel execution: "
          f"{dmvcc_tps / serial_tps:4.2f}x")


if __name__ == "__main__":
    main()
