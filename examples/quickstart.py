#!/usr/bin/env python3
"""Quickstart: compile a contract, build a block, execute it with every
scheduler, and verify deterministic serializability.

Run:  python examples/quickstart.py
"""

from repro import (
    Address,
    DAGExecutor,
    DMVCCExecutor,
    OCCExecutor,
    SerialExecutor,
    StateDB,
    Transaction,
    compile_source,
)

TOKEN_SOURCE = """
contract Token {
    uint totalSupply;
    mapping(address => uint) balanceOf;

    function mint(address to, uint amount) public {
        totalSupply += amount;
        balanceOf[to] += amount;
    }

    function transfer(address to, uint amount) public {
        require(balanceOf[msg.sender] >= amount);
        balanceOf[msg.sender] -= amount;
        balanceOf[to] += amount;
    }
}
"""


def main() -> None:
    # 1. Compile Minisol to EVM bytecode (Solidity storage layout, real
    #    selectors, require -> REVERT, etc.).
    token = compile_source(TOKEN_SOURCE)
    print(f"compiled Token: {len(token.code)} bytes, "
          f"functions: {sorted(token.functions)}")

    # 2. Set up a chain: deploy the contract, fund some users.
    db = StateDB()
    contract = Address.derive("quickstart-token")
    db.deploy_contract(contract, token.code, "Token")
    users = [Address.derive(f"user-{i}") for i in range(16)]
    db.seed_genesis({u: 10**18 for u in users})

    # 3. Build a block: mints (commutative!) then a mesh of transfers.
    txs = [
        Transaction(u, contract, 0, token.encode_call("mint", u, 10_000))
        for u in users
    ]
    for i, u in enumerate(users):
        recipient = users[(i + 5) % len(users)]
        txs.append(Transaction(
            u, contract, 0, token.encode_call("transfer", recipient, 100 + i)
        ))
    txs.append(Transaction(users[0], users[1], 123_456))  # plain Ether

    # 4. Execute serially (the correctness oracle)...
    serial = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)
    print(f"\nserial: {serial.metrics.tx_count} txs, "
          f"{serial.metrics.total_gas:,} gas")

    # 5. ...then with each parallel scheduler on 8 simulated threads.
    print(f"\n{'scheduler':>10} {'speedup':>8} {'aborts':>7} {'util':>7}  result")
    for executor in (DAGExecutor(), OCCExecutor(), DMVCCExecutor()):
        execution = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=8
        )
        ok = execution.writes == serial.writes
        m = execution.metrics
        print(f"{m.scheduler:>10} {m.speedup:7.2f}x {m.aborts:7d} "
              f"{m.utilisation:6.1%}   {'== serial ✓' if ok else 'DIVERGED ✗'}")
        assert ok, "deterministic serializability violated!"

    # 6. Commit and show the authenticated state root.
    snapshot = db.commit(serial.writes)
    print(f"\ncommitted block 1, state root {snapshot.root_hash.hex()[:16]}…")


if __name__ == "__main__":
    main()
