#!/usr/bin/env python3
"""Mainnet-style replay: the Fig. 7 experiment at example scale.

Generates the paper's traffic mix (31% Ether transfers; contract calls
split 60/29/10 across ERC20 / DeFi / NFT; Zipf-popular contracts and
recipients), executes blocks under every scheduler across thread counts,
and prints the speedup curves plus per-category traffic stats.

Run:  python examples/mainnet_replay.py [--hot]
"""

import sys
from collections import Counter

from repro import SerialExecutor
from repro.bench import run_speedup_experiment
from repro.workload import Workload, high_contention_config, low_contention_config

SIZE = dict(users=400, erc20_tokens=8, dex_pools=4, nft_collections=3, icos=1)


def main() -> None:
    hot = "--hot" in sys.argv
    config = (high_contention_config if hot else low_contention_config)(**SIZE)

    # Show what the generator produces.
    preview = Workload(config)
    txs = preview.transactions(1_000)
    counts = Counter(t.label for t in txs)
    print("traffic mix (1,000 sampled transactions):")
    for label, count in counts.most_common():
        print(f"  {label:18s} {count:4d}  ({count / len(txs):5.1%})")
    print()

    result = run_speedup_experiment(
        config,
        f"speedup, {'high' if hot else 'low'} contention",
        blocks=2,
        txs_per_block=400,
        thread_counts=(1, 2, 4, 8, 16, 32),
    )
    print(result.format_table())
    print()
    for scheduler in ("dag", "occ", "dmvcc"):
        row = result.at(scheduler, 32)
        print(f"  {scheduler:>6} @32 threads: {row.speedup:5.2f}x, "
              f"{row.aborts} aborts ({row.abort_rate:.2%} of executions)")
    assert result.correctness_ok


if __name__ == "__main__":
    main()
