#!/usr/bin/env python3
"""Walk through the paper's Fig. 1/Fig. 3 example: build the P-SAG of the
``Example`` contract, then refine it into C-SAGs for two transactions whose
behaviour depends on snapshot state.

Shows:
* symbolic storage keys ("keccak(arg0, 0)", "sload(...)", the "–"
  placeholder) — the P-SAG;
* release points with gas bounds;
* commutative-increment detection;
* C-SAG refinement: the same transaction resolves to *different* concrete
  accesses under different snapshots (loop unrolled vs else-branch).

Run:  python examples/analyze_contract.py
"""

from repro import Address, StateDB, Transaction, compile_source
from repro.analysis import CSAGBuilder, build_psag
from repro.core import StateKey, mapping_slot
from repro.workload import ERC20_SOURCE, PAPER_EXAMPLE_SOURCE


def show_psag(name, compiled) -> None:
    psag = build_psag(compiled.code)
    print(f"=== P-SAG of {name} ===")
    print(f"  code: {len(compiled.code)} bytes, "
          f"{len(psag.analysis.cfg.blocks)} basic blocks")
    print("  static access sites (symbolic keys):")
    for pc, site in sorted(psag.analysis.access_sites.items()):
        marker = " [commutative]" if pc in psag.analysis.increment_sites else ""
        print(f"    pc {pc:4d}: {site.kind:12s} key = {site.key}{marker}")
    print("  release points (pc, static gas bound for the remainder):")
    for point in psag.release.release_points:
        bound = point.gas_bound if point.gas_bound is not None else "unbounded (loop)"
        print(f"    pc {point.pc:4d}: {bound}")
    unresolved = psag.unresolved_nodes()
    print(f"  unresolved ('–') keys: {len(unresolved)}; "
          f"snapshot-dependent keys: {len(psag.snapshot_dependent_nodes())}")
    print()


def show_csag(label, csag) -> None:
    print(f"  C-SAG [{label}]: predicted_gas={csag.predicted_gas:,}, "
          f"success={csag.predicted_success}")
    for access in csag.accesses:
        extra = f" (delta={access.delta})" if access.commutative and access.kind == "write" else ""
        print(f"    @gas {access.gas_offset:6d}: {access.kind:5s} "
              f"slot {access.key.slot & 0xffff:#06x}…{extra}")
    for release in csag.release_offsets:
        print(f"    @gas {release.gas_offset:6d}: release point "
              f"(≤{release.remaining_gas_bound:,} gas remains)")
    print()


def main() -> None:
    example = compile_source(PAPER_EXAMPLE_SOURCE)
    erc20 = compile_source(ERC20_SOURCE)

    show_psag("Example (paper Fig. 1)", example)
    show_psag("ERC20", erc20)

    # --- C-SAG refinement: the same call under two snapshots -------------
    alice = Address.derive("alice")
    contract = Address.derive("example-analysis")

    print("=== C-SAG refinement of UpdateB(alice, 5) (paper Fig. 3) ===")
    a_slot = example.slot_of("A")
    b_slot = example.slot_of("B")

    # Snapshot 1: A[alice] = 3 -> the loop branch, unrolled twice.
    db = StateDB()
    db.deploy_contract(contract, example.code, "Example")
    db.seed_genesis(
        {alice: 10**18},
        {
            StateKey(contract, mapping_slot(alice.to_word(), a_slot)): 3,
            StateKey(contract, b_slot): 6,  # B.length
        },
    )
    builder = CSAGBuilder(db.codes.code_of)
    tx = Transaction(alice, contract, 0, example.encode_call("UpdateB", alice, 5))
    show_csag("A[alice]=3: loop unrolled (writes B[3], B[2])", builder.build(tx, db.latest))

    # Snapshot 2: A[alice] = 0 -> the else branch (writes B[0], B[1]).
    db2 = StateDB()
    db2.deploy_contract(contract, example.code, "Example")
    db2.seed_genesis({alice: 10**18}, {StateKey(contract, b_slot): 6})
    builder2 = CSAGBuilder(db2.codes.code_of)
    show_csag("A[alice]=0: else branch (writes B[0], B[1])", builder2.build(tx, db2.latest))

    print("The same transaction yields different complete SAGs depending on\n"
          "the snapshot — exactly why DMVCC refines lazily and keeps the\n"
          "abort protocol as a backstop when refinement goes stale.")


if __name__ == "__main__":
    main()
