#!/usr/bin/env python3
"""Visualise execution schedules — the paper's Fig. 4(b) vs Fig. 6 story.

Builds a small contended block and renders ASCII Gantt charts of how each
scheduler lays transactions onto threads, plus the speedup curves.

Run:  python examples/schedule_visualizer.py
"""

from repro import (
    Address,
    DAGExecutor,
    DMVCCExecutor,
    SerialExecutor,
    StateDB,
    Transaction,
    compile_source,
)
from repro.bench.reporting import (
    render_gantt,
    render_speedup_curves,
    speedup_series_from_result,
)
from repro.workload import ERC20_SOURCE

THREADS = 3


def build_block():
    """Six transactions echoing the paper's running example: some
    independent, some chained, some write-write-only conflicting."""
    erc20 = compile_source(ERC20_SOURCE)
    token = Address.derive("gantt-token")
    db = StateDB()
    db.deploy_contract(token, erc20.code, "ERC20")
    users = [Address.derive(f"g{i}") for i in range(6)]
    from repro.core import StateKey, mapping_slot

    bal = erc20.slot_of("balanceOf")
    db.seed_genesis(
        {u: 10**18 for u in users},
        {StateKey(token, mapping_slot(u.to_word(), bal)): 10_000 for u in users},
    )
    txs = [
        # T0 -> T2 chain (T2 spends T0's credit), like T1->T3 in Fig. 4.
        Transaction(users[0], token, 0, erc20.encode_call("transfer", users[1], 9_000)),
        Transaction(users[2], token, 0, erc20.encode_call("transfer", users[3], 500)),
        Transaction(users[1], token, 0, erc20.encode_call("transfer", users[4], 18_000)),
        # Two mints: write-write on totalSupply (commutative for DMVCC).
        Transaction(users[4], token, 0, erc20.encode_call("mint", users[4], 100)),
        Transaction(users[5], token, 0, erc20.encode_call("mint", users[5], 100)),
        # Independent transfer.
        Transaction(users[3], token, 0, erc20.encode_call("transfer", users[5], 10)),
    ]
    return db, txs


def main() -> None:
    db, txs = build_block()
    serial = SerialExecutor().execute_block(txs, db.latest, db.codes.code_of)

    for executor in (DAGExecutor(), DMVCCExecutor()):
        execution = executor.execute_block(
            txs, db.latest, db.codes.code_of, threads=THREADS
        )
        assert execution.writes == serial.writes
        print(render_gantt(execution.metrics, width=68))
        print()

    # Speedup curves on a bigger mainnet-mix block.
    from repro.bench import run_speedup_experiment
    from repro.workload import low_contention_config

    result = run_speedup_experiment(
        low_contention_config(users=300, erc20_tokens=6, dex_pools=3,
                              nft_collections=2, icos=1),
        "curves", blocks=1, txs_per_block=250,
        thread_counts=(1, 2, 4, 8, 16, 32),
    )
    print(render_speedup_curves(
        speedup_series_from_result(result),
        title="speedup vs threads (mainnet mix, 250-tx block)",
    ))


if __name__ == "__main__":
    main()
